"""Unit tests for the IR type system."""

import pytest

from repro.ir import FLOAT, INT, Type, common_arith_type, ptr


def test_scalar_kinds():
    assert INT.is_int and not INT.is_float and not INT.is_pointer
    assert FLOAT.is_float and not FLOAT.is_int


def test_pointer_roundtrip():
    p = ptr(FLOAT)
    assert p.is_pointer
    assert p.deref() is not None
    assert p.deref() == FLOAT


def test_double_pointer_str():
    assert str(ptr(ptr(FLOAT))) == "double**"
    assert str(INT) == "int"
    assert str(FLOAT) == "double"


def test_deref_non_pointer_raises():
    with pytest.raises(TypeError):
        INT.deref()


def test_type_equality_by_value():
    assert ptr(INT) == ptr(INT)
    assert ptr(INT) != ptr(FLOAT)
    assert len({ptr(INT), ptr(INT), INT}) == 2


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        Type("short")
    with pytest.raises(ValueError):
        Type("ptr")  # pointee required
    with pytest.raises(ValueError):
        Type("int", INT)  # scalar with pointee


def test_common_arith_type_promotion():
    assert common_arith_type(INT, INT) == INT
    assert common_arith_type(INT, FLOAT) == FLOAT
    assert common_arith_type(FLOAT, INT) == FLOAT
    assert common_arith_type(FLOAT, FLOAT) == FLOAT


def test_common_arith_type_pointers():
    p = ptr(FLOAT)
    assert common_arith_type(p, INT) == p
    assert common_arith_type(INT, p) == p
    assert common_arith_type(p, p) == INT  # pointer difference
