"""Unit tests for IR expressions and the syntax-key used by heuristics."""

import pytest

from repro.ir import (FLOAT, INT, AddrOf, Bin, Const, Load, StorageKind,
                      Symbol, Un, VarRead, ptr, syntax_key)


def sym(name, ty=INT, **kw):
    return Symbol(name, ty, StorageKind.LOCAL, **kw)


def test_const_types():
    assert Const(1, INT).ty == INT
    assert Const(1.5, FLOAT).ty == FLOAT


def test_varread_of_array_decays_to_pointer():
    a = sym("a", FLOAT, array_size=8)
    assert VarRead(a).ty == ptr(FLOAT)
    assert a.address_taken  # arrays are implicitly address-taken


def test_varread_of_scalar():
    x = sym("x", FLOAT)
    assert VarRead(x).ty == FLOAT


def test_addrof_type():
    x = sym("x", FLOAT)
    assert AddrOf(x).ty == ptr(FLOAT)


def test_load_type_and_children():
    p = sym("p", ptr(FLOAT))
    load = Load(VarRead(p), FLOAT)
    assert load.ty == FLOAT
    assert load.children() == (VarRead(p),)


def test_bin_comparison_yields_int():
    x, y = sym("x", FLOAT), sym("y", FLOAT)
    assert Bin("<", VarRead(x), VarRead(y)).ty == INT
    assert Bin("+", VarRead(x), VarRead(y)).ty == FLOAT


def test_bin_pointer_arith():
    p = sym("p", ptr(INT))
    e = Bin("+", VarRead(p), Const(4, INT))
    assert e.ty == ptr(INT)


def test_unknown_ops_rejected():
    with pytest.raises(ValueError):
        Bin("**", Const(1, INT), Const(2, INT))
    with pytest.raises(ValueError):
        Un("abs", Const(1, INT))


def test_un_conversions():
    assert Un("int", Const(1.0, FLOAT)).ty == INT
    assert Un("float", Const(1, INT)).ty == FLOAT
    assert Un("-", Const(1.0, FLOAT)).ty == FLOAT


def test_walk_postorder():
    x = sym("x")
    e = Bin("+", VarRead(x), Const(1, INT))
    nodes = list(e.walk())
    assert nodes[-1] is e
    assert len(nodes) == 3


def test_syntax_key_identical_trees_match():
    p = sym("p", ptr(INT))
    e1 = Load(Bin("+", VarRead(p), Const(4, INT)), INT)
    e2 = Load(Bin("+", VarRead(p), Const(4, INT)), INT)
    assert syntax_key(e1) == syntax_key(e2)


def test_syntax_key_distinguishes_symbols_and_shape():
    p, q = sym("p", ptr(INT)), sym("q", ptr(INT))
    assert syntax_key(VarRead(p)) != syntax_key(VarRead(q))
    assert syntax_key(Load(VarRead(p), INT)) != syntax_key(VarRead(p))
    same_name = sym("p", ptr(INT))
    assert syntax_key(VarRead(p)) != syntax_key(VarRead(same_name))
