"""Unit tests for the IR builder, CFG utilities and verifier."""

import pytest

from repro.ir import (INT, FunctionBuilder, ModuleBuilder, Return, Symbol,
                      StorageKind, VerificationError, format_module,
                      reverse_postorder, verify_module)


def build_diamond():
    """if/else diamond: entry -> (then | else) -> join."""
    b = FunctionBuilder("f", [("c", INT)], ret_ty=INT)
    x = b.local("x", INT)
    then_b, else_b, join = b.new_block("then"), b.new_block("else"), b.new_block("join")
    b.branch(b.read(b.params["c"]), then_b, else_b)
    b.set_block(then_b)
    b.assign(x, 1)
    b.jump(join)
    b.set_block(else_b)
    b.assign(x, 2)
    b.jump(join)
    b.set_block(join)
    b.ret(b.read(x))
    return b.done(), x


def test_diamond_cfg_edges():
    fn, _ = build_diamond()
    entry = fn.entry
    assert len(entry.succs) == 2
    join = [blk for blk in fn.blocks if blk.name.startswith("join")][0]
    assert len(join.preds) == 2
    assert all(entry in p.preds for p in entry.succs)


def test_reverse_postorder_entry_first_join_last():
    fn, _ = build_diamond()
    order = reverse_postorder(fn.entry)
    assert order[0] is fn.entry
    assert order[-1].name.startswith("join")
    assert len(order) == 4


def test_unreachable_blocks_dropped():
    b = FunctionBuilder("g")
    dead = b.new_block("dead")
    dead.terminator = Return(None)
    b.ret()
    fn = b.done()
    assert dead not in fn.blocks


def test_module_finalize_numbers_call_sites():
    mb = ModuleBuilder()
    f = mb.function("main")
    p = f.local("p", INT)
    f.call(p, "alloc", [4])
    f.call(p, "alloc", [8])
    f.ret()
    f.done()
    module = mb.done()
    sites = [s.site_id for _, s in module.main.statements() if hasattr(s, "site_id")]
    assert sites == [0, 1]


def test_verifier_accepts_wellformed_module():
    mb = ModuleBuilder()
    g = mb.global_var("g", INT)
    f = mb.function("main")
    f.assign(g, 3)
    f.emit_print(f.read(g))
    f.ret()
    f.done()
    verify_module(mb.done())


def test_verifier_rejects_undeclared_symbol():
    mb = ModuleBuilder()
    f = mb.function("main")
    rogue = Symbol("rogue", INT, StorageKind.LOCAL)  # never declared
    f.assign(rogue, 1)
    f.ret()
    f.done()
    with pytest.raises(VerificationError):
        verify_module(mb.done())


def test_verifier_rejects_unknown_callee():
    mb = ModuleBuilder()
    f = mb.function("main")
    f.call(None, "nonexistent", [])
    f.ret()
    f.done()
    with pytest.raises(VerificationError):
        verify_module(mb.done())


def test_printer_mentions_blocks_and_stmts():
    mb = ModuleBuilder()
    f = mb.function("main")
    x = f.local("x", INT)
    f.assign(x, 42)
    f.ret()
    f.done()
    text = format_module(mb.done())
    assert "main" in text and "x = 42" in text and "entry" in text
