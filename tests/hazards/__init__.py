"""Fault-injection test package."""
