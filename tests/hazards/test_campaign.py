"""The differential fault-injection campaign (the robustness tier,
``pytest -m faultinject``).

Acceptance gate: hundreds of seeded injected runs across every workload
— SPEC-shaped and recovery-shaped — must match the reference interpreter
bit-for-bit, including under deliberately wrong alias profiles."""

import pytest

from repro.core import SpecConfig
from repro.hazards import ADVERSARIES, run_campaign

pytestmark = pytest.mark.faultinject


@pytest.mark.faultinject
def test_campaign_200_runs_bit_for_bit():
    """≥200 injected runs over all 10 workloads; zero output mismatches,
    and the perturbations actually bit: deferred faults, chk.s
    recoveries and forced check misses all occurred."""
    report = run_campaign(scenarios=("poison", "storm", "chaos"),
                          seeds=range(7))
    assert len(report.runs) >= 200
    assert report.ok, report.summary()
    assert sum(r.deferred_faults for r in report.runs) > 0
    assert report.total_recoveries > 0
    assert sum(r.check_misses for r in report.runs) > 0
    assert sum(r.replay_loads for r in report.runs) > 0


@pytest.mark.faultinject
def test_campaign_is_reproducible():
    kwargs = dict(workload_names=["parser", "bzip2"],
                  scenarios=("chaos",), seeds=(0, 1))
    a, b = run_campaign(**kwargs), run_campaign(**kwargs)
    assert [(r.ok, r.cycles, r.deferred_faults, r.spec_recoveries,
             r.check_misses) for r in a.runs] \
        == [(r.ok, r.cycles, r.deferred_faults, r.spec_recoveries,
             r.check_misses) for r in b.runs]


@pytest.mark.faultinject
@pytest.mark.parametrize("adversary", sorted(ADVERSARIES))
def test_adversarial_profiles_recover(adversary):
    """A deliberately wrong alias profile may cost cycles — mispredicted
    speculation, extra check misses, deferred faults — but the output
    still matches the oracle on every injected run."""
    report = run_campaign(
        workload_names=["parser", "crafty", "bzip2", "equake"],
        scenarios=("poison", "storm"), seeds=(0, 1),
        profile_transform=ADVERSARIES[adversary])
    assert report.ok, report.summary()
    # the recovery machinery was actually exercised
    assert sum(r.deferred_faults for r in report.runs) > 0


@pytest.mark.faultinject
def test_campaign_superblock_bit_for_bit():
    """The superblock scheduler (docs/scheduling.md) moves speculative
    loads above side exits and tail-duplicates join blocks; under
    injected ALAT storms and poisoned loads every run must still match
    the oracle, and the chk.s recovery machinery must actually fire
    inside the reordered code."""
    report = run_campaign(
        config=SpecConfig.profile().but(use_edge_profile=False,
                                        scheduler="superblock"),
        scenarios=("poison", "storm", "chaos"), seeds=(0, 1))
    assert report.ok, report.summary()
    assert report.total_recoveries > 0
    assert sum(r.deferred_faults for r in report.runs) > 0


@pytest.mark.faultinject
def test_parallel_campaign_bit_identical():
    """The process-pool fan-out may only change wall-clock: the report —
    run order, every counter, the degraded notes — must equal the
    sequential one field for field."""
    kwargs = dict(workload_names=["art", "parser"],
                  scenarios=("poison", "storm"), seeds=(0, 1))
    seq = run_campaign(jobs=1, **kwargs)
    # force_parallel: this matrix is below the measured break-even, but
    # the point here is the pool machinery itself, on any host
    par = run_campaign(jobs=2, force_parallel=True, **kwargs)
    assert [vars(r) for r in par.runs] == [vars(r) for r in seq.runs]
    assert par.degraded == seq.degraded


@pytest.mark.faultinject
def test_parallel_campaign_with_adversary():
    """The named adversarial transforms are picklable, so the parallel
    path accepts them too."""
    kwargs = dict(workload_names=["parser"], scenarios=("poison",),
                  seeds=(0,), profile_transform=ADVERSARIES["invert"])
    seq = run_campaign(jobs=1, **kwargs)
    par = run_campaign(jobs=2, force_parallel=True, **kwargs)
    assert [vars(r) for r in par.runs] == [vars(r) for r in seq.runs]


def test_parallel_break_even_fallback_is_bit_identical():
    """Below the measured break-even (fewer than PARALLEL_MIN_CPUS
    CPUs, or a matrix smaller than PARALLEL_MIN_RUNS) ``jobs=4``
    silently takes the serial path — and whichever path a host picks,
    the report is bit-for-bit identical to ``jobs=1``."""
    from repro.hazards.campaign import PARALLEL_MIN_RUNS

    kwargs = dict(workload_names=["parser", "bzip2"],
                  scenarios=("poison",), seeds=(0, 1))
    total = 2 * 1 * 2
    assert total < PARALLEL_MIN_RUNS  # this matrix sits below break-even
    seq = run_campaign(jobs=1, **kwargs)
    par = run_campaign(jobs=4, **kwargs)  # serial fallback on small boxes
    assert [vars(r) for r in par.runs] == [vars(r) for r in seq.runs]
    assert par.degraded == seq.degraded


@pytest.mark.faultinject
def test_uninjected_scenario_none_is_clean_for_spec_workloads():
    """'none' on the Figure-10 set: no deferred faults are fabricated
    (the SPEC-shaped workloads have no out-of-range speculation)."""
    report = run_campaign(workload_names=["gzip", "mcf"],
                          scenarios=("none",), seeds=(0,))
    assert report.ok
    assert all(r.deferred_faults == 0 for r in report.runs)
