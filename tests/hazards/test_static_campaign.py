"""Fault-injection campaign for the profile-free static speculation
source (ISSUE 8, ``pytest -m spec_static``).

The static source guesses likeliness from probabilistic alias analysis
alone — no training run ever happens — so a wrong guess is *expected*
behaviour, not a bug: it may only cost recovery replays and check
misses, never a single output line.  The 210-run matrix mirrors the
profile-mode acceptance campaign (every workload × poison/storm/chaos
× 7 seeds) under the bit-for-bit oracle."""

import pytest

from repro.core import SpecConfig
from repro.hazards import run_campaign
from repro.ssa import SpecMode

pytestmark = [pytest.mark.faultinject, pytest.mark.spec_static]

#: the campaign config: static flags, static control speculation (the
#: recovery workloads need their ld.s sites kept, so no edge profile)
STATIC_CONFIG = SpecConfig.profile().but(mode=SpecMode.STATIC,
                                         use_edge_profile=False)


def test_static_config_needs_no_train_run():
    assert not STATIC_CONFIG.needs_train_run
    assert STATIC_CONFIG.spec_source == "static"


def test_static_campaign_210_runs_bit_for_bit():
    """≥210 injected runs across all 10 workloads with statically
    guessed flags: zero output mismatches, zero ladder degradations,
    and wrong guesses actually bit (recoveries, deferred faults and
    check misses all occurred — they cost replays, nothing else)."""
    report = run_campaign(config=STATIC_CONFIG,
                          scenarios=("poison", "storm", "chaos"),
                          seeds=range(7))
    assert len(report.runs) >= 210
    assert report.ok, report.summary()
    assert report.degraded == []
    assert report.total_recoveries > 0
    assert sum(r.deferred_faults for r in report.runs) > 0
    assert sum(r.check_misses for r in report.runs) > 0
    assert sum(r.replay_loads for r in report.runs) > 0


def test_static_campaign_is_reproducible():
    kwargs = dict(config=STATIC_CONFIG,
                  workload_names=["parser", "art"],
                  scenarios=("chaos",), seeds=(0, 1))
    a, b = run_campaign(**kwargs), run_campaign(**kwargs)
    assert [vars(r) for r in a.runs] == [vars(r) for r in b.runs]
