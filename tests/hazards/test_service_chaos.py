"""The service chaos campaign: every request ends in exactly one typed
outcome, no hangs, no duplicate work, bit-identical matrices
(docs/service.md, "Overload & recovery")."""

from pathlib import Path

import pytest

from repro.hazards import (FAST_SCENARIOS, SERVICE_SCENARIOS,
                           run_service_campaign)
from repro.hazards.service_chaos import ScenarioResult, ServiceChaosReport

RESULTS = Path(__file__).resolve().parents[2] / "results" \
    / "service_chaos.txt"


# ---------------------------------------------------------------------------
# report plumbing (pure, no daemons)
# ---------------------------------------------------------------------------

def test_matrix_is_deterministic_text():
    report = ServiceChaosReport(seed=0)
    res = ScenarioResult("overload-storm", requests=8, ok=5,
                         errors={"overload": 3}, sheds=3, retried=3,
                         distinct_results=1, oracle_ok=True)
    report.results.append(res)
    matrix = report.matrix()
    assert "seed 0" in matrix
    assert "overload-storm" in matrix
    assert "PASS" in matrix
    assert report.matrix() == matrix  # rendering is pure


def test_accounting_failure_flags_the_oracle():
    from repro.hazards.service_chaos import _check_accounting

    res = ScenarioResult("x", requests=3, ok=1, errors={"timeout": 1},
                         oracle_ok=True)
    _check_accounting(res)
    assert not res.oracle_ok
    assert any("accounting" in n for n in res.notes)


def test_unknown_scenario_is_rejected():
    with pytest.raises(ValueError):
        run_service_campaign(("no-such-scenario",), seed=0)


def test_fast_scenarios_are_a_subset():
    assert set(FAST_SCENARIOS) <= set(SERVICE_SCENARIOS)


# ---------------------------------------------------------------------------
# tier-1: the in-process scenario families, run twice, bit-identical
# ---------------------------------------------------------------------------

def test_fast_campaign_passes_and_is_bit_identical_across_runs():
    first = run_service_campaign(FAST_SCENARIOS, seed=0)
    assert first.ok, first.summary()
    second = run_service_campaign(FAST_SCENARIOS, seed=0)
    assert second.ok, second.summary()
    assert first.matrix() == second.matrix(), (
        "the chaos matrix must be deterministic for a given seed:\n"
        f"--- run 1 ---\n{first.matrix()}\n"
        f"--- run 2 ---\n{second.matrix()}")


# ---------------------------------------------------------------------------
# the full campaign (worker subprocesses included) — the CI chaos job
# ---------------------------------------------------------------------------

@pytest.mark.chaos
def test_full_campaign_matches_committed_report(tmp_path):
    """All five scenario families pass, and the matrix regenerates the
    committed ``results/service_chaos.txt`` byte-for-byte — the same
    standing-proof discipline as the fault-injection report."""
    report = run_service_campaign(SERVICE_SCENARIOS, seed=0)
    assert report.ok, report.summary()
    regenerated = report.matrix() + "\n"
    assert RESULTS.exists(), \
        "results/service_chaos.txt must be committed (repro chaos " \
        "--report results/service_chaos.txt)"
    assert RESULTS.read_text() == regenerated, (
        "results/service_chaos.txt is stale; regenerate with "
        "`python -m repro chaos --report results/service_chaos.txt`")
