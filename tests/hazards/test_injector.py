"""Injector unit tests: determinism, cloning, scenarios, adversarial
profile transforms."""

import random

import pytest

from repro.hazards import (ADVERSARIES, Injector, SCENARIOS, empty_profile,
                           invert_profile, make_injector, shuffle_profile)
from repro.lang import compile_source
from repro.profiling import collect_alias_profile
from repro.target import ALAT, DataCache


def test_same_seed_same_decisions():
    a = Injector(seed=9, sload_nat_rate=0.5)
    b = Injector(seed=9, sload_nat_rate=0.5)
    decisions_a = [a.poison_load("ld.s", i) for i in range(50)]
    decisions_b = [b.poison_load("ld.s", i) for i in range(50)]
    assert decisions_a == decisions_b
    assert any(decisions_a) and not all(decisions_a)


def test_clone_rewinds_stream_and_shares_telemetry():
    inj = Injector(seed=4, sload_nat_rate=0.5)
    first = [inj.poison_load("ld.s", i) for i in range(20)]
    clone = inj.clone()
    assert [clone.poison_load("ld.s", i) for i in range(20)] == first
    # telemetry accumulated across both
    assert inj.telemetry["poison:ld.s"] == 2 * sum(first)


def test_zero_rates_never_perturb():
    inj = Injector(seed=1)
    assert not any(inj.poison_load("ld.s", i) for i in range(100))
    alat = ALAT(entries=4, ways=2)
    alat.arm(0, 3)
    cache = DataCache()
    for _ in range(50):
        inj.after_store(alat, cache)
    assert len(alat) == 1
    assert not inj.telemetry


def test_after_store_evicts_and_flushes():
    inj = Injector(seed=2, alat_evict_rate=1.0, cache_flush_rate=1.0)
    alat = ALAT(entries=4, ways=2)
    alat.arm(0, 3)
    cache = DataCache()
    cache.load(100, False)
    inj.after_store(alat, cache)
    assert len(alat) == 0
    assert inj.telemetry["alat-evict"] == 1
    assert inj.telemetry["cache-flush"] == 1
    # no entries left: further evictions are no-ops, not errors
    inj.after_store(alat, cache)
    assert inj.telemetry["alat-evict"] == 1


def test_make_injector_validates_scenario():
    for name in SCENARIOS:
        make_injector(name, seed=1)
    with pytest.raises(ValueError, match="unknown injection scenario"):
        make_injector("meltdown")


def test_alat_evict_one_is_deterministic():
    def build():
        alat = ALAT(entries=8, ways=2)
        for reg in range(5):
            alat.arm(reg, reg * 3)
        return alat

    a, b = build(), build()
    a.evict_one(random.Random(7))
    b.evict_one(random.Random(7))
    assert a._home.keys() == b._home.keys()


# ---------------------------------------------------------------------------
# adversarial profiles
# ---------------------------------------------------------------------------

SRC = """
void kernel(int *p, int *q, int n) {
  int i; int x;
  for (i = 0; i < n; i = i + 1) {
    x = p[0];
    q[i] = x + i;
    x = p[0];
  }
}
void main() {
  int a[8]; int b[8]; int g;
  g = input();
  a[0] = 3;
  if (g < 0) { kernel(a, a, 8); }
  kernel(a, b, 8);
  print(b[7]);
}
"""


def _profile():
    return collect_alias_profile(compile_source(SRC), inputs=[0])


def test_transforms_do_not_mutate_the_input():
    profile = _profile()
    before = {k: dict(v) for k, v in profile.load_locs.items()}
    for transform in ADVERSARIES.values():
        transform(profile)
    after = {k: dict(v) for k, v in profile.load_locs.items()}
    assert before == after


def test_empty_profile_is_empty():
    adv = empty_profile(_profile())
    assert not adv.load_locs and not adv.store_locs
    assert not adv.load_count and not adv.store_count


def test_invert_complements_within_observed_locs():
    profile = _profile()
    adv = invert_profile(profile)
    all_locs = set()
    for counter in profile.load_locs.values():
        all_locs.update(counter)
    for site, counter in profile.load_locs.items():
        assert set(adv.load_locs[site]) == all_locs - set(counter)


def test_shuffle_is_a_permutation():
    from collections import Counter

    profile = _profile()
    adv = shuffle_profile(profile, seed=5)
    assert Counter(frozenset(c.items())
                   for c in profile.load_locs.values()) \
        == Counter(frozenset(c.items()) for c in adv.load_locs.values())
    assert set(profile.load_locs) == set(adv.load_locs)
