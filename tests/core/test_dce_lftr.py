"""Unit tests for dead-code elimination and LFTR."""

import pytest

from repro.analysis import AliasClassifier
from repro.core import (PREContext, SpecConfig, eliminate_dead_code,
                        eliminate_redundant_exprs, optimize_function,
                        replace_linear_tests)
from repro.ir import Bin, CondBr, split_module_critical_edges
from repro.lang import compile_source
from repro.profiling import run_module
from repro.ssa import (SAssign, SpecMode, build_ssa, flagger_for,
                       lower_module)


def ssa_of(src, fn="main"):
    module = compile_source(src)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)
    return module, build_ssa(module, module.functions[fn], classifier,
                             flagger=flagger_for(SpecMode.OFF))


def assigns(ssa, name):
    return [s for _, s in ssa.statements()
            if isinstance(s, SAssign) and getattr(s.lhs, "symbol", s.lhs
                                                  ).name == name]


# ---- DCE --------------------------------------------------------------------


def test_dce_removes_unused_assignment():
    module, ssa = ssa_of("void main() { int x; int y; x = 1; y = 2;"
                         " print(y); }")
    removed = eliminate_dead_code(ssa)
    assert removed >= 1
    assert assigns(ssa, "x") == []
    assert assigns(ssa, "y")


def test_dce_removes_dead_phi_increment_cycle():
    # i is only used by its own increment and φ: the whole web dies.
    module, ssa = ssa_of(
        "void main() { int i; int s; s = 9;"
        " for (i = 0; i < 4; i = i + 1) { s = s + 0; } print(s); }"
    )
    # force the loop test dead by replacing it with a constant compare
    # (as LFTR would) so only the φ↔increment cycle keeps i alive
    from repro.ssa import SBin, SConst, SCondBr, SVarUse
    from repro.ir import INT

    for block in ssa.blocks:
        term = block.term
        if isinstance(term, SCondBr) and isinstance(term.cond, SBin):
            left = term.cond.left
            if isinstance(left, SVarUse) and left.symbol.name == "i":
                term.cond = SBin("<", SConst(0, INT), SConst(1, INT))
    eliminate_dead_code(ssa)
    assert assigns(ssa, "i") == []


def test_dce_keeps_loads_feeding_prints():
    module, ssa = ssa_of(
        "void main() { int a[2]; int x; a[0] = 4; x = a[0]; print(x); }"
    )
    eliminate_dead_code(ssa)
    assert assigns(ssa, "x")


def test_dce_keeps_global_defs():
    module, ssa = ssa_of("int g; void main() { g = 1; }")
    eliminate_dead_code(ssa)
    assert assigns(ssa, "g")


def test_dce_keeps_address_taken_defs():
    module, ssa = ssa_of(
        "void main() { int x; int *p; p = &x; x = 3; print(*p); }"
    )
    eliminate_dead_code(ssa)
    assert assigns(ssa, "x")


def test_dce_removes_unused_loads():
    # reading memory has no observable effect: a dead load dies
    module, ssa = ssa_of(
        "void main() { int a[2]; int x; a[0] = 4; x = a[0]; print(1); }"
    )
    removed = eliminate_dead_code(ssa)
    assert assigns(ssa, "x") == []


# ---- LFTR ----------------------------------------------------------------


def run_sr_lftr(src):
    module = compile_source(src)
    expected = run_module(module)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)
    ssa_fns = []
    stats = {}
    for fn in module.functions.values():
        ssa = build_ssa(module, fn, classifier,
                        flagger=flagger_for(SpecMode.OFF))
        stats[fn.name] = optimize_function(ssa, SpecConfig.base())
        ssa_fns.append(ssa)
    lowered = lower_module(module, ssa_fns)
    assert run_module(lowered) == expected
    return lowered, stats


def test_lftr_rewrites_test_constant_bound():
    lowered, stats = run_sr_lftr(
        "void main() { int i; int s; s = 0;"
        " for (i = 0; i < 8; i = i + 1) { s = s + i * 5; } print(s); }"
    )
    assert stats["main"].lftr_replacements == 1
    conds = [t.cond for _, t in lowered.functions["main"].terminators()
             if isinstance(t, CondBr)]
    consts = [c.right.value for c in conds
              if isinstance(c, Bin) and hasattr(c.right, "value")]
    assert 40 in consts  # 8 * 5


def test_lftr_handles_invariant_variable_bound():
    """A loop-invariant bound n gets `n * stride` inserted into the
    preheader (Kennedy et al. [20]'s general LFTR)."""
    lowered, stats = run_sr_lftr(
        "void main() { int i; int n; int s; s = 0; n = 8;"
        " for (i = 0; i < n; i = i + 1) { s = s + i * 5; } print(s); }"
    )
    assert stats["main"].lftr_replacements == 1


def test_lftr_skips_bound_modified_in_loop():
    lowered, stats = run_sr_lftr(
        "void main() { int i; int n; int s; s = 0; n = 16;"
        " for (i = 0; i < n; i = i + 1) { s = s + i * 5; n = n - 1; }"
        " print(s); }"
    )
    assert stats["main"].lftr_replacements == 0


def test_lftr_skips_nonlinear_iv():
    lowered, stats = run_sr_lftr(
        "void main() { int i; int s; s = 0; i = 0;"
        " while (i < 16) { s = s + i * 3; i = i * 2 + 1; } print(s); }"
    )
    assert stats["main"].lftr_replacements == 0


def test_lftr_negative_stride_flips_comparison():
    lowered, stats = run_sr_lftr(
        "void main() { int i; int s; s = 0;"
        " for (i = 0; i < 6; i = i + 1) { s = s + i * (0 - 4); }"
        " print(s); }"
    )
    # stride detection only handles iv*const with a Const node; the
    # negated constant folds through the unary: accept either outcome
    assert stats["main"].lftr_replacements in (0, 1)


def test_lftr_retires_induction_variable():
    lowered, stats = run_sr_lftr(
        "void main() { int i; int s; s = 0;"
        " for (i = 0; i < 8; i = i + 1) { s = s + i * 5; } print(s); }"
    )
    fn = lowered.functions["main"]
    # the initial `i = 0` legitimately survives (the temp's initial save
    # computes i*5 from it), but the per-iteration increment is retired
    increments = [s for _, s in fn.statements()
                  if hasattr(s, "sym") and s.sym.name == "i"
                  and isinstance(s.value, Bin)]
    assert increments == []


# ---- regression: optimizer output must re-verify (ISSUE 8) ---------------


def run_sr_lftr_verified(src):
    """Like :func:`run_sr_lftr`, but re-verifies the SSA after the
    optimizer — the pipeline's post-SSAPRE guard.  LFTR's rewritten
    loop test and strength reduction's injury repairs used to reference
    the temp with an unrenamed ``SVarUse(temp, None)``, which only this
    verifier catches (lowering tolerates it by collapsing onto the
    symbol), silently degrading affected functions down the ladder."""
    from repro.ssa import verify_ssa

    module = compile_source(src)
    expected = run_module(module)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)
    ssa_fns = []
    stats = {}
    for fn in module.functions.values():
        ssa = build_ssa(module, fn, classifier,
                        flagger=flagger_for(SpecMode.OFF))
        stats[fn.name] = optimize_function(ssa, SpecConfig.base())
        verify_ssa(ssa)
        ssa_fns.append(ssa)
    lowered = lower_module(module, ssa_fns)
    assert run_module(lowered) == expected
    return lowered, stats


def test_lftr_result_passes_ssa_verifier():
    _, stats = run_sr_lftr_verified(
        "void main() { int i; int s; s = 0;"
        " for (i = 0; i < 8; i = i + 1) { s = s + i * 5; } print(s); }"
    )
    assert stats["main"].lftr_replacements == 1


def test_lftr_invariant_bound_passes_ssa_verifier():
    _, stats = run_sr_lftr_verified(
        "void main() { int i; int n; int s; s = 0; n = 8;"
        " for (i = 0; i < n; i = i + 1) { s = s + i * 5; } print(s); }"
    )
    assert stats["main"].lftr_replacements == 1


def test_art_workload_compiles_without_failsafe():
    """End-to-end regression for the two unrenamed-temp-use bugs: art's
    f1_layer/match are the functions that used to fail ``verify-ssa``
    after LFTR + injury repairs and silently degrade to the ``no-lftr``
    rung.  With ``failsafe=False`` any verifier failure raises, so a
    clean compile with LFTR actually fired proves both fixes."""
    from repro.pipeline import compile_program
    from repro.workloads import get_workload

    wl = get_workload("art")
    result = compile_program(
        wl.source,
        SpecConfig.profile().but(use_edge_profile=False),
        train_inputs=wl.train_inputs, failsafe=False, cache=False)
    assert result.degraded == {}
    fired = {name: s.lftr_replacements
             for name, s in result.opt_stats.items() if s.lftr_replacements}
    assert fired == {"f1_layer": 1, "match": 1}
