"""Unit tests for SSAPRE engine internals: lexical keys, occurrence
collection, version chasing, and Φ-insertion mechanics."""

import pytest

from repro.analysis import AliasClassifier
from repro.core import PREContext, SSAPRE, collect_expr_classes, lexical_key
from repro.core.occurrences import LeftOcc, RealOcc, leaf_versions
from repro.ir import split_module_critical_edges
from repro.lang import compile_source
from repro.profiling import collect_alias_profile
from repro.ssa import SpecMode, build_ssa, flagger_for


def ssa_of(src, fn="main", mode=SpecMode.OFF, profile_inputs=None):
    module = compile_source(src)
    profile = None
    if mode is SpecMode.PROFILE:
        profile = collect_alias_profile(module,
                                        inputs=profile_inputs or [])
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)
    return build_ssa(module, module.functions[fn], classifier,
                     flagger=flagger_for(mode, profile))


# ---- lexical keys ----------------------------------------------------------


def test_lexical_key_ignores_versions():
    ssa = ssa_of(
        "void main() { int a; int x; a = 1; x = a + 2; a = 3;"
        " x = a + 2; print(x); }"
    )
    classes = collect_expr_classes(ssa, "arith")
    add_classes = [ec for ec in classes if ec.key[1] == "+"
                   and len(ec.real_occs) == 2]
    assert add_classes, "both a+2 occurrences must share one class"


def test_lexical_key_distinguishes_ops_and_order():
    ssa = ssa_of(
        "void main() { int a; int b; a = 1; b = 2;"
        " print(a + b); print(a - b); print(b + a); }"
    )
    classes = collect_expr_classes(ssa, "arith")
    keys = {ec.key for ec in classes}
    assert len(keys) == 3  # a+b, a-b, b+a all distinct lexically


def test_load_key_includes_vvar():
    src = (
        "void f(int *p, double *q) { print(*p); print(*q); }"
        "void main() { int a[2]; double b[2]; f(a, b); }"
    )
    ssa = ssa_of(src, fn="f")
    classes = collect_expr_classes(ssa, "load")
    load_keys = [ec.key for ec in classes if ec.key[0] == "load"]
    assert len(set(load_keys)) == 2


# ---- occurrence collection ---------------------------------------------------


def test_collection_orders_by_dominator_preorder():
    ssa = ssa_of(
        "void f(int *p) { int x; x = *p; if (x) { x = *p; } print(x); }"
        "void main() { int a[2]; f(a); }",
        fn="f",
    )
    classes = collect_expr_classes(ssa, "load")
    (ec,) = [e for e in classes if e.key[0] == "load"]
    assert len(ec.real_occs) == 2
    assert ec.real_occs[0].seq < ec.real_occs[1].seq


def test_stores_collected_as_left_occurrences():
    ssa = ssa_of(
        "void f(int *p) { *p = 3; print(*p); }"
        "void main() { int a[2]; f(a); }",
        fn="f",
    )
    classes = collect_expr_classes(ssa, "load", include_stores=True)
    (ec,) = [e for e in classes if e.key[0] == "load"]
    assert len(ec.left_occs) == 1
    assert ec.left_occs[0].forwardable  # stored value is a constant


def test_store_only_shapes_dropped():
    ssa = ssa_of(
        "void f(int *p) { *p = 3; }"
        "void main() { int a[2]; f(a); print(a[0]); }",
        fn="f",
    )
    classes = collect_expr_classes(ssa, "load", include_stores=True)
    assert all(ec.real_occs for ec in classes)


def test_include_stores_false_has_no_lefts():
    ssa = ssa_of(
        "void f(int *p) { *p = 3; print(*p); }"
        "void main() { int a[2]; f(a); }",
        fn="f",
    )
    classes = collect_expr_classes(ssa, "load", include_stores=False)
    assert all(not ec.left_occs for ec in classes)


def test_constant_expressions_are_candidates():
    ssa = ssa_of("void main() { int a[4]; print(a[3]); print(a[3]); }")
    classes = collect_expr_classes(ssa, "arith")
    const_addr = [ec for ec in classes if ec.key[0] == "bin"
                  and ec.key[3][0] == "const"]
    assert const_addr  # (&a + 3) is a zero-leaf class


# ---- version chasing -----------------------------------------------------------


def test_chase_skips_unlikely_chi_chain():
    src = (
        "void f(int *p, int *q) { int x; x = *p; *q = 1; *q = 2;"
        " x = x + *p; print(x); }"
        "void main() { int a[4]; int b[4]; int c; c = 0;"
        " if (c) { f(a, a); } f(a, b); }"
    )
    module = compile_source(src)
    profile = collect_alias_profile(module)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)
    ssa = build_ssa(module, module.functions["f"], classifier,
                    flagger=flagger_for(SpecMode.PROFILE, profile))
    ctx = PREContext(ssa)
    classes = collect_expr_classes(ssa, "load", include_stores=False)
    (ec,) = [e for e in classes if e.key[0] == "load"
             and len(e.real_occs) == 2]
    pre = SSAPRE(ctx, ec, allow_data_speculation=True)
    pre.insert_phis()
    pre.rename()
    occ1, occ2 = ec.real_occs
    assert occ1.cls == occ2.cls
    assert occ2.speculative  # matched only by skipping TWO weak updates


def test_chase_blocked_without_data_speculation():
    src = (
        "void f(int *p, int *q) { int x; x = *p; *q = 1;"
        " x = x + *p; print(x); }"
        "void main() { int a[4]; int b[4]; int c; c = 0;"
        " if (c) { f(a, a); } f(a, b); }"
    )
    module = compile_source(src)
    profile = collect_alias_profile(module)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)
    ssa = build_ssa(module, module.functions["f"], classifier,
                    flagger=flagger_for(SpecMode.PROFILE, profile))
    ctx = PREContext(ssa)
    classes = collect_expr_classes(ssa, "load", include_stores=False)
    (ec,) = [e for e in classes if e.key[0] == "load"
             and len(e.real_occs) == 2]
    pre = SSAPRE(ctx, ec, allow_data_speculation=False)
    pre.insert_phis()
    pre.rename()
    occ1, occ2 = ec.real_occs
    assert occ1.cls != occ2.cls  # likely χ kills without speculation


def test_likely_chi_blocks_chase_even_with_speculation():
    """A χs (flagged) update is binding: renaming must not skip it."""
    src = (
        "void f(int *p, int *q) { int x; x = *p; *q = 1;"
        " x = x + *p; print(x); }"
        "void main() { int a[4]; f(a, a); }"   # really aliases: profiled
    )
    module = compile_source(src)
    profile = collect_alias_profile(module)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)
    ssa = build_ssa(module, module.functions["f"], classifier,
                    flagger=flagger_for(SpecMode.PROFILE, profile))
    ctx = PREContext(ssa)
    classes = collect_expr_classes(ssa, "load", include_stores=False)
    (ec,) = [e for e in classes if e.key[0] == "load"
             and len(e.real_occs) == 2]
    pre = SSAPRE(ctx, ec, allow_data_speculation=True)
    pre.insert_phis()
    pre.rename()
    occ1, occ2 = ec.real_occs
    assert occ1.cls != occ2.cls


# ---- Appendix A Φ-insertion --------------------------------------------------


def test_phi_inserted_through_weak_update(mode=SpecMode.PROFILE):
    """Figure 6's premise: the Φ exists at the merge even though the only
    path to the second occurrence crosses a (weak) χ."""
    src = (
        "void main() { int a; int b; int x; int *p; int c; c = 0;"
        " if (c) { p = &a; } else { p = &b; }"
        " a = 7; x = a;"
        " if (c) { *p = 1; }"
        " *p = 2;"
        " x = x + a; print(x + b); }"
    )
    module = compile_source(src)
    profile = collect_alias_profile(module)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)
    ssa = build_ssa(module, module.functions["main"], classifier,
                    flagger=flagger_for(SpecMode.PROFILE, profile))
    ctx = PREContext(ssa)
    classes = collect_expr_classes(ssa, "load", include_stores=False)
    a_classes = [ec for ec in classes if ec.key[0] == "var"]
    assert a_classes
    for ec in a_classes:
        pre = SSAPRE(ctx, ec)
        pre.insert_phis()
        if len(ec.real_occs) == 2:
            assert ec.phis  # merge Φ placed despite the killing store


def test_leaf_versions_includes_vvar():
    ssa = ssa_of(
        "void f(int *p) { print(*p); }"
        "void main() { int a[2]; f(a); }",
        fn="f",
    )
    classes = collect_expr_classes(ssa, "load")
    (ec,) = [e for e in classes if e.key[0] == "load"]
    versions = leaf_versions(ec.real_occs[0].node)
    assert any(s.is_virtual for s in versions)
