"""Tests for data-speculative PRE — the paper's Figures 2, 5, 6, 7, 8."""

import pytest

from repro.core import SpecConfig
from repro.ir import Assign, Load

from .conftest import count_loads, optimize_source


def spec_assigns(module, fn="main"):
    return [(s.spec_kind, s) for _, s in module.functions[fn].statements()
            if isinstance(s, Assign) and s.spec_kind]


FIG2 = (  # Figure 2: load *p, store *q (never aliasing at runtime), load *p
    "void f(int *p, int *q) {"
    "  int x;"
    "  x = *p;"
    "  *q = 9;"
    "  x = x + *p;"
    "  print(x);"
    "}"
    "void main() { int a[8]; int b[8]; int c; c = 0;"
    "  a[0] = 5;"
    "  if (c) { f(a, a); }"
    "  f(a, b); }"
)


def test_fig2_profile_emits_advance_and_check():
    """The paper's Figure 2 transformation: ld.a + ld.c."""
    lowered, stats, _ = optimize_source(FIG2, SpecConfig.profile())
    kinds = [k for k, _ in spec_assigns(lowered, "f")]
    assert "advance" in kinds
    assert "check" in kinds
    assert stats["f"].promotion.checks == 1


def test_fig2_heuristic_also_speculates():
    lowered, stats, _ = optimize_source(FIG2, SpecConfig.heuristic())
    kinds = [k for k, _ in spec_assigns(lowered, "f")]
    assert "check" in kinds


def test_fig2_base_does_not_speculate():
    lowered, stats, _ = optimize_source(FIG2, SpecConfig.base())
    assert spec_assigns(lowered, "f") == []
    assert count_loads(lowered, "f") == 2


def test_fig5_speculatively_redundant_direct_variable():
    """Figure 5(c): two reads of `a` across a may-alias store become
    speculatively redundant — second read replaced by a check."""
    src = (
        "void main() { int a; int x; int *p; int c; c = 0;"
        " if (c) { p = &a; } else { p = alloc(1); }"
        " a = 1;"
        " x = a;"
        " *p = 2;"
        " x = x + a;"      # speculatively redundant with the first read
        " print(x); }"
    )
    lowered, stats, _ = optimize_source(src, SpecConfig.profile())
    kinds = [k for k, _ in spec_assigns(lowered)]
    assert "check" in kinds


def test_fig6_speculative_anticipation_across_merge():
    """Figure 6: the store *p between the merge and the use kills `a`
    only through an unlikely χ; speculative Φ-insertion + renaming still
    promote `a` across the merge."""
    src = (
        "void main() { int a; int b; int x; int *p; int c; c = 0;"
        " if (c) { p = &a; } else { p = &b; }"
        " a = 7;"
        " x = a;"          # first occurrence
        " if (c) { *p = 1; }"  # merge point; then a weak update
        " *p = 2;"
        " x = x + a;"      # speculatively redundant across the merge
        " print(x + b); }"
    )
    lowered, stats, _ = optimize_source(src, SpecConfig.profile())
    kinds = [k for k, _ in spec_assigns(lowered)]
    assert "check" in kinds
    assert "advance" in kinds


def test_loop_carried_speculative_promotion():
    """The smvp pattern: a loop-invariant load aliased with an in-loop
    store that never actually collides — promoted with one check per
    iteration replacing the load."""
    src = (
        "void f(double *src, double *dst, int n) {"
        "  int i;"
        "  for (i = 0; i < n; i = i + 1) {"
        "    dst[i] = dst[i] + src[0];"
        "  }"
        "}"
        "void main() { double a[4]; double b[4]; int c; c = 0;"
        "  a[0] = 1.5;"
        "  if (c) { f(a, a, 4); }"
        "  f(a, b, 4);"
        "  print(b[0] + b[3]); }"
    )
    base, bstats, _ = optimize_source(src, SpecConfig.base())
    spec, sstats, _ = optimize_source(src, SpecConfig.profile())
    kinds = [k for k, _ in spec_assigns(spec, "f")]
    assert "check" in kinds
    # speculation removed at least one body load relative to base
    assert sstats["f"].promotion.checks >= 1


def test_misspeculation_still_correct():
    """When the profiled non-alias DOES alias on the measured input, the
    check reloads and the program stays correct (semantics asserted by
    optimize_source).  Train run: no alias; ref: alias in 2nd call."""
    src = (
        "void f(int *p, int *q, int v) {"
        "  int x;"
        "  x = *p;"
        "  *q = v;"
        "  x = x + *p;"
        "  print(x);"
        "}"
        "void main() { int a[8]; int b[8];"
        "  a[0] = 5;"
        "  f(a, b, 9);"   # no aliasing
        "  f(a, a, 3);"   # p == q: mis-speculation at runtime
        "}"
    )
    lowered, stats, _ = optimize_source(src, SpecConfig.profile())
    # output equality is checked inside optimize_source: f must print
    # 10 then 6 (the store *q changes *p in the second call)


def test_aggressive_mode_promotes_everything_when_safe():
    lowered, stats, _ = optimize_source(FIG2, SpecConfig.aggressive())
    assert count_loads(lowered, "f") <= 2  # load + check at most


def test_speculation_across_call_with_profile():
    """Profile mode can speculate across calls (mod set is profiled);
    heuristic mode must not (rule 3)."""
    src = (
        "int g; int h;"
        "void noop() { h = h + 1; }"
        "void main() { int x; g = 5;"
        " x = g; noop(); x = x + g; print(x); }"
    )
    prof, pstats, _ = optimize_source(src, SpecConfig.profile())
    kinds = [k for k, _ in spec_assigns(prof)]
    assert "check" in kinds  # g promoted across the call, with a check
    heur, hstats, _ = optimize_source(src, SpecConfig.heuristic())
    kinds_h = [k for k, _ in spec_assigns(heur)]
    assert "check" not in kinds_h


def test_chained_indirection_check_on_outer_load():
    """v[i][0]-style chains: once the inner pointer load is checked, the
    outer load chases the check (Appendix B's chk.a chaining)."""
    src = (
        "void f(double **v, double *w) {"
        "  double s;"
        "  s = v[0][0];"
        "  w[0] = 3.5;"
        "  s = s + v[0][0];"
        "  print(s);"
        "}"
        "void main() {"
        "  double *row; double *w; double **v; int c; c = 0;"
        "  v = alloc(1); row = alloc(2); w = alloc(2);"
        "  v[0] = row; row[0] = 1.25;"
        "  if (c) { f(v, row); }"
        "  f(v, w); }"
    )
    lowered, stats, _ = optimize_source(src, SpecConfig.profile())
    kinds = [k for k, _ in spec_assigns(lowered, "f")]
    assert kinds.count("check") >= 1
