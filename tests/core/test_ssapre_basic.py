"""Unit tests for classical (non-speculative) SSAPRE behaviour."""

import pytest

from repro.core import SpecConfig
from repro.ir import Assign, Load

from .conftest import count_loads, optimize_source


def spec_kinds(module, fn="main"):
    return [s.spec_kind for _, s in module.functions[fn].statements()
            if isinstance(s, Assign) and s.spec_kind]


def test_full_redundancy_same_block():
    src = (
        "void f(int *p) { int x; int y; x = *p; y = *p; print(x + y); }"
        "void main() { int a[2]; a[0] = 3; f(a); }"
    )
    lowered, stats, _ = optimize_source(src)
    assert count_loads(lowered, "f") == 1
    assert stats["f"].promotion.reloads >= 1


def test_arith_redundancy():
    src = (
        "void main() { int a; int b; a = 3; b = 4;"
        " print(a * b); print(a * b); }"
    )
    lowered, stats, _ = optimize_source(src)
    assert stats["main"].epre.reloads >= 1


def test_partial_redundancy_insertion_diamond():
    # E computed on one path and after the join: PRE inserts on the other
    # path, making the join computation fully redundant.
    src = (
        "void main() { int a; int b; int c; int x; a = 3; b = 4; c = 1;"
        " x = 0;"
        " if (c) { x = a * b; } else { x = 2; }"
        " print(x + a * b); }"
    )
    lowered, stats, _ = optimize_source(src)
    assert stats["main"].epre.insertions >= 1
    assert stats["main"].epre.reloads >= 1


def test_no_insertion_when_not_downsafe_without_speculation():
    # E only on one branch, never after the join: insertion on the other
    # path would be pure loss; DownSafety must prevent it.
    src = (
        "void main() { int a; int b; int c; a = 3; b = 4; c = 0;"
        " if (c) { print(a * b); } else { print(7); } }"
    )
    cfg = SpecConfig.base().but(control_speculation=False)
    lowered, stats, _ = optimize_source(src, cfg)
    assert stats["main"].epre.insertions == 0


def test_loop_invariant_load_hoisted():
    src = (
        "void main() {"
        " double *v; int i; double s; v = alloc(4); v[2] = 2.5; s = 0.0;"
        " for (i = 0; i < 10; i = i + 1) { s = s + v[2]; }"
        " print(s); }"
    )
    lowered, stats, _ = optimize_source(src)
    fn = lowered.functions["main"]
    body = next(b for b in fn.blocks if b.name.startswith("for_body"))
    body_loads = sum(
        1 for s in body.stmts for e in s.walk_exprs()
        if isinstance(e, Load)
    )
    assert body_loads == 0  # the v[2] load no longer executes per iteration


def test_loop_invariant_not_hoisted_without_control_speculation():
    # The loop may run zero times, so hoisting is control speculation.
    src = (
        "void main() {"
        " double *v; int i; int n; double s; v = alloc(4); v[2] = 2.5;"
        " s = 0.0; n = 10;"
        " for (i = 0; i < n; i = i + 1) { s = s + v[2]; }"
        " print(s); }"
    )
    # (store forwarding would make the value legitimately available
    # without any speculation, so disable it for this test)
    cfg = SpecConfig.base().but(control_speculation=False,
                                store_forwarding=False)
    lowered, stats, _ = optimize_source(src, cfg)
    fn = lowered.functions["main"]
    body = next(b for b in fn.blocks if b.name.startswith("for_body"))
    body_loads = sum(
        1 for s in body.stmts for e in s.walk_exprs()
        if isinstance(e, Load)
    )
    assert body_loads == 1  # still loaded in the loop


def test_store_forwarding_to_subsequent_load():
    src = (
        "void f(int *p, int v) { *p = v; print(*p); }"
        "void main() { int a[2]; f(a, 42); }"
    )
    lowered, stats, _ = optimize_source(src)
    assert count_loads(lowered, "f") == 0  # load replaced by forwarded reg


def test_strength_reduction_and_lftr():
    src = (
        "void main() { int i; int s; s = 0;"
        " for (i = 0; i < 8; i = i + 1) { s = s + i * 12; }"
        " print(s); }"
    )
    lowered, stats, _ = optimize_source(src)
    fn = lowered.functions["main"]
    assert stats["main"].lftr_replacements == 1
    # the multiply is gone from the loop body
    from repro.ir import Bin

    body = next(b for b in fn.blocks if b.name.startswith("for_body"))
    muls = [e for s in body.stmts for e in s.walk_exprs()
            if isinstance(e, Bin) and e.op == "*"]
    assert muls == []
    # the induction variable itself was retired by DCE
    assert stats["main"].dce_removed >= 1


def test_lftr_disabled_keeps_test():
    src = (
        "void main() { int i; int s; s = 0;"
        " for (i = 0; i < 8; i = i + 1) { s = s + i * 12; }"
        " print(s); }"
    )
    cfg = SpecConfig.base().but(lftr=False)
    lowered, stats, _ = optimize_source(src, cfg)
    assert stats["main"].lftr_replacements == 0


def test_unoptimized_config_is_identity_for_loads():
    src = (
        "void f(int *p) { int x; int y; x = *p; y = *p; print(x + y); }"
        "void main() { int a[2]; a[0] = 3; f(a); }"
    )
    lowered, stats, _ = optimize_source(src, SpecConfig.unoptimized())
    assert count_loads(lowered, "f") == 2


def test_no_checks_without_data_speculation():
    src = (
        "void f(int *p, int *q) { int x; x = *p; *q = 9; x = x + *p;"
        " print(x); }"
        "void main() { int a[8]; int b[8]; int c; c = 0;"
        " if (c) { f(a, a); } f(a, b); }"
    )
    lowered, stats, _ = optimize_source(src, SpecConfig.base())
    assert spec_kinds(lowered, "f") == []
    assert count_loads(lowered, "f") == 2  # may-alias store blocks PRE


def test_call_blocks_promotion_of_globals():
    src = (
        "int g;"
        "void touch() { g = g + 1; }"
        "void main() { int x; g = 5; x = g; touch(); x = x + g;"
        " print(x); }"
    )
    lowered, stats, _ = optimize_source(src, SpecConfig.base())
    # the second g read must survive (the call modifies g)
    assert count_loads(lowered, "main") >= 2
