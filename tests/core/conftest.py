"""Shared helpers for SSAPRE tests."""

import pytest

from repro.analysis import AliasClassifier
from repro.core import SpecConfig, optimize_function
from repro.ir import split_module_critical_edges
from repro.lang import compile_source
from repro.profiling import (collect_alias_profile, collect_edge_profile,
                             run_module)
from repro.ssa import SpecMode, build_ssa, flagger_for, lower_module


def optimize_source(src, config=None, dump=False):
    """Compile, profile (if needed), optimize, and check semantics.

    Returns (lowered module, per-function stats dict, output lines).
    """
    config = config or SpecConfig.base()
    module = compile_source(src)
    expected = run_module(module)
    alias_profile = (collect_alias_profile(module)
                     if config.needs_alias_profile else None)
    edge_profile = (collect_edge_profile(module)
                    if config.use_edge_profile else None)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module, use_tbaa=config.use_tbaa)
    flagger = flagger_for(config.mode, alias_profile)
    stats = {}
    ssa_fns = []
    for fn in module.functions.values():
        ssa = build_ssa(module, fn, classifier, flagger=flagger)
        stats[fn.name] = optimize_function(ssa, config,
                                           edge_profile=edge_profile)
        ssa_fns.append(ssa)
        if dump:
            from repro.ssa import format_ssa

            print(format_ssa(ssa))
    lowered = lower_module(module, ssa_fns)
    got = run_module(lowered)
    assert got == expected, f"semantics changed: {got} != {expected}"
    return lowered, stats, got


def count_loads(module, fn_name=None):
    """Static count of load expressions + memory-resident scalar reads."""
    from repro.ir import Load, VarRead, StorageKind

    def is_mem_read(node):
        if isinstance(node, Load):
            return True
        if isinstance(node, VarRead):
            sym = node.sym
            return ((sym.kind is StorageKind.GLOBAL or sym.address_taken)
                    and not sym.is_array)
        return False

    total = 0
    fns = ([module.functions[fn_name]] if fn_name
           else module.functions.values())
    for fn in fns:
        for _, stmt in fn.statements():
            total += sum(1 for e in stmt.walk_exprs() if is_mem_read(e))
        for _, term in fn.terminators():
            for top in term.exprs():
                total += sum(1 for e in top.walk() if is_mem_read(e))
    return total
