"""Unit tests for the flow-sensitive µ/χ refinement (paper Fig. 4)."""

import pytest

from repro.analysis import AliasClassifier, HeapLoc
from repro.ir import Load, Store
from repro.lang import compile_source
from repro.ssa import (FlowSensitivePointsTo, SStore, build_ssa,
                       iter_loads, verify_ssa)


def analyze(src, fn="main"):
    module = compile_source(src)
    function = module.functions[fn]
    return module, function, FlowSensitivePointsTo(function)


def stores_of(fn):
    return [s for _, s in fn.statements() if isinstance(s, Store)]


def test_single_target_refined():
    src = (
        "void main() { int a; int b; int *p;"
        " p = &a; *p = 1; p = &b; *p = 2; print(a + b); }"
    )
    module, fn, fs = analyze(src)
    s1, s2 = stores_of(fn)
    assert fs.targets_of_store(s1) == frozenset(
        [next(s for s in fn.locals if s.name == "a")]
    )
    assert fs.targets_of_store(s2) == frozenset(
        [next(s for s in fn.locals if s.name == "b")]
    )


def test_join_merges_targets():
    src = (
        "void main() { int a; int b; int *p; int c; c = 1;"
        " if (c) { p = &a; } else { p = &b; } *p = 9; print(a + b); }"
    )
    module, fn, fs = analyze(src)
    (store,) = stores_of(fn)
    names = {l.name for l in fs.targets_of_store(store)}
    assert names == {"a", "b"}


def test_alloc_gives_heap_target():
    src = "void main() { int *p; p = alloc(4); *p = 1; }"
    module, fn, fs = analyze(src)
    (store,) = stores_of(fn)
    targets = fs.targets_of_store(store)
    assert targets is not None
    assert all(isinstance(t, HeapLoc) for t in targets)


def test_loop_carried_pointer_stays_in_object():
    src = (
        "void main() { int *p; int *q; int i; p = alloc(8); q = p;"
        " for (i = 0; i < 8; i = i + 1) { *q = i; q = q + 1; } }"
    )
    module, fn, fs = analyze(src)
    (store,) = stores_of(fn)
    targets = fs.targets_of_store(store)
    assert targets is not None and len(targets) == 1


def test_unknown_after_non_alloc_call_result():
    src = (
        "int g; int *mk() { return &g; }"
        "void main() { int *p; p = mk(); *p = 1; }"
    )
    module, fn, fs = analyze(src)
    (store,) = stores_of(fn)
    assert fs.targets_of_store(store) is None  # unknown → unrefined


def test_may_target_unknown_is_conservative():
    src = (
        "int g; int *mk() { return &g; }"
        "void main() { int x; int *p; p = mk(); *p = 1; print(x); }"
    )
    module, fn, fs = analyze(src)
    (store,) = stores_of(fn)
    x = next(s for s in fn.locals if s.name == "x")
    assert fs.may_target(id(store), x)


def test_refinement_shrinks_chi_lists():
    """p provably points to a at the store; the χ on b disappears even
    though Steensgaard merged a and b into one class."""
    src = (
        "void main() { int a; int b; int *p; int c; c = 0;"
        " if (c) { p = &b; print(*p); }"
        " p = &a;"
        " *p = 7;"
        " print(a + b); }"
    )
    module = compile_source(src)
    fn = module.functions["main"]
    classifier = AliasClassifier(module)
    unrefined = build_ssa(module, fn, classifier)
    (store_u,) = [s for _, s in unrefined.statements()
                  if isinstance(s, SStore)]
    names_u = {c.symbol.name for c in store_u.chis
               if not c.symbol.is_virtual}

    module2 = compile_source(src)
    fn2 = module2.functions["main"]
    classifier2 = AliasClassifier(module2)
    fs = FlowSensitivePointsTo(fn2)
    refined = build_ssa(module2, fn2, classifier2, refinement=fs)
    verify_ssa(refined)
    (store_r,) = [s for _, s in refined.statements()
                  if isinstance(s, SStore)]
    names_r = {c.symbol.name for c in store_r.chis
               if not c.symbol.is_virtual}
    assert "b" in names_u          # equivalence classes say may-alias
    assert names_r == {"a"}        # flow-sensitivity knows better


def test_refined_pipeline_still_correct():
    from repro.core import SpecConfig
    from repro.pipeline import compile_and_run

    src = (
        "void main() { int a; int b; int *p; int c; c = input();"
        " if (c) { p = &b; } else { p = &a; }"
        " a = 1; b = 2; *p = 5; print(a + b); }"
    )
    for flow_refine in (True, False):
        cfg = SpecConfig.profile().but(flow_refine=flow_refine)
        result = compile_and_run(src, cfg, train_inputs=[0],
                                 ref_inputs=[1])
        assert result.output == result.expected


def test_targets_of_load_and_refine_module():
    src = (
        "int helper(int *p) { return p[0]; }"
        "void main() { int x; int *p; p = &x; x = 4;"
        " print(helper(p) + *p); }"
    )
    module = compile_source(src)
    refinements = __import__("repro.ssa", fromlist=["refine_module"]).refine_module(module)
    assert set(refinements) == {"helper", "main"}
    main_fs = refinements["main"]
    from repro.ir import Load

    loads = []
    for _, stmt in module.functions["main"].statements():
        for e in stmt.walk_exprs():
            if isinstance(e, Load):
                loads.append(e)
    (load,) = loads
    targets = main_fs.targets_of_load(load)
    assert targets is not None
    assert {t.name for t in targets} == {"x"}
