"""Round-trip tests: IR → SSA → IR preserves semantics, plus
critical-edge splitting."""

import pytest

from repro.analysis import AliasClassifier
from repro.ir import (CondBr, split_critical_edges,
                      split_module_critical_edges, verify_module)
from repro.lang import compile_source
from repro.profiling import run_module
from repro.ssa import build_ssa, lower_module, verify_ssa

PROGRAMS = [
    "void main() { print(1 + 2); }",
    (
        "void main() { int i; int s; s = 0;"
        " for (i = 0; i < 10; i = i + 1) { s = s + i * i; } print(s); }"
    ),
    (
        "void main() { int a; int *p; int x; p = &a; a = 1; *p = 7;"
        " x = a; print(x); }"
    ),
    (
        "int fib(int n) { if (n < 2) { return n; }"
        " return fib(n - 1) + fib(n - 2); }"
        "void main() { print(fib(12)); }"
    ),
    (
        "void main() { double *v; int i; double s; v = alloc(8); s = 0.0;"
        " for (i = 0; i < 8; i = i + 1) { v[i] = i * 0.5; }"
        " for (i = 0; i < 8; i = i + 1) { s = s + v[i]; } print(s); }"
    ),
    (
        "int g;"
        "void bump(int d) { g = g + d; }"
        "void main() { int i; for (i = 0; i < 3; i = i + 1) { bump(i); }"
        " print(g); }"
    ),
]


@pytest.mark.parametrize("src", PROGRAMS)
def test_ssa_roundtrip_preserves_output(src):
    module = compile_source(src)
    expected = run_module(module)
    classifier = AliasClassifier(module)
    ssa_fns = [build_ssa(module, fn, classifier)
               for fn in module.functions.values()]
    for ssa in ssa_fns:
        verify_ssa(ssa)
    lowered = lower_module(module, ssa_fns)
    verify_module(lowered)
    assert run_module(lowered) == expected


def test_split_critical_edges_loop():
    # for-loop: cond -> body / exit, body side has one pred; the edge
    # cond->exit is critical when exit has 2+ preds (e.g. via break).
    src = (
        "void main() { int i;"
        " for (i = 0; i < 10; i = i + 1) {"
        "   if (i == 5) { break; }"
        " } print(i); }"
    )
    module = compile_source(src)
    expected = run_module(module)
    n = split_module_critical_edges(module)
    assert n >= 1
    verify_module(module)
    assert run_module(module) == expected
    # after splitting, no CondBr successor has multiple preds
    for fn in module.functions.values():
        for block in fn.blocks:
            if isinstance(block.terminator, CondBr):
                for succ in block.terminator.successors():
                    assert len(succ.preds) == 1


def test_split_is_idempotent():
    src = (
        "void main() { int i;"
        " for (i = 0; i < 10; i = i + 1) { if (i == 5) { break; } }"
        " print(i); }"
    )
    module = compile_source(src)
    split_module_critical_edges(module)
    assert split_module_critical_edges(module) == 0


def test_roundtrip_after_edge_splitting():
    src = PROGRAMS[1]
    module = compile_source(src)
    expected = run_module(module)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)
    ssa_fns = [build_ssa(module, fn, classifier)
               for fn in module.functions.values()]
    lowered = lower_module(module, ssa_fns)
    assert run_module(lowered) == expected
