"""Detailed out-of-SSA tests: annotation preservation and structure."""

import pytest

from repro.core import SpecConfig
from repro.ir import Assign, CondBr, Jump, Return
from repro.pipeline import compile_program


FIG2 = (
    "void f(int *p, int *q) { int x; x = *p; *q = 9; x = x + *p;"
    " print(x); }"
    "void main() { int a[8]; int b[8]; int c; c = input();"
    " a[0] = 5; if (c) { f(a, a); } f(a, b); }"
)


def optimized(src=FIG2, config=None, train=(0,)):
    return compile_program(src, config or SpecConfig.profile(),
                           train_inputs=list(train)).optimized


def test_spec_kinds_preserved_through_lowering():
    module = optimized()
    kinds = [s.spec_kind for _, s in module.functions["f"].statements()
             if isinstance(s, Assign) and s.spec_kind]
    assert "advance" in kinds and "check" in kinds


def test_phis_fully_eliminated():
    module = optimized()
    for fn in module.functions.values():
        for _, stmt in fn.statements():
            assert type(stmt).__name__ != "SPhi"


def test_block_structure_preserved():
    src = (
        "void main() { int i; int s; s = 0;"
        " for (i = 0; i < 4; i = i + 1) { s = s + i; } print(s); }"
    )
    module = optimized(src, SpecConfig.base(), train=())
    fn = module.functions["main"]
    names = {b.name for b in fn.blocks}
    assert any(n.startswith("for_cond") for n in names)
    assert any(n.startswith("for_body") for n in names)
    terminators = [b.terminator for b in fn.blocks]
    assert any(isinstance(t, CondBr) for t in terminators)
    assert any(isinstance(t, Return) for t in terminators)


def test_virtual_variables_leave_no_trace():
    module = optimized()
    for fn in module.functions.values():
        for _, stmt in fn.statements():
            for expr in stmt.exprs():
                for node in expr.walk():
                    sym = getattr(node, "sym", None)
                    if sym is not None:
                        assert not sym.is_virtual


def test_temps_share_one_symbol_per_expression():
    """All versions of one PRE temporary collapse onto one symbol: the
    advance and the check write the same temp (the ALAT's register
    key)."""
    module = optimized()
    spec_assigns = [s for _, s in module.functions["f"].statements()
                    if isinstance(s, Assign) and s.spec_kind]
    advance = next(s for s in spec_assigns if s.spec_kind == "advance")
    check = next(s for s in spec_assigns if s.spec_kind == "check")
    assert advance.sym is check.sym


def test_lowered_module_reverifies():
    from repro.ir import verify_module

    module = optimized()
    verify_module(module)  # already done in the pipeline; explicit here
