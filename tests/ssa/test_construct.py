"""Unit tests for HSSA construction (φ insertion, renaming, µ/χ)."""

import pytest

from repro.analysis import AliasClassifier
from repro.lang import compile_source
from repro.ssa import (SAssign, SCall, SLoad, SPhi, SStore, SVarUse,
                       build_ssa, format_ssa, verify_ssa)


def ssa_of(src, fn="main"):
    module = compile_source(src)
    classifier = AliasClassifier(module)
    ssa = build_ssa(module, module.functions[fn], classifier)
    verify_ssa(ssa)
    return ssa


def find_assigns(ssa, name):
    out = []
    for _, stmt in ssa.statements():
        if isinstance(stmt, SAssign) and stmt.lhs.symbol.name == name:
            out.append(stmt)
    return out


def find_loads(ssa):
    from repro.ssa import iter_loads
    return list(iter_loads(ssa))


def test_straightline_versions_increment():
    ssa = ssa_of("void main() { int x; x = 1; x = 2; print(x); }")
    a1, a2 = find_assigns(ssa, "x")
    assert a1.lhs.version == 2  # version 1 is the live-on-entry version
    assert a2.lhs.version == 3
    # the print uses the latest version
    (pr,) = [s for _, s in ssa.statements() if type(s).__name__ == "SPrint"]
    use = pr.args[0]
    assert isinstance(use, SVarUse) and use.var is a2.lhs


def test_phi_inserted_at_join():
    ssa = ssa_of(
        "void main() { int x; int c; c = 1;"
        " if (c) { x = 1; } else { x = 2; } print(x); }"
    )
    phis = [p for b in ssa.blocks for p in b.phis if p.symbol.name == "x"]
    assert len(phis) == 1
    phi = phis[0]
    versions = sorted(a.version for a in phi.args)
    assert len(set(a.version for a in phi.args)) == 2
    assert phi.lhs.version not in versions


def test_loop_phi_has_back_edge_arg():
    ssa = ssa_of(
        "void main() { int i; for (i = 0; i < 3; i = i + 1) { print(i); } }"
    )
    cond = next(b for b in ssa.blocks if b.name.startswith("for_cond"))
    phis = [p for p in cond.phis if p.symbol.name == "i"]
    assert len(phis) == 1
    phi = phis[0]
    # one arg from entry (i=0 def), one from the step block
    assert len(phi.args) == 2
    assert phi.args[0] is not phi.args[1]


def test_params_get_entry_version():
    ssa = ssa_of("int f(int n) { return n + 1; } void main() { }", fn="f")
    term = ssa.entry.term
    use = term.value.left
    assert isinstance(use, SVarUse)
    assert use.var.version == 1
    assert use.var.def_site == "entry"


def test_store_chi_versions_virtual_variable():
    ssa = ssa_of(
        "void f(int *p) { int x; x = *p; *p = 1; x = *p; print(x); }"
        "void main() { int a[2]; f(a); }",
        fn="f",
    )
    (store,) = [s for _, s in ssa.statements() if isinstance(s, SStore)]
    own = [c for c in store.chis if c.is_own]
    assert len(own) == 1
    chi = own[0]
    assert chi.lhs.version == chi.rhs.version + 1
    loads = find_loads(ssa)
    # load before store uses the chi's rhs; load after uses chi's lhs
    assert loads[0].own_mu.var is chi.rhs
    assert loads[1].own_mu.var is chi.lhs


def test_aliased_scalar_gets_chi_at_store():
    ssa = ssa_of(
        "void main() { int a; int *p; p = &a; a = 1; *p = 2; print(a); }"
    )
    (store,) = [s for _, s in ssa.statements() if isinstance(s, SStore)]
    chi_syms = {c.symbol.name for c in store.chis if not c.symbol.is_virtual}
    assert "a" in chi_syms
    # and the print(a) use refers to the chi's new version
    (pr,) = [s for _, s in ssa.statements() if type(s).__name__ == "SPrint"]
    a_chi = next(c for c in store.chis if c.symbol.name == "a")
    assert pr.args[0].var is a_chi.lhs


def test_direct_assign_to_aliased_scalar_chis_vvar():
    ssa = ssa_of(
        "void main() { int a; int x; int *p; p = &a;"
        " x = *p; a = 3; x = *p; print(x); }"
    )
    assigns = find_assigns(ssa, "a")
    real_def = assigns[-1]
    assert len(real_def.chis) == 1
    assert real_def.chis[0].symbol.is_virtual
    loads = find_loads(ssa)
    assert loads[1].own_mu.var is real_def.chis[0].lhs


def test_call_chis_globals():
    ssa = ssa_of(
        "int g;"
        "void f() { g = 1; }"
        "void main() { g = 0; f(); print(g); }"
    )
    (call,) = [s for _, s in ssa.statements() if isinstance(s, SCall)]
    g_chis = [c for c in call.chis if c.symbol.name == "g"]
    assert len(g_chis) == 1
    (pr,) = [s for _, s in ssa.statements() if type(s).__name__ == "SPrint"]
    assert pr.args[0].var is g_chis[0].lhs


def test_mu_list_matches_alias_class():
    ssa = ssa_of(
        "void main() { int a; int b; int *p; int x;"
        " if (a) { p = &a; } else { p = &b; }"
        " x = *p; print(x); }"
    )
    (load,) = find_loads(ssa)
    names = {mu.symbol.name for mu in load.mus}
    assert {"a", "b"} <= names
    assert load.own_mu.symbol.is_virtual


def test_format_ssa_smoke():
    ssa = ssa_of("void main() { int x; x = 1; print(x); }")
    text = format_ssa(ssa)
    assert "x2 = 1" in text


def test_verify_catches_double_def():
    ssa = ssa_of("void main() { int x; x = 1; print(x); }")
    a = find_assigns(ssa, "x")[0]
    # sabotage: reuse the same SSAVar in a second def
    from repro.ssa import SConst, SSAVerificationError
    from repro.ir import INT
    dup = SAssign(a.lhs, SConst(9, INT))
    ssa.entry.stmts.insert(1, dup)
    with pytest.raises(SSAVerificationError):
        verify_ssa(ssa)
