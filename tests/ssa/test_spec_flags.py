"""Unit tests for speculation-flag assignment (paper §3.2.1 / §3.2.2),
including a fidelity test for the paper's Example 1."""

from repro.analysis import AliasClassifier
from repro.lang import compile_source
from repro.profiling import collect_alias_profile
from repro.ssa import (SpecMode, SCall, SStore, build_ssa, flagger_for,
                       iter_loads, verify_ssa)


def ssa_with_flags(src, mode, fn="main"):
    module = compile_source(src)
    profile = (collect_alias_profile(module)
               if mode is SpecMode.PROFILE else None)
    classifier = AliasClassifier(module)
    ssa = build_ssa(module, module.functions[fn], classifier,
                    flagger=flagger_for(mode, profile))
    verify_ssa(ssa)
    return ssa


EXAMPLE1 = (
    "void main() {"
    "  int a; int b; int x; int *p; int c;"
    "  c = 0;"
    "  if (c) { p = &a; } else { p = &b; }"
    "  a = 1;"            # s0: a1 =
    "  *p = 4;"           # s1: *p = 4 with chi(a), chis(b), chi(v)
    "  x = a;"            # s5: = a2
    "  a = 4;"            # s6: a3 = 4
    "  x = x + *p;"       # s8: = *p with mu(a3), mus(b2), mu(v2)
    "  print(x + b);"
    "}"
)


def example1_sites(ssa):
    (store,) = [s for _, s in ssa.statements() if isinstance(s, SStore)]
    load = [l for l in iter_loads(ssa)][-1]
    return store, load


def test_example1_profile_flags_match_paper():
    """Paper Example 1: profiling shows *p aliases b but not a, so the
    store's χ(b) is flagged χs while χ(a) stays a speculative weak
    update; the load's µ(b) becomes µs while µ(a) stays unflagged."""
    ssa = ssa_with_flags(EXAMPLE1, SpecMode.PROFILE)
    store, load = example1_sites(ssa)
    chi_by_name = {c.symbol.name: c for c in store.chis
                   if not c.symbol.is_virtual}
    assert chi_by_name["b"].likely          # chis(b1) — paper s3
    assert not chi_by_name["a"].likely      # chi(a1) ignorable — paper s2
    own = next(c for c in store.chis if c.is_own)
    assert own.likely                       # the store certainly writes v
    mu_by_name = {m.symbol.name: m for m in load.mus
                  if not m.symbol.is_virtual}
    assert mu_by_name["b"].likely           # mus(b2) — paper s7
    assert not mu_by_name["a"].likely       # mu(a3) ignorable
    assert load.own_mu.likely


def test_example1_off_mode_everything_binding():
    ssa = ssa_with_flags(EXAMPLE1, SpecMode.OFF)
    store, load = example1_sites(ssa)
    assert all(c.likely for c in store.chis)
    assert all(m.likely for m in load.mus)


def test_example1_aggressive_only_own_binding():
    ssa = ssa_with_flags(EXAMPLE1, SpecMode.AGGRESSIVE)
    store, load = example1_sites(ssa)
    assert all(c.likely == c.is_own for c in store.chis)


def test_profile_is_input_sensitive():
    """Same program, c = 1: now p aliases a, so flags flip."""
    src = EXAMPLE1.replace("c = 0;", "c = 1;")
    ssa = ssa_with_flags(src, SpecMode.PROFILE)
    store, _ = example1_sites(ssa)
    chi_by_name = {c.symbol.name: c for c in store.chis
                   if not c.symbol.is_virtual}
    assert chi_by_name["a"].likely
    assert not chi_by_name["b"].likely


def test_never_executed_store_fully_ignorable():
    src = (
        "void main() { int a; int *p; int x; p = &a;"
        " a = 1; if (0) { *p = 2; } x = a; print(x); }"
    )
    ssa = ssa_with_flags(src, SpecMode.PROFILE)
    (store,) = [s for _, s in ssa.statements() if isinstance(s, SStore)]
    assert all(not c.likely for c in store.chis)


FIG2 = (  # Figure 2: store *q between two loads of *p, never aliasing.
    # The dead call f(a, a) makes p/q may-aliases for the flow-insensitive
    # static analysis; the executed call passes distinct objects, so the
    # profile observes no dynamic aliasing — exactly the paper's setup.
    "void f(int *p, int *q) {"
    "  int x;"
    "  x = *p;"
    "  *q = 9;"
    "  x = x + *p;"
    "  print(x);"
    "}"
    "void main() { int a[8]; int b[8]; int c; c = 0;"
    "  if (c) { f(a, a); }"
    "  f(a, b); }"
)


def test_fig2_profile_cross_vvar_unlikely():
    module = compile_source(FIG2)
    profile = collect_alias_profile(module)
    classifier = AliasClassifier(module)
    ssa = build_ssa(module, module.functions["f"], classifier,
                    flagger=flagger_for(SpecMode.PROFILE, profile))
    (store,) = [s for _, s in ssa.statements() if isinstance(s, SStore)]
    cross = [c for c in store.chis if c.symbol.is_virtual and not c.is_own]
    assert len(cross) == 1
    assert not cross[0].likely  # *q never touched *p's cells at runtime


def test_fig2_heuristic_cross_vvar_unlikely():
    ssa = ssa_with_flags(FIG2, SpecMode.HEURISTIC, fn="f")
    (store,) = [s for _, s in ssa.statements() if isinstance(s, SStore)]
    cross = [c for c in store.chis if c.symbol.is_virtual and not c.is_own]
    assert all(not c.likely for c in cross)
    own = next(c for c in store.chis if c.is_own)
    assert own.likely  # rule 1: identical syntax certainly sees the update


def test_heuristic_calls_stay_binding():
    src = (
        "int g;"
        "void f() { g = g + 1; }"
        "void main() { int x; g = 1; f(); x = g; print(x); }"
    )
    ssa = ssa_with_flags(src, SpecMode.HEURISTIC)
    (call,) = [s for _, s in ssa.statements() if isinstance(s, SCall)]
    assert all(c.likely for c in call.chis)   # rule 3
    assert all(m.likely for m in call.mus)


def test_profile_call_mod_refines_chi():
    src = (
        "int g; int h;"
        "void f() { g = g + 1; }"
        "void main() { int x; g = 1; h = 2; f(); x = g + h; print(x); }"
    )
    ssa = ssa_with_flags(src, SpecMode.PROFILE)
    (call,) = [s for _, s in ssa.statements() if isinstance(s, SCall)]
    chi_by_name = {c.symbol.name: c for c in call.chis}
    assert chi_by_name["g"].likely       # f modifies g
    assert not chi_by_name["h"].likely   # h untouched by the call
