"""Tests for the SSA printer's paper-notation output."""

from repro.analysis import AliasClassifier
from repro.lang import compile_source
from repro.profiling import collect_alias_profile
from repro.ssa import SpecMode, build_ssa, flagger_for, format_ssa


def dump(src, mode=SpecMode.OFF, fn="main"):
    module = compile_source(src)
    profile = (collect_alias_profile(module)
               if mode is SpecMode.PROFILE else None)
    classifier = AliasClassifier(module)
    ssa = build_ssa(module, module.functions[fn], classifier,
                    flagger=flagger_for(mode, profile))
    return format_ssa(ssa)


def test_versions_shown():
    text = dump("void main() { int x; x = 1; x = 2; print(x); }")
    assert "x2 = 1" in text and "x3 = 2" in text
    assert "print(x3)" in text


def test_phi_notation():
    text = dump(
        "void main() { int x; int c; c = 1;"
        " if (c) { x = 1; } else { x = 2; } print(x); }"
    )
    assert "<- phi(" in text


def test_chi_and_mu_notation():
    text = dump(
        "void main() { int a; int *p; int x; p = &a; a = 1;"
        " *p = 2; x = *p; print(x); }"
    )
    assert "<- chi" in text
    assert "mu" in text  # the indirect load's µ list


def test_speculation_flags_printed_as_chis_mus():
    src = (
        "void main() { int a; int b; int x; int *p; int c; c = 0;"
        " if (c) { p = &a; } else { p = &b; }"
        " a = 1; *p = 4; x = a; print(x + b); }"
    )
    text = dump(src, mode=SpecMode.PROFILE)
    assert "chis(" in text    # flagged: highly likely (χs)
    assert "chi(" in text     # unflagged: speculative weak update


def test_blocks_labelled():
    text = dump("void main() { int i; for (i = 0; i < 2; i = i + 1) { } }")
    assert "entry0:" in text and "for_cond" in text
