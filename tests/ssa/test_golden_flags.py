"""Golden speculation-flag tests (ISSUE 8 acceptance gate).

The ``SpecSource`` refactor re-routed every flagger through
:class:`repro.ssa.SpecSource` implementations; these tests pin the
``heuristic`` and ``profile`` flag assignments **bit-for-bit** against
golden files generated from the pre-refactor closures
(``tests/ssa/golden/``, see ``tests/ssa/golden_flags.py``).  Any
diff here means the refactor changed flag semantics, not just shape.
"""

import pytest

from .golden_flags import (GOLDEN_MODES, all_golden_workloads, golden_path,
                           snapshot_workload)

WORKLOADS = {wl.name: wl for wl in all_golden_workloads()}


@pytest.mark.parametrize("mode", GOLDEN_MODES)
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_flags_bit_identical_to_pre_refactor(name, mode):
    with open(golden_path(name, mode)) as f:
        golden = f.read()
    assert snapshot_workload(WORKLOADS[name], mode) == golden


def test_source_dispatch_matches_direct_flaggers():
    """``flagger_for`` (the compatibility wrapper) and
    ``source_for(...).flagger()`` are the same code path: identical
    snapshots on a representative workload, every mode."""
    from repro.ssa import SpecMode, flagger_for, source_for
    from repro.ssa.spec import (AggressiveSource, HeuristicSource,
                                NoSpecSource, ProfileSource, StaticSource)

    for mode, cls in ((SpecMode.OFF, NoSpecSource),
                      (SpecMode.HEURISTIC, HeuristicSource),
                      (SpecMode.STATIC, StaticSource),
                      (SpecMode.AGGRESSIVE, AggressiveSource)):
        source = source_for(mode)
        assert isinstance(source, cls)
        assert source.name == mode.value
        assert callable(source.flagger())
        assert callable(flagger_for(mode))
    profile_source = source_for(SpecMode.PROFILE, profile=object())
    assert isinstance(profile_source, ProfileSource)
    assert profile_source.needs_train_run
    assert not HeuristicSource().needs_train_run
    assert not StaticSource().needs_train_run


def test_profile_source_requires_profile():
    from repro.ssa import SpecMode, source_for

    with pytest.raises(ValueError):
        source_for(SpecMode.PROFILE, profile=None)
