"""Golden flag-set machinery shared by the generator and the tests.

The golden files under ``tests/ssa/golden/`` were generated from the
pre-refactor flagger closures (ISSUE 8) and pin the ``heuristic`` and
``profile`` speculation-flag assignments bit-for-bit: the `SpecSource`
refactor must keep both sources' flag sets identical to these files.

Regenerate (only when flag *semantics* deliberately change) with::

    PYTHONPATH=src python tests/ssa/golden_flags.py
"""

import os

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: the modes the golden files pin (the pre-refactor flagger closures)
GOLDEN_MODES = ("heuristic", "profile")


def golden_path(workload: str, mode: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{workload}__{mode}.txt")


def snapshot_workload(workload, mode: str) -> str:
    """The canonical flag snapshot of every function of ``workload``
    under ``mode``, built exactly the way the pipeline's ``build-ssa``
    pass builds it (TBAA + mod/ref classifier, flow refinement)."""
    from repro.analysis import AliasClassifier, compute_modref
    from repro.lang import compile_source
    from repro.profiling import collect_alias_profile
    from repro.ssa import (FlowSensitivePointsTo, SpecMode, build_ssa,
                           flagger_for)
    from repro.ssa.spec import flag_snapshot

    module = compile_source(workload.source)
    spec_mode = SpecMode(mode)
    profile = None
    if spec_mode is SpecMode.PROFILE:
        profile = collect_alias_profile(module,
                                        inputs=workload.train_inputs)
    classifier = AliasClassifier(module, modref=compute_modref(module))
    parts = []
    for fn in module.functions.values():
        ssa = build_ssa(module, fn, classifier,
                        flagger=flagger_for(spec_mode, profile),
                        refinement=FlowSensitivePointsTo(fn))
        parts.append(flag_snapshot(ssa))
    return "".join(parts)


def all_golden_workloads():
    from repro.workloads import all_workloads, recovery_workloads

    return all_workloads() + recovery_workloads()


def main() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for workload in all_golden_workloads():
        for mode in GOLDEN_MODES:
            path = golden_path(workload.name, mode)
            with open(path, "w") as f:
                f.write(snapshot_workload(workload, mode))
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
