"""§3.2.1's list-extension rule: profiled LOCs *missing* from a µ/χ list
are added as flagged operands.

This matters exactly where TBAA is unsound: a type-punned store (int
write hitting a double variable's cell) is excluded from the χ list by
type-based filtering, but the profile observes the overlap — the rule
re-adds the χ with a flag, so the binding update is respected and the
program stays correct even under aggressive type-based assumptions.
"""

import pytest

from repro.analysis import AliasClassifier
from repro.core import SpecConfig
from repro.ir import split_module_critical_edges
from repro.lang import compile_source
from repro.pipeline import compile_and_run
from repro.profiling import collect_alias_profile
from repro.ssa import SpecMode, SStore, build_ssa, flagger_for

# d is a double; p punned to int* writes its cell with an int store.
PUNNED = (
    "void main() {"
    "  double d; int *p; double x;"
    "  p = &d;"          # ptr conversion: the pun
    "  d = 1.5;"
    "  x = d;"
    "  *p = 7;"          # int-typed store really modifies d
    "  x = x + d;"       # must observe the new value
    "  print(x, d);"
    "}"
)


def build(mode):
    module = compile_source(PUNNED)
    profile = (collect_alias_profile(module)
               if mode is SpecMode.PROFILE else None)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module)  # TBAA on
    ssa = build_ssa(module, module.functions["main"], classifier,
                    flagger=flagger_for(mode, profile))
    return ssa


def store_chis(ssa):
    (store,) = [s for _, s in ssa.statements() if isinstance(s, SStore)]
    return store.chis


def test_tbaa_excludes_punned_variable_statically():
    ssa = build(SpecMode.OFF)
    names = {c.symbol.name for c in store_chis(ssa)
             if not c.symbol.is_virtual}
    assert "d" not in names  # the unsound static view


def test_profile_extension_re_adds_flagged_chi():
    ssa = build(SpecMode.PROFILE)
    chis = store_chis(ssa)
    d_chis = [c for c in chis if c.symbol.name == "d"]
    assert len(d_chis) == 1
    assert d_chis[0].likely  # χs: binding, not speculatively ignorable


def test_punned_program_correct_under_profile():
    result = compile_and_run(PUNNED, SpecConfig.profile())
    assert result.output == result.expected
    # the d reload after the store must be a real (or checked) load that
    # observes the punned write: the printed d is the stored 7
    assert result.output[0].split()[1] == "7"
