"""Unit tests for the mini-language lexer."""

import pytest

from repro.lang import LexError, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def test_keywords_and_identifiers():
    toks = tokenize("int x; double yy;")
    assert [t.kind for t in toks] == [
        "int", "id", ";", "double", "id", ";", "eof"
    ]
    assert toks[1].value == "x"


def test_numbers():
    toks = tokenize("1 42 3.5 .5 2. 1e3 1.5e-2")
    assert [t.kind for t in toks[:-1]] == [
        "int_lit", "int_lit", "float", "float", "float", "float", "float"
    ]


def test_multichar_operators_greedy():
    assert kinds("<= >= == != && || << >> += <")[:-1] == [
        "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "+=", "<"
    ]


def test_comments_skipped():
    toks = tokenize("x // line comment\n /* block\ncomment */ y")
    assert [t.value for t in toks[:-1]] == ["x", "y"]


def test_line_numbers_track_newlines():
    toks = tokenize("a\nb\n\nc")
    assert [t.line for t in toks[:-1]] == [1, 2, 4]


def test_lex_error():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_alloc_and_print_are_keywords():
    assert kinds("alloc print")[:-1] == ["alloc", "print"]
