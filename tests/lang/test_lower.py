"""Unit tests for AST→IR lowering."""

import pytest

from repro.ir import (FLOAT, INT, Assign, Bin, CallStmt, CondBr, Load,
                      PrintStmt, Store, Un, VarRead, format_module, ptr,
                      verify_module)
from repro.lang import LowerError, compile_source


def lower(src):
    module = compile_source(src)
    verify_module(module)
    return module


def stmts_of(module, name="main"):
    return [s for _, s in module.functions[name].statements()]


def test_simple_assignment_and_print():
    m = lower("void main() { int x; x = 1 + 2; print(x); }")
    s = stmts_of(m)
    assert isinstance(s[0], Assign) and isinstance(s[0].value, Bin)
    assert isinstance(s[1], PrintStmt)


def test_index_lowering_to_load():
    m = lower(
        "double f(double *p, int i) { return p[i]; }"
        "void main() { }"
    )
    fn = m.functions["f"]
    term = fn.entry.terminator
    assert isinstance(term.value, Load)
    assert term.value.ty == FLOAT
    assert isinstance(term.value.addr, Bin) and term.value.addr.op == "+"


def test_store_through_pointer():
    m = lower("void f(int *p) { *p = 3; } void main() { }")
    (store,) = stmts_of(m, "f")
    assert isinstance(store, Store) and store.value_ty == INT


def test_double_indirection():
    m = lower("double g(double **v, int i) { return v[i][0]; } void main() {}")
    term = m.functions["g"].entry.terminator
    outer = term.value
    assert isinstance(outer, Load) and outer.ty == FLOAT
    inner = outer.addr.left if isinstance(outer.addr, Bin) else outer.addr
    assert isinstance(inner, Load) and inner.ty == ptr(FLOAT)


def test_int_to_float_conversion_inserted():
    m = lower("void main() { double d; d = 1; }")
    (assign,) = stmts_of(m)
    assert isinstance(assign.value, Un) and assign.value.op == "float"


def test_mixed_arith_promotes():
    m = lower("void main() { double d; int i; i = 2; d = i * 1.5; }")
    assign = stmts_of(m)[1]
    assert assign.value.ty == FLOAT


def test_addr_of_marks_address_taken():
    m = lower("void main() { int x; int *p; p = &x; }")
    x = [s for s in m.functions["main"].locals if s.name == "x"][0]
    assert x.address_taken


def test_array_decay_in_expression():
    m = lower("int a[10]; void main() { int x; x = a[3]; }")
    (assign,) = stmts_of(m)
    load = assign.value
    assert isinstance(load, Load)
    base = load.addr.left
    assert isinstance(base, VarRead) and base.sym.name == "a"


def test_short_circuit_creates_blocks():
    m = lower("void main() { int x; int y; y = 1; x = y && (y > 1); }")
    fn = m.functions["main"]
    assert len(fn.blocks) >= 4  # entry + rhs + short + join


def test_call_hoisted_from_expression():
    m = lower(
        "int f(int x) { return x + 1; }"
        "void main() { int y; y = f(2) * 3; }"
    )
    s = stmts_of(m)
    assert isinstance(s[0], CallStmt) and s[0].callee == "f"
    assert isinstance(s[1], Assign)


def test_alloc_lowering():
    m = lower("void main() { int *p; p = alloc(10); *p = 1; }")
    s = stmts_of(m)
    assert isinstance(s[0], CallStmt) and s[0].is_alloc
    assert s[0].site_id is not None


def test_loops_shape():
    m = lower(
        "void main() { int i; int s; s = 0;"
        "for (i = 0; i < 10; i = i + 1) { s = s + i; if (s > 20) { break; } } "
        "print(s); }"
    )
    fn = m.functions["main"]
    cond_blocks = [b for b in fn.blocks if b.name.startswith("for_cond")]
    assert len(cond_blocks) == 1
    assert isinstance(cond_blocks[0].terminator, CondBr)
    assert len(cond_blocks[0].preds) == 2  # entry path + step back edge


def test_continue_targets_step():
    m = lower(
        "void main() { int i; for (i = 0; i < 4; i = i + 1) {"
        " if (i == 2) { continue; } print(i); } }"
    )
    verify_module(m)


def test_errors():
    with pytest.raises(LowerError):
        lower("void main() { x = 1; }")  # unknown name
    with pytest.raises(LowerError):
        lower("void main() { int x; *x = 1; }")  # deref non-pointer
    with pytest.raises(LowerError):
        lower("void main() { int a[4]; a = 1; }")  # assign to array
    with pytest.raises(LowerError):
        lower("void main() { break; }")  # break outside loop
    with pytest.raises(LowerError):
        lower("void main() { int x; x = f(1); }")  # unknown function
    with pytest.raises(LowerError):
        lower("int f(int a) { return a; } void main() { int x; x = f(); }")
    with pytest.raises(LowerError):
        lower("void main() { int x; int x; }")  # duplicate local


def test_printer_runs_on_lowered_module():
    m = lower("int g; void main() { g = 1; print(g); }")
    text = format_module(m)
    assert "g = 1" in text
