"""Unit tests for the mini-language parser."""

import pytest

from repro.lang import ParseError, parse
from repro.lang.ast_nodes import (AAssign, ABinary, ACall, AFor, AIf, AIndex,
                                  ANumber, APrint, AReturn, AUnary, AWhile)


def parse_fn_body(body):
    prog = parse("void main() { %s }" % body)
    return prog.functions[0].body


def test_global_and_function_split():
    prog = parse("int g; double a[8]; void main() { }")
    assert [d.name for d in prog.globals] == ["g", "a"]
    assert prog.globals[1].array_size == 8
    assert prog.functions[0].name == "main"


def test_pointer_types_in_params():
    prog = parse("double f(double **v, int *w) { return 0.0; }")
    params = prog.functions[0].params
    assert params[0].ty.pointer_depth == 2
    assert params[1].ty.pointer_depth == 1


def test_precedence_mul_over_add():
    (stmt,) = parse_fn_body("int x; x = 1 + 2 * 3;")[1:]
    assert isinstance(stmt, AAssign)
    assert isinstance(stmt.value, ABinary) and stmt.value.op == "+"
    assert stmt.value.right.op == "*"


def test_comparison_precedence_below_arith():
    (stmt,) = parse_fn_body("int x; x = 1 + 2 < 3;")[1:]
    assert stmt.value.op == "<"


def test_index_desugars_to_aindex_chain():
    (stmt,) = parse_fn_body("int x; x = a[i][j];")[1:]
    outer = stmt.value
    assert isinstance(outer, AIndex) and isinstance(outer.base, AIndex)


def test_unary_deref_and_addr():
    stmts = parse_fn_body("int x; *p = x; x = *q;")
    assert isinstance(stmts[1].target, AUnary) and stmts[1].target.op == "*"
    assert isinstance(stmts[2].value, AUnary) and stmts[2].value.op == "*"


def test_compound_assignment_expanded():
    (stmt,) = parse_fn_body("int x; x += 2;")[1:]
    assert isinstance(stmt, AAssign)
    assert isinstance(stmt.value, ABinary) and stmt.value.op == "+"


def test_if_else_chain():
    (stmt,) = parse_fn_body("if (x) { } else if (y) { } else { }")
    assert isinstance(stmt, AIf)
    assert isinstance(stmt.else_body[0], AIf)


def test_while_and_for():
    stmts = parse_fn_body(
        "while (i < n) { i = i + 1; } for (i = 0; i < n; i = i + 1) { }"
    )
    assert isinstance(stmts[0], AWhile)
    assert isinstance(stmts[1], AFor)
    assert isinstance(stmts[1].init, AAssign)


def test_for_with_empty_clauses():
    (stmt,) = parse_fn_body("for (;;) { break; }")
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_call_and_print():
    prog = parse(
        "int f(int x) { return x; } void main() { int y; y = f(3); print(y); }"
    )
    stmts = prog.functions[1].body
    assert isinstance(stmts[1].value, ACall)
    assert isinstance(stmts[2], APrint)


def test_alloc_intrinsic_parses_as_call():
    (stmt,) = parse_fn_body("int p; p = alloc(10);")[1:]
    assert isinstance(stmt.value, ACall) and stmt.value.callee == "alloc"


def test_return_without_value():
    (stmt,) = parse_fn_body("return;")
    assert isinstance(stmt, AReturn) and stmt.value is None


def test_parse_errors():
    with pytest.raises(ParseError):
        parse("void main() { x = ; }")
    with pytest.raises(ParseError):
        parse("void main() { if x { } }")
    with pytest.raises(ParseError):
        parse("main() { }")  # missing return type


def test_number_literals():
    stmts = parse_fn_body("double d; d = 1.5; d = 2;")
    assert isinstance(stmts[1].value, ANumber) and stmts[1].value.is_float
    assert not stmts[2].value.is_float
