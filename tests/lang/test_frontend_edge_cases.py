"""Frontend edge cases and hypothesis round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import (LexError, LowerError, ParseError, compile_source,
                        parse, tokenize)
from repro.profiling import run_module


def run(src, inputs=()):
    return run_module(compile_source(src), inputs=inputs)


# ---- precedence / associativity ------------------------------------------


def test_left_associativity_of_subtraction():
    assert run("void main() { print(10 - 3 - 2); }") == ["5"]


def test_division_left_associative():
    assert run("void main() { print(100 / 5 / 2); }") == ["10"]


def test_unary_minus_binds_tighter_than_binary():
    assert run("void main() { print(-2 * 3); }") == ["-6"]
    assert run("void main() { print(5 - -3); }") == ["8"]


def test_shift_precedence_between_additive_and_relational():
    assert run("void main() { print(1 + 1 << 2); }") == ["8"]
    assert run("void main() { print(1 << 2 < 5); }") == ["1"]


def test_bitwise_and_or_xor_precedence():
    assert run("void main() { print(1 | 2 & 3 ^ 1); }") == ["3"]


def test_logical_or_lowest():
    assert run("void main() { print(0 || 1 && 0); }") == ["0"]
    assert run("void main() { print(1 || 1 && 0); }") == ["1"]


def test_parentheses_override():
    assert run("void main() { print((10 - 3) - 2, 10 - (3 - 2)); }") \
        == ["5 9"]


# ---- short circuit ---------------------------------------------------------


def test_short_circuit_skips_side_effectless_deref():
    src = (
        "void main() { int *p; int ok; p = 0;"
        " ok = (p != 0) && (p[0] == 1);"
        " print(ok); }"
    )
    assert run(src) == ["0"]


def test_short_circuit_or_skips_rhs():
    src = (
        "void main() { int *p; int ok; p = 0;"
        " ok = (p == 0) || (p[0] == 1);"
        " print(ok); }"
    )
    assert run(src) == ["1"]


def test_nested_short_circuit():
    src = (
        "void main() { int a; int b; a = 1; b = 0;"
        " print((a && (b || 1)) && (a || b)); }"
    )
    assert run(src) == ["1"]


# ---- conversions / printing -------------------------------------------------


def test_int_truncation_of_negative_float():
    assert run("void main() { int x; x = -3.7; print(x); }") == ["-3"]


def test_print_multiple_values_space_separated():
    assert run("void main() { print(1, 2.5, 3); }") == ["1 2.5 3"]


def test_float_formatting_large_and_small():
    assert run("void main() { print(123456.789); }") == ["123457"]
    assert run("void main() { print(0.0001); }") == ["0.0001"]


# ---- errors ------------------------------------------------------------------


def test_error_missing_semicolon():
    with pytest.raises(ParseError):
        parse("void main() { int x }")


def test_error_unbalanced_parens():
    with pytest.raises(ParseError):
        parse("void main() { print((1 + 2); }")


def test_error_assign_to_literal():
    with pytest.raises(LowerError):
        compile_source("void main() { 3 = 4; }")


def test_error_duplicate_function():
    with pytest.raises(ValueError):
        compile_source("void f() { } void f() { } void main() { }")


def test_error_address_of_expression():
    with pytest.raises(LowerError):
        compile_source("void main() { int x; int *p; p = &(x + 1); }")


def test_error_void_in_expression():
    with pytest.raises(LowerError):
        compile_source(
            "void f() { } void main() { int x; x = f(); }"
        )


def test_error_argument_type_arity():
    with pytest.raises(LowerError):
        compile_source(
            "int f(int a, int b) { return a + b; }"
            "void main() { print(f(1)); }"
        )


# ---- hypothesis: lexer total on printable input ------------------------------


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32,
                                      max_codepoint=126),
               max_size=60))
def test_lexer_terminates_or_raises_cleanly(text):
    try:
        tokens = tokenize(text)
    except LexError:
        return
    assert tokens[-1].kind == "eof"


@settings(max_examples=100, deadline=None)
@given(a=st.integers(min_value=-50, max_value=50),
       b=st.integers(min_value=-50, max_value=50),
       c=st.integers(min_value=1, max_value=9))
def test_arithmetic_agrees_with_python(a, b, c):
    out = run(f"void main() {{ print({a} + {b} * {c}, ({a} - {b}) / {c});"
              f" }}")
    from repro.profiling import c_div

    expected = f"{a + b * c} {c_div(a - b, c)}"
    assert out == [expected]
