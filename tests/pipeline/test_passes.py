"""The pass-manager architecture (docs/pipeline.md).

The refactor's contract: the declaratively assembled pipeline is
**bit-identical** to the old hand-rolled driver monolith, parallel
compilation changes nothing, ladder retries hit the analysis cache, and
every pass invocation is observable in the trace.
"""

import json

import pytest

from repro.analysis import AliasClassifier
from repro.core import SpecConfig, optimize_function
from repro.ir import split_module_critical_edges, verify_module
from repro.lang import compile_source
from repro.pipeline import (PASS_REGISTRY, AnalysisManager, PassManager,
                            compile_program)
from repro.pipeline.passes import (FunctionPass, LADDER, create_pass,
                                   function_pass_names, ladder_plans,
                                   register_pass, rung_config)
from repro.ssa import build_ssa, flagger_for, lower_function, lower_module
from repro.target import (compile_module, run_program, schedule_function,
                          verify_program)
from repro.workloads import get_workload


# ---------------------------------------------------------------------------
# golden equivalence: pass manager ≡ the old monolithic driver
# ---------------------------------------------------------------------------


def _compile_like_the_old_monolith(source, config):
    """The exact pass sequence the pre-pass-manager driver hard-coded
    (profile-free configs, clean path): parse → split critical edges →
    classify aliases → per-function build/optimize/verify/trial-lower →
    out-of-SSA → codegen → schedule."""
    module = compile_source(source)
    verify_module(module)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module, use_tbaa=config.use_tbaa)
    ssa_functions = []
    for fn in module.functions.values():
        flagger = flagger_for(config.mode, None,
                              config.likeliness_threshold)
        ssa = build_ssa(module, fn, classifier, flagger=flagger)
        optimize_function(ssa, config)
        lower_function(ssa)
        ssa_functions.append(ssa)
    optimized = lower_module(module, ssa_functions)
    verify_module(optimized)
    program = compile_module(optimized)
    if config.schedule:
        for mfn in program.functions.values():
            schedule_function(mfn)
    verify_program(program)
    return program


@pytest.mark.parametrize("config", [SpecConfig.base(),
                                    SpecConfig.heuristic()],
                         ids=["base", "heuristic"])
@pytest.mark.parametrize("name", ["mcf", "twolf"])
def test_manager_matches_old_monolith_bit_for_bit(name, config):
    workload = get_workload(name)
    golden = _compile_like_the_old_monolith(workload.source, config)
    compiled = compile_program(workload.source, config)
    assert compiled.degraded == {}
    assert compiled.program.format() == golden.format()
    want_stats, want_out = run_program(golden,
                                       inputs=workload.ref_inputs)
    got_stats, got_out = run_program(compiled.program,
                                     inputs=workload.ref_inputs)
    assert got_out == want_out
    assert got_stats == want_stats


@pytest.mark.parametrize("name", ["mcf", "gzip"])
def test_parallel_compile_is_deterministic(name):
    """``--jobs 4`` must produce the same machine program and the same
    simulated counters as a sequential compile."""
    workload = get_workload(name)
    config = SpecConfig.aggressive()
    seq = compile_program(workload.source, config,
                          train_inputs=workload.train_inputs, jobs=1)
    par = compile_program(workload.source, config,
                          train_inputs=workload.train_inputs, jobs=4)
    assert par.program.format() == seq.program.format()
    assert par.degraded == seq.degraded
    assert [str(d) for d in par.diagnostics] \
        == [str(d) for d in seq.diagnostics]
    seq_stats, seq_out = run_program(seq.program,
                                     inputs=workload.ref_inputs)
    par_stats, par_out = run_program(par.program,
                                     inputs=workload.ref_inputs)
    assert par_out == seq_out
    assert par_stats == seq_stats


# ---------------------------------------------------------------------------
# analysis caching across ladder retries
# ---------------------------------------------------------------------------

SRC = """
int sum(int *a, int n) {
  int i; int s; s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
  return s;
}
void main() {
  int a[6]; int i;
  for (i = 0; i < 6; i = i + 1) { a[i] = i * i; }
  print(sum(a, 6));
}
"""


class CrashingLftr(FunctionPass):
    name = "lftr"

    def run(self, state):
        raise RuntimeError("induced lftr bug")


def test_ladder_retry_reuses_cached_analyses(monkeypatch):
    """A crash at full strength must NOT recompute per-function
    analyses on the retry: the second rung's build-ssa hits the cache
    for alias info and dominance."""
    monkeypatch.setitem(PASS_REGISTRY, "lftr", CrashingLftr)
    analyses = AnalysisManager()
    compiled = compile_program(SRC, SpecConfig.base(), analyses=analyses)
    # both functions fell exactly one rung (the ladder dropped lftr)
    assert compiled.degraded == {"sum": "no-lftr", "main": "no-lftr"}
    # first attempt: one miss per function; retry: one hit per function
    assert analyses.miss_counts["alias-info"] == 2
    assert analyses.hit_counts["alias-info"] == 2
    assert analyses.miss_counts["dominance"] == 2
    assert analyses.hit_counts["dominance"] == 2
    assert compiled.analyses is analyses
    assert compiled.analyses.stats()["hits"] >= 4


def test_clean_compile_computes_each_analysis_once():
    analyses = AnalysisManager()
    compiled = compile_program(SRC, SpecConfig.base(), analyses=analyses)
    assert compiled.degraded == {}
    assert analyses.miss_counts["alias-info"] == 2      # one per function
    assert analyses.hit_counts["alias-info"] == 0
    assert analyses.invalidation_counts["alias-info"] == 0


def test_analysis_manager_invalidation():
    am = AnalysisManager()
    assert am.get("a", "f", lambda: 1) == 1
    assert am.get("a", "f", lambda: 2) == 1             # cached
    assert am.get("a", "g", lambda: 3) == 3
    assert am.invalidate("a", "f") == 1
    assert am.get("a", "f", lambda: 4) == 4             # recomputed
    am.apply_invalidations(("*",))
    assert not am.cached("a", "f") and not am.cached("a", "g")
    stats = am.stats()
    assert stats["by_analysis"]["a"]["invalidations"] == 3


# ---------------------------------------------------------------------------
# declarative pipeline assembly + the ladder as truncations
# ---------------------------------------------------------------------------


def test_pipeline_is_assembled_from_the_config():
    full = function_pass_names(SpecConfig.base())
    assert full == ["build-ssa", "strength-reduction",
                    "register-promotion", "expression-pre", "lftr", "dce",
                    "verify-ssa", "lower-ssa"]
    bare = function_pass_names(SpecConfig.base().but(
        strength_reduction=False, expression_pre=False, lftr=False))
    assert bare == ["build-ssa", "register-promotion", "dce",
                    "verify-ssa", "lower-ssa"]


def test_ladder_rungs_are_pipeline_truncations():
    config = SpecConfig.aggressive()
    plans = ladder_plans(config, failsafe=True)
    assert [p.rung for p in plans] \
        == ["as-configured", "no-lftr", "no-epre", "no-spec"]
    names = [[q.name for q in plan.passes] for plan in plans]
    assert "lftr" in names[0] and "strength-reduction" in names[0]
    assert "lftr" not in names[1] and "strength-reduction" not in names[1]
    assert "expression-pre" in names[1]
    assert "expression-pre" not in names[2]
    # dropped passes flip the matching config flags (pipeline ≡ config)
    for rung, plan in zip(LADDER, plans[1:]):
        assert plan.config == rung_config(config, rung)
        assert not plan.config.lftr
    assert plans[3].config.mode.name == "OFF"
    assert not plans[3].config.control_speculation
    # failsafe=False: only the as-configured plan
    assert [p.rung for p in ladder_plans(config, failsafe=False)] \
        == ["as-configured"]


def test_registry_rejects_duplicates_and_unknown_names():
    with pytest.raises(ValueError, match="already registered"):
        @register_pass
        class Duplicate(FunctionPass):        # noqa: F811
            name = "dce"

            def run(self, state):
                pass
    with pytest.raises(KeyError, match="no-such-pass"):
        create_pass("no-such-pass")


# ---------------------------------------------------------------------------
# per-pass observability
# ---------------------------------------------------------------------------


def test_pass_trace_records_every_invocation():
    compiled = compile_program(SRC, SpecConfig.base())
    trace = compiled.pass_trace
    assert trace is not None
    # 2 functions x 8 passes
    assert trace.invocations("build-ssa") == 2
    assert trace.invocations("dce") == 2
    assert trace.invocations("lower-module") == 1
    assert trace.invocations("codegen") == 1
    assert all(r.wall_s >= 0.0 for r in trace.records)
    # dce only ever removes statements
    assert all(r.delta[0] <= 0 for r in trace.records
               if r.pass_name == "dce")
    # codegen reports the emitted program size
    codegen = [r for r in trace.records if r.pass_name == "codegen"]
    assert codegen[0].after[0] > 0
    table = trace.format_table()
    assert "pass execution timing report" in table
    for name in ("build-ssa", "register-promotion", "codegen"):
        assert name in table


def test_pass_trace_marks_failed_invocations(monkeypatch):
    monkeypatch.setitem(PASS_REGISTRY, "lftr", CrashingLftr)
    compiled = compile_program(SRC, SpecConfig.base())
    failed = [r for r in compiled.pass_trace.records if r.failed]
    assert failed and all(r.pass_name == "lftr" for r in failed)
    assert all(r.rung == "as-configured" for r in failed)
    # the retry's records carry the rung they ran on
    assert any(r.rung == "no-lftr" for r in compiled.pass_trace.records
               if r.pass_name == "build-ssa")


def test_pass_trace_json_roundtrip(tmp_path):
    analyses = AnalysisManager()
    compiled = compile_program(SRC, SpecConfig.base(), analyses=analyses)
    path = tmp_path / "trace.json"
    compiled.pass_trace.dump_json(str(path), analyses.stats())
    doc = json.loads(path.read_text())
    assert doc["invocations"] == len(compiled.pass_trace.records)
    assert doc["passes"][0]["pass"] == "split-critical-edges"
    assert {"pass", "kind", "function", "rung", "wall_s", "stmts_before",
            "stmts_after", "failed"} <= set(doc["passes"][0])
    assert doc["analyses"]["misses"] > 0


def test_manager_is_reusable():
    """One manager, two compiles: records reset per compile, the
    analysis cache persists (scoped by module identity)."""
    manager = PassManager(SpecConfig.base())
    first = manager.compile(SRC)
    n = len(first.pass_trace.records)
    second = manager.compile(SRC)
    assert len(second.pass_trace.records) == n
    assert second.program.format() == first.program.format()
