"""The ``bench_smoke`` CI tier (docs/pipeline.md).

One workload end-to-end through the real CLI with ``--time-passes
--jobs 2 --trace-json``: the per-pass timing table must render, the
parallel compile must pass the oracle, and the machine-readable trace
lands in ``results/pass_trace.json``.  The tier also regenerates the
superblock-scheduling ablation into ``results/
ablation_superblock.txt`` — CI uploads both files as workflow
artifacts so pass wall-time and scheduling regressions are visible
PR-over-PR.
"""

import json
import os

import pytest

from repro.cli import main
from repro.workloads import get_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                           "results")


@pytest.mark.bench_smoke
def test_cli_time_passes_smoke(tmp_path, capsys):
    workload = get_workload("mcf")
    src = tmp_path / "mcf.c"
    src.write_text(workload.source)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    trace_path = os.path.join(RESULTS_DIR, "pass_trace.json")

    rc = main([
        "run", str(src),
        "--config", "profile",
        "--train", ",".join(str(v) for v in workload.train_inputs),
        "--ref", ",".join(str(v) for v in workload.ref_inputs),
        "--jobs", "2",
        "--time-passes",
        "--trace-json", trace_path,
    ])
    captured = capsys.readouterr()
    assert rc == 0, captured.err

    # the --time-passes report names every configured pass
    assert "pass execution timing report" in captured.err
    for name in ("build-ssa", "register-promotion", "expression-pre",
                 "dce", "codegen", "schedule"):
        assert name in captured.err

    # the artifact CI uploads: valid JSON with per-pass records
    with open(trace_path) as f:
        doc = json.load(f)
    assert doc["invocations"] > 0
    passes = {record["pass"] for record in doc["passes"]}
    assert {"build-ssa", "dce", "codegen"} <= passes
    assert all(record["wall_s"] >= 0.0 for record in doc["passes"])


@pytest.mark.bench_smoke
def test_superblock_ablation_artifact():
    """Regenerate the superblock-scheduling ablation table
    (docs/scheduling.md) — the second artifact the bench-smoke CI job
    uploads.  The bar matches benchmarks/test_ablation_superblock.py:
    superblock no worse than block on geomean, no workload more than
    1% worse."""
    from repro.pipeline import format_table
    from repro.workloads import superblock_ablation

    rows, summary = superblock_ablation()
    text = format_table(
        rows, title="Ablation: superblock scheduling (4-wide, 2 ports)")
    text += (f"\ngeomean cycles vs block: "
             f"superblock {100.0 * summary['geomean_sb_vs_block']:.2f}%  "
             f"(block vs unscheduled "
             f"{100.0 * summary['geomean_block_vs_none']:.2f}%)")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "ablation_superblock.txt"),
              "w") as f:
        f.write(text + "\n")

    assert summary["geomean_sb_vs_block"] <= 1.0
    for row in rows:
        assert row["superblock_cycles"] <= row["block_cycles"] * 1.01, \
            row["benchmark"]


@pytest.mark.bench_smoke
@pytest.mark.spec_static
def test_spec_source_compare_artifact():
    """Regenerate the three-way speculation-source comparison
    (docs/speculation_sources.md) — the third artifact the bench-smoke
    CI job uploads.  The acceptance bar matches
    benchmarks/test_spec_source_compare.py: the profile-free static
    source recovers a nonzero fraction of the profile's load-reduction
    win on at least half the workloads where the profile wins at all."""
    from repro.core import SpecConfig
    from repro.pipeline import Comparison, format_table
    from repro.workloads import all_workloads, run_workload

    rows = []
    for w in all_workloads():
        base = run_workload(w, SpecConfig.base())
        prof = Comparison(w.name, base, run_workload(w, SpecConfig.profile()))
        heur = Comparison(w.name, base,
                          run_workload(w, SpecConfig.heuristic()))
        stat = Comparison(w.name, base, run_workload(w, SpecConfig.static()))
        rows.append({
            "benchmark": w.name,
            "profile_loadred_%": 100.0 * prof.load_reduction,
            "heuristic_loadred_%": 100.0 * heur.load_reduction,
            "static_loadred_%": 100.0 * stat.load_reduction,
            "profile_speedup_%": 100.0 * prof.speedup,
            "heuristic_speedup_%": 100.0 * heur.speedup,
            "static_speedup_%": 100.0 * stat.speedup,
            "static_misspec_%": 100.0 * stat.misspeculation_ratio,
        })

    text = format_table(
        rows, title="Speculation sources: profile vs heuristic vs static")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "spec_source_compare.txt"),
              "w") as f:
        f.write(text + "\n")

    winners = [r for r in rows if r["profile_loadred_%"] > 0.0]
    recovered = [r for r in winners if r["static_loadred_%"] > 0.0]
    assert winners and len(recovered) * 2 >= len(winners)
    for row in rows:
        assert row["static_misspec_%"] <= 10.0, row["benchmark"]
