"""Unit tests for the pipeline driver and results helpers."""

import pytest

from repro.core import SpecConfig
from repro.pipeline import (Comparison, RunResult, compile_and_run,
                            compile_program, format_table)
from repro.target import MachineStats


SRC = (
    "void main() { int x; x = input(); print(x * 2); }"
)


def test_compile_and_run_uses_ref_inputs():
    result = compile_and_run(SRC, SpecConfig.base(),
                             train_inputs=[1], ref_inputs=[21])
    assert result.output == ["42"]
    assert result.expected == ["42"]


def test_profiles_come_from_train_inputs():
    src = (
        "void f(int *p, int *q) { int x; x = *p; *q = 1; x = x + *p;"
        " print(x); }"
        "void main() { int a[4]; int b[4]; int c; c = input();"
        " a[0] = 3; if (c) { f(a, a); } else { f(a, b); } }"
    )
    # train aliases (c=1): profile sees the collision → no speculation
    compiled = compile_program(src, SpecConfig.profile(),
                               train_inputs=[1])
    ops = [i.op for blk in compiled.program.functions["f"].blocks
           for i in blk.instrs]
    assert "ld.c" not in ops
    # train does not alias (c=0): speculation happens
    compiled2 = compile_program(src, SpecConfig.profile(),
                                train_inputs=[0])
    ops2 = [i.op for blk in compiled2.program.functions["f"].blocks
            for i in blk.instrs]
    assert "ld.c" in ops2


def test_check_output_detects_divergence(monkeypatch):
    # force a divergence by sabotaging the machine output
    import repro.pipeline.driver as driver

    original = driver.run_program

    def bad_run(program, **kwargs):
        stats, output = original(program, **kwargs)
        return stats, output + ["SPURIOUS"]

    monkeypatch.setattr(driver, "run_program", bad_run)
    with pytest.raises(AssertionError, match="diverged"):
        compile_and_run(SRC, SpecConfig.base(),
                        train_inputs=[1], ref_inputs=[1])


def test_check_output_false_skips_oracle():
    result = compile_and_run(SRC, SpecConfig.base(), train_inputs=[1],
                             ref_inputs=[3], check_output=False)
    assert result.expected is None
    assert result.output == ["6"]


def test_opt_stats_reported_per_function():
    src = (
        "int f(int *p) { return *p + *p; }"
        "void main() { int a[2]; a[0] = 1; print(f(a)); }"
    )
    compiled = compile_program(src, SpecConfig.base())
    assert "f" in compiled.opt_stats
    assert compiled.opt_stats["f"].promotion.reloads >= 1


def test_comparison_metrics():
    def stats(cycles, loads, checks=0, misses=0, dacc=100):
        s = MachineStats()
        s.cycles = cycles
        s.plain_loads = loads
        s.check_loads = checks
        s.check_misses = misses
        s.data_access_cycles = dacc
        return s

    base = RunResult(SpecConfig.base(), stats(1000, 100), ["1"])
    spec = RunResult(SpecConfig.profile(),
                     stats(900, 80, checks=20, misses=1, dacc=50), ["1"])
    c = Comparison("x", base, spec)
    assert c.load_reduction == pytest.approx(1 - 81 / 100)
    assert c.speedup == pytest.approx(0.1)
    assert c.data_access_reduction == pytest.approx(0.5)
    assert c.misspeculation_ratio == pytest.approx(1 / 20)
    row = c.row()
    assert row["benchmark"] == "x"
    assert row["speedup_%"] == pytest.approx(10.0)


def test_comparison_zero_division_guards():
    base = RunResult(SpecConfig.base(), MachineStats(), ["1"])
    spec = RunResult(SpecConfig.profile(), MachineStats(), ["1"])
    c = Comparison("empty", base, spec)
    assert c.load_reduction == 0.0
    assert c.speedup == 0.0
    assert c.misspeculation_ratio == 0.0


def test_format_table_alignment_and_floats():
    rows = [
        {"name": "a", "value": 1.23456, "count": 7},
        {"name": "long-name", "value": 0.5, "count": 12345},
    ]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.23" in text and "0.50" in text
    assert all(len(line) == len(lines[1]) or line == "T"
               for line in lines[:2])


def test_format_table_empty():
    assert format_table([], title="nothing") == "nothing"
