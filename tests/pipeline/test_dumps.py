"""Tests for the per-phase dump infrastructure."""

import os

import pytest

from repro.core import SpecConfig
from repro.pipeline import DumpSink, compile_program

SRC = (
    "void f(int *p, int *q) { int x; x = *p; *q = 9; x = x + *p;"
    " print(x); }"
    "void main() { int a[8]; int b[8]; int c; c = input();"
    " a[0] = 5; if (c) { f(a, a); } f(a, b); }"
)


@pytest.fixture()
def sink():
    sink = DumpSink()
    compile_program(SRC, SpecConfig.profile(), train_inputs=[0],
                    dumps=sink)
    return sink


def test_phases_in_order(sink):
    phases = sink.phases()
    assert phases[0] == "lowered"
    assert phases[-1] == "machine"
    assert "optimized" in phases
    assert any(p.startswith("speculative-ssa f") for p in phases)
    assert any(p.startswith("after-ssapre f") for p in phases)


def test_speculative_ssa_dump_shows_flags(sink):
    text = sink.get("speculative-ssa f")
    assert "chis(" in text          # flagged own χ of the store
    assert "chi(" in text           # unflagged cross χ (weak update)


def test_after_ssapre_dump_shows_checks(sink):
    text = sink.get("after-ssapre f")
    assert "[check]" in text and "[advance]" in text


def test_speculative_ssa_dump_precedes_optimization(sink):
    """Regression: the driver used to record ``speculative-ssa`` *after*
    running SSAPRE, so it was byte-identical to ``after-ssapre``.  The
    pre-optimization snapshot must differ wherever SSAPRE fires — in
    particular it must not yet contain the inserted checks."""
    before = sink.get("speculative-ssa f")
    after = sink.get("after-ssapre f")
    assert before != after
    assert "[check]" not in before and "[advance]" not in before
    assert "[check]" in after


def test_machine_dump_shows_spec_loads(sink):
    text = sink.get("machine")
    assert "ld.a" in text and "ld.c" in text


def test_get_unknown_phase_raises(sink):
    with pytest.raises(KeyError):
        sink.get("no-such-phase")


def test_format_concatenates_all(sink):
    text = sink.format()
    for phase in sink.phases():
        assert phase in text


def test_write_dir(tmp_path, sink):
    sink.write_dir(str(tmp_path))
    files = sorted(os.listdir(tmp_path))
    assert files[0].startswith("00_lowered")
    assert len(files) == len(sink.phases())


def test_no_sink_is_free():
    result = compile_program(SRC, SpecConfig.base(), train_inputs=[0])
    assert result is not None  # no dumps requested, nothing breaks
