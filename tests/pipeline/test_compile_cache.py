"""The content-addressed compile cache (docs/performance.md).

The cache may only ever be invisible: a hit must hand back exactly what
a fresh compile would produce, and anything that could change the
produced program — source text, SpecConfig, monkeypatched seams,
swapped registry passes — must change the key.
"""

import pytest

from repro.core import SpecConfig
from repro.pipeline import (PASS_REGISTRY, AnalysisManager, CompileCache,
                            compile_and_run, compile_program, default_cache)
from repro.pipeline.passes.base import FunctionPass
from repro.target import run_program
from repro.workloads import get_workload

SOURCE = """
int g;
int bump(int k) { g = g + k; return g; }
int main() {
  int i; int total;
  i = 0; total = 0;
  while (i < 20) { total = bump(i) + total; i = i + 1; }
  print(total);
  return 0;
}
"""


def _compile(cache, source=SOURCE, config=None, **kwargs):
    return compile_program(source, config or SpecConfig.profile(),
                           train_inputs=(), cache=cache, **kwargs)


def test_identical_compile_hits():
    cache = CompileCache()
    first = _compile(cache)
    second = _compile(cache)
    assert cache.hits == 1 and cache.misses == 1
    # a hit is the same result object — the compile was skipped entirely
    assert second is first


def test_different_config_misses():
    cache = CompileCache()
    _compile(cache, config=SpecConfig.profile())
    _compile(cache, config=SpecConfig.base())
    assert cache.hits == 0 and cache.misses == 2


def test_mutated_source_misses():
    cache = CompileCache()
    _compile(cache)
    _compile(cache, source=SOURCE.replace("i < 20", "i < 21"))
    assert cache.hits == 0 and cache.misses == 2


def test_train_inputs_and_fuel_key():
    cache = CompileCache()
    compile_program(SOURCE, SpecConfig.profile(), train_inputs=(1,),
                    cache=cache)
    compile_program(SOURCE, SpecConfig.profile(), train_inputs=(2,),
                    cache=cache)
    compile_program(SOURCE, SpecConfig.profile(), train_inputs=(2,),
                    fuel=1_000_000, cache=cache)
    assert cache.hits == 0 and cache.misses == 3


def test_observer_calls_bypass():
    from repro.pipeline import DumpSink

    cache = CompileCache()
    _compile(cache, dumps=DumpSink())
    _compile(cache, profile_transform=lambda p: p)
    _compile(cache, analyses=AnalysisManager())
    assert cache.bypasses == 3
    assert cache.hits == 0 and cache.misses == 0
    assert len(cache) == 0


def test_seam_monkeypatch_misses(monkeypatch):
    from repro.pipeline import driver

    cache = CompileCache()
    _compile(cache)
    real = driver.verify_ssa
    monkeypatch.setattr(driver, "verify_ssa",
                        lambda ssa, **kw: real(ssa, **kw))
    _compile(cache)
    assert cache.hits == 0 and cache.misses == 2
    monkeypatch.undo()
    _compile(cache)  # original seam restored -> original key hits
    assert cache.hits == 1


def test_registry_swap_misses(monkeypatch):
    cache = CompileCache()
    _compile(cache)

    real = PASS_REGISTRY["dce"]

    class WrappedDce(FunctionPass):
        name = "dce"

        def run(self, state):
            real().run(state)

    monkeypatch.setitem(PASS_REGISTRY, "dce", WrappedDce)
    _compile(cache)
    assert cache.hits == 0 and cache.misses == 2


def test_cached_program_not_mutated_by_simulation():
    cache = CompileCache()
    w = get_workload("mcf")
    result = compile_program(w.source, SpecConfig.profile(),
                             train_inputs=w.train_inputs, cache=cache)
    snapshot = result.program.format()
    stats, output = run_program(result.program, inputs=w.ref_inputs)
    assert result.program.format() == snapshot
    # ... and a post-simulation hit still yields the identical program
    again = compile_program(w.source, SpecConfig.profile(),
                            train_inputs=w.train_inputs, cache=cache)
    assert again is result
    stats2, output2 = run_program(again.program, inputs=w.ref_inputs)
    assert output2 == output
    assert stats2.to_dict() == stats.to_dict()


def test_lru_capacity_and_eviction():
    cache = CompileCache(capacity=1)
    _compile(cache)
    _compile(cache, config=SpecConfig.base())  # evicts the first entry
    assert cache.evictions == 1 and len(cache) == 1
    _compile(cache)  # first entry is gone -> recompiles
    assert cache.hits == 0 and cache.misses == 3


def test_compile_and_run_uses_process_cache():
    shared = default_cache()
    baseline = (shared.hits, shared.misses)
    first = compile_and_run(SOURCE, SpecConfig.profile(), ref_inputs=())
    second = compile_and_run(SOURCE, SpecConfig.profile(), ref_inputs=())
    assert second.output == first.output
    assert shared.hits >= baseline[0] + 1
    # cache=False forces a fresh compile and never touches the memo
    hits_before = shared.hits
    misses_before = shared.misses
    fresh = compile_and_run(SOURCE, SpecConfig.profile(), ref_inputs=(),
                            cache=False)
    assert fresh.output == first.output
    assert (shared.hits, shared.misses) == (hits_before, misses_before)


def test_profile_free_configs_normalize_train_inputs():
    """Configs with ``needs_train_run == False`` never see the trainer,
    so their cache keys must not fragment on irrelevant train inputs:
    base/heuristic/static compiles with different train data share one
    entry, while a profile compile keys on them (see above)."""
    for config in (SpecConfig.base(), SpecConfig.heuristic(),
                   SpecConfig.static()):
        assert not config.needs_train_run
        cache = CompileCache()
        compile_program(SOURCE, config, train_inputs=(1,), cache=cache)
        compile_program(SOURCE, config, train_inputs=(2, 3), cache=cache)
        assert (cache.hits, cache.misses) == (1, 1), config.mode


def test_compiler_fingerprint_stamps_content_keys():
    """Content keys carry the compiler's identity — package version +
    registered pass names — so persisted caches (service
    ``--cache-dir``) invalidate when the compiler changes."""
    from repro import __version__
    from repro.pipeline import compiler_fingerprint, content_key

    fp = compiler_fingerprint()
    assert __version__ in fp
    assert "build-ssa" in fp and "dce" in fp

    key = content_key(SOURCE, SpecConfig.profile(), (1,), 1000, True)
    assert key == content_key(SOURCE, SpecConfig.profile(), (1,), 1000,
                              True)

    import repro.pipeline.cache as cache_mod
    original = cache_mod.compiler_fingerprint
    try:
        cache_mod.compiler_fingerprint = lambda: "other-compiler"
        assert content_key(SOURCE, SpecConfig.profile(), (1,), 1000,
                           True) != key
    finally:
        cache_mod.compiler_fingerprint = original
