"""Fail-safe pipeline: induced pass failures must degrade, not raise
(docs/recovery.md).

Pass crashes are injected through the pass registry — replacing a
``PASS_REGISTRY`` entry is the sanctioned seam for simulating a bug in
the compiler itself (docs/pipeline.md); ``verify_ssa`` and
``run_program`` stay patchable as driver module globals."""

import pytest

import repro.pipeline.driver as driver
from repro.core import SpecConfig
from repro.errors import FuelExhausted
from repro.pipeline import (PASS_REGISTRY, Diagnostic, OutputMismatch,
                            compile_and_run, compile_program)
from repro.pipeline.passes import FunctionPass
from repro.profiling import run_module

SRC = """
int sum(int *a, int n) {
  int i; int s; s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
  return s;
}
void main() {
  int a[6]; int i;
  for (i = 0; i < 6; i = i + 1) { a[i] = i * i; }
  print(sum(a, 6));
}
"""


def test_clean_compile_has_no_diagnostics():
    compiled = compile_program(SRC, SpecConfig.base())
    assert compiled.diagnostics == []
    assert compiled.degraded == {}


class ExplodingPass(FunctionPass):
    """Registry stand-in for a pass with an unconditional bug."""

    name = "dce"

    def run(self, state):
        raise RuntimeError("induced optimizer bug")


def test_induced_optimizer_crash_degrades_down_the_ladder(monkeypatch):
    """Crash every rung's attempt (the injected pass is part of every
    ladder rung): every function falls all the way to its unoptimized
    original, the compile still completes, and the produced program
    still runs correctly."""
    monkeypatch.setitem(PASS_REGISTRY, "dce", ExplodingPass)
    compiled = compile_program(SRC, SpecConfig.base())
    assert set(compiled.degraded) == {"sum", "main"}
    assert all(rung == "unoptimized" for rung in compiled.degraded.values())
    # one diagnostic per ladder rung per function, strongest rung first
    assert all(d.stage == "optimize" for d in compiled.diagnostics)
    per_fn = [d for d in compiled.diagnostics if d.function == "sum"]
    assert ["(at 'as-configured')" in d.error for d in per_fn] \
        == [True, False, False, False]
    assert [d.error.split(" (at ")[1].rstrip(")")
            for d in per_fn] == ["'as-configured'", "'no-lftr'",
                                 "'no-epre'", "'no-spec'"]
    assert compiled.diagnostics[-1].action == "keep unoptimized original"
    from repro.target import run_program

    _, output = run_program(compiled.program)
    assert output == run_module(compiled.original)


def test_induced_verifier_failure_degrades(monkeypatch):
    """A pass that silently corrupts SSA is caught by the re-verify
    guard and degraded the same way a crash is."""
    def reject(fn):
        from repro.ssa import SSAVerificationError

        raise SSAVerificationError("induced verifier failure")

    monkeypatch.setattr(driver, "verify_ssa", reject)
    compiled = compile_program(SRC, SpecConfig.base())
    assert set(compiled.degraded) == {"sum", "main"}
    assert "induced verifier failure" in compiled.diagnostics[0].error


def test_failsafe_off_raises(monkeypatch):
    monkeypatch.setitem(PASS_REGISTRY, "dce", ExplodingPass)
    with pytest.raises(RuntimeError, match="induced optimizer bug"):
        compile_program(SRC, SpecConfig.base(), failsafe=False)


def make_flaky_dce():
    """A registered-pass stand-in that crashes only each function's
    first attempt, then behaves like the real pass.  Pass instances are
    shared per-plan across functions, so the counter lives on the
    class."""
    real_factory = PASS_REGISTRY["dce"]

    class FlakyDce(FunctionPass):
        name = "dce"
        calls = {}

        def run(self, state):
            name = state.fn.name
            n = self.calls[name] = self.calls.get(name, 0) + 1
            if n == 1:
                raise RuntimeError("first attempt only")
            real_factory().run(state)

    return FlakyDce


def test_partial_ladder_degradation_keeps_later_rungs(monkeypatch):
    """Fail only the full-strength attempt: the function lands on the
    first fallback rung, not at the bottom."""
    monkeypatch.setitem(PASS_REGISTRY, "dce", make_flaky_dce())
    compiled = compile_program(SRC, SpecConfig.base())
    assert compiled.degraded == {"sum": "no-lftr", "main": "no-lftr"}
    from repro.target import run_program

    _, output = run_program(compiled.program)
    assert output == run_module(compiled.original)


def test_run_result_carries_diagnostics(monkeypatch):
    def reject(fn):
        from repro.ssa import SSAVerificationError

        raise SSAVerificationError("induced")

    monkeypatch.setattr(driver, "verify_ssa", reject)
    result = compile_and_run(SRC, SpecConfig.base())
    assert result.output == result.expected
    assert result.degraded
    assert any(isinstance(d, Diagnostic) for d in result.diagnostics)


def test_output_mismatch_diff_is_readable(monkeypatch):
    original = driver.run_program

    def corrupted(program, **kwargs):
        stats, output = original(program, **kwargs)
        output[-1] = "9999"
        return stats, output

    monkeypatch.setattr(driver, "run_program", corrupted)
    with pytest.raises(OutputMismatch) as exc_info:
        compile_and_run(SRC, SpecConfig.base())
    text = str(exc_info.value)
    assert "diverged" in text
    assert "'9999'" in text and "'55'" in text
    # it is still an AssertionError for legacy callers
    assert isinstance(exc_info.value, AssertionError)


def test_fuel_exhaustion_is_a_typed_diagnostic():
    loop = "void main() { int i; i = 0; while (i < 2) { i = 0; } }"
    with pytest.raises(FuelExhausted) as exc_info:
        compile_and_run(loop, SpecConfig.base(), fuel=10_000,
                        check_output=False)
    exc = exc_info.value
    assert exc.function == "main"
    assert "main" in exc.context()
    assert "fuel exhausted" in str(exc)


def test_profiling_fuel_exhaustion_degrades_to_no_speculation():
    """An infinite loop on the *train* input only costs the profiles:
    the compile completes with data speculation disabled."""
    loop = """
void main() {
  int n; int i; int s; int a[4];
  n = input(); i = 0; s = 0; a[0] = 7;
  while (i < n) { s = s + a[0]; }
  print(s);
}
"""
    compiled = compile_program(loop, SpecConfig.profile(),
                               train_inputs=[1], fuel=10_000)
    assert any(d.stage == "train-run" for d in compiled.diagnostics)
    assert not compiled.config.needs_alias_profile
    # with n = 0 on the ref input the program terminates and runs fine
    from repro.target import run_program

    _, output = run_program(compiled.program, inputs=[0])
    assert output == ["0"]
