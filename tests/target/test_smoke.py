"""Smoke tier: one compile-and-simulate per workload (`pytest -m smoke`).

Each case runs a whole SPEC2000-shaped workload through the full
pipeline under the profile-guided configuration; `check_output=True`
makes `compile_and_run` verify the machine output against the reference
interpreter, so a pass certifies the end-to-end stack — frontend, SSAPRE,
codegen, scheduler, simulator — on that program.
"""

import pytest

from repro.core import SpecConfig
from repro.workloads import all_workloads, get_workload, run_workload

_NAMES = [w.name for w in all_workloads()]


@pytest.mark.smoke
@pytest.mark.parametrize("name", _NAMES)
def test_workload_runs_and_matches_interpreter(name):
    result = run_workload(get_workload(name), SpecConfig.profile(),
                          check_output=True)
    assert result.output, f"{name} produced no output"
    assert result.stats.cycles > 0
    assert result.stats.loads_retired > 0
    assert result.stats.misspeculation_ratio <= 1.0


@pytest.mark.smoke
def test_workload_registry_is_figure10_shaped():
    assert _NAMES == ["gzip", "vpr", "mcf", "bzip2",
                      "twolf", "art", "equake", "ammp"]
