"""Superblock formation, trace scheduling and hot-path layout
(docs/scheduling.md).

Three layers of protection:

* **bit-identity** — ``--sched block`` (the default) must produce the
  exact machine code and cycle counts the repo produced before the
  superblock subsystem existed (``tests/target/golden/block_sched.txt``);
* **the oracle** — ``--sched superblock`` is an optimization, so every
  workload's simulated output must still match the reference
  interpreter, and the taken-branch count must actually drop (that is
  the mechanism the layout pass exists to exploit);
* **unit tests** — the profile mapping, trace growth, tail-duplication
  budget, side-exit hoisting legality and layout order are each pinned
  on small constructed machine functions.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SpecConfig
from repro.pipeline import compile_and_run, compile_program
from repro.profiling import EdgeProfile
from repro.target import (MBlock, MFunction, MInstr, MachineProfile,
                          form_superblocks, layout_function,
                          may_hoist_above, run_program)
from repro.workloads import all_workloads, get_workload, run_workload
from repro.workloads.fuzz import random_program
from repro.workloads.runner import machine_kwargs

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "block_sched.txt")


# ---- bit-identity of the default block mode ----------------------------


def test_block_mode_bit_identical_to_golden():
    """`--sched block` is the baseline every measurement in the repo was
    taken against: code, cycles and instruction counts must match the
    golden dump byte for byte.  (Regenerated once when the unrenamed-
    temp-use fixes in LFTR/strength-reduction repairs stopped art from
    silently degrading to the `no-lftr` rung — see
    tests/core/test_dce_lftr.py's regression tests; only art's section
    changed, cycles 19859 → 19679.)"""
    parts = []
    for name in ("gzip", "mcf", "art"):
        w = get_workload(name)
        compiled = compile_program(w.source, SpecConfig.profile(),
                                   train_inputs=w.train_inputs)
        stats, _ = run_program(compiled.program, inputs=w.ref_inputs,
                               **machine_kwargs())
        parts.append(f"=== {name} cycles={stats.cycles} "
                     f"instructions={stats.instructions} ===")
        parts.append(compiled.program.format())
    with open(GOLDEN) as f:
        golden = f.read()
    assert "\n".join(parts) + "\n" == golden


# ---- the oracle + the mechanism ----------------------------------------


def test_superblock_outputs_match_oracle_on_every_workload():
    """The whole point of the subsystem: on all eight SPEC-shaped
    workloads the superblock build passes the interpreter oracle
    (run_workload checks it), is never slower than block scheduling by
    more than 1%, and takes strictly fewer branches in aggregate."""
    sb_config = SpecConfig.profile().but(scheduler="superblock")
    taken_block = taken_sb = 0
    for w in all_workloads():
        block = run_workload(w, SpecConfig.profile())
        sb = run_workload(w, sb_config)
        assert sb.output == block.output
        assert sb.stats.cycles <= block.stats.cycles * 1.01, w.name
        taken_block += block.stats.taken_branches
        taken_sb += sb.stats.taken_branches
    assert taken_sb < taken_block
    # transfers of control are conserved: what stops being taken
    # becomes a fallthrough, not a vanished branch


# ---- MachineProfile ----------------------------------------------------


def _diamond():
    """entry0 —br→ {hot1, cold2} —jmp→ exit3(ret)."""
    fn = MFunction("f")
    entry = fn.new_block("entry0")
    hot = fn.new_block("hot1")
    cold = fn.new_block("cold2")
    exit_b = fn.new_block("exit3")
    entry.append(MInstr("movi", dest=0, imm=1))
    entry.append(MInstr("br", srcs=(0,), targets=(hot, cold)))
    hot.append(MInstr("movi", dest=1, imm=2))
    hot.append(MInstr("jmp", targets=(exit_b,)))
    cold.append(MInstr("movi", dest=1, imm=3))
    cold.append(MInstr("jmp", targets=(exit_b,)))
    exit_b.append(MInstr("ret", srcs=(1,)))
    return fn, entry, hot, cold, exit_b


def _diamond_profile(hot_count=9, cold_count=1):
    profile = EdgeProfile()
    entries = hot_count + cold_count
    profile.entry_count["f"] = entries
    profile.block_name_count.update({
        ("f", "entry0"): entries, ("f", "hot1"): hot_count,
        ("f", "cold2"): cold_count, ("f", "exit3"): entries,
    })
    profile.edge_name_count.update({
        ("f", "entry0", "hot1"): hot_count,
        ("f", "entry0", "cold2"): cold_count,
        ("f", "hot1", "exit3"): hot_count,
        ("f", "cold2", "exit3"): cold_count,
    })
    return profile


def test_machine_profile_maps_names_to_weights_and_probs():
    fn, entry, hot, cold, exit_b = _diamond()
    mp = MachineProfile(fn, _diamond_profile())
    assert mp.weight(entry) == 10.0
    assert mp.weight(hot) == 9.0
    assert mp.weight(cold) == 1.0
    assert abs(mp.prob(entry, hot) - 0.9) < 1e-12
    assert abs(mp.prob(entry, cold) - 0.1) < 1e-12
    assert mp.prob(hot, exit_b) == 1.0          # jmp: certain
    assert mp.edge_weight(entry, hot) == 9.0


def test_machine_profile_static_fallback():
    """No profile (or a function the train input never entered): unit
    weights and even branch splits — enough to straighten jmp chains
    deterministically."""
    fn, entry, hot, cold, _ = _diamond()
    for mp in (MachineProfile(fn, None),
               MachineProfile(fn, EdgeProfile())):   # never entered
        assert mp.weight(entry) == 1.0
        assert mp.prob(entry, hot) == 0.5
        assert mp.prob(entry, cold) == 0.5


def test_machine_profile_looks_through_split_blocks():
    """Critical-edge split blocks are created after the train run; the
    profile of an edge into one is recovered by following its jmp to
    the IR successor the profiled edge reached."""
    fn = MFunction("f")
    entry = fn.new_block("entry0")
    split = fn.new_block("split_entry0_join2")
    other = fn.new_block("other1")
    join = fn.new_block("join2")
    entry.append(MInstr("movi", dest=0, imm=1))
    entry.append(MInstr("br", srcs=(0,), targets=(split, other)))
    split.append(MInstr("jmp", targets=(join,)))
    other.append(MInstr("jmp", targets=(join,)))
    join.append(MInstr("ret"))
    profile = EdgeProfile()
    profile.entry_count["f"] = 8
    profile.block_name_count.update({
        ("f", "entry0"): 8, ("f", "other1"): 2, ("f", "join2"): 8,
    })
    profile.edge_name_count.update({
        ("f", "entry0", "join2"): 6,      # the profiled (pre-split) edge
        ("f", "entry0", "other1"): 2,
        ("f", "other1", "join2"): 2,
    })
    mp = MachineProfile(fn, profile)
    assert mp.weight(split) == 6.0        # inflow of the split edge
    assert abs(mp.prob(entry, split) - 0.75) < 1e-12
    assert abs(mp.prob(entry, other) - 0.25) < 1e-12


def test_machine_profile_recovery_blocks_are_cold():
    fn = MFunction("f")
    fn.new_block("entry0")
    rec = fn.new_block("entry0.r1")
    rec.append(MInstr("ret"))
    mp = MachineProfile(fn, None)
    assert mp.weight(rec) == 0.0


# ---- superblock formation ----------------------------------------------


def test_formation_grows_along_hot_edge_and_duplicates_join():
    """The trace follows entry→hot1; the join has a side entrance from
    cold2, so it is tail-duplicated (the copy joins the trace, the
    original keeps the cold predecessor)."""
    fn, entry, hot, cold, exit_b = _diamond()
    traces = form_superblocks(fn, _diamond_profile())
    first = traces[0]
    assert first.blocks[0] is entry
    assert first.blocks[1] is hot
    dup = first.blocks[2]
    assert dup is not exit_b and dup.name == "exit3.d1"
    assert [i.op for i in dup.instrs] == ["ret"]
    # the trace edge was retargeted to the duplicate...
    assert hot.terminator.targets == (dup,)
    # ...and the cold path still reaches the original
    assert cold.terminator.targets == (exit_b,)
    # every block (incl. the duplicate) lands in exactly one trace
    covered = [id(b) for t in traces for b in t.blocks]
    assert sorted(covered) == sorted(id(b) for b in fn.blocks)


def test_formation_respects_tail_duplication_budget():
    fn, entry, hot, cold, exit_b = _diamond()
    traces = form_superblocks(fn, _diamond_profile(), tail_budget=0)
    assert traces[0].blocks == [entry, hot]
    assert all("." not in b.name for b in fn.blocks)   # no duplicates
    assert hot.terminator.targets == (exit_b,)


def test_formation_breaks_at_cold_branch():
    """A 50/50 branch (below TRACE_MIN_PROB) ends the trace."""
    fn, entry, hot, cold, _ = _diamond()
    traces = form_superblocks(fn, _diamond_profile(hot_count=1,
                                                   cold_count=1))
    assert traces[0].blocks == [entry]


def test_formation_never_duplicates_chks_blocks():
    """A side-entranced successor ending in chk.s must not be copied —
    its recovery/continuation pairing stays unique — so the trace ends
    there instead."""
    fn = MFunction("f")
    entry = fn.new_block("entry0")
    check = fn.new_block("check1")
    cold = fn.new_block("cold2")
    cont = fn.new_block("check1.c1")
    rec = fn.new_block("check1.r1")
    entry.append(MInstr("movi", dest=0, imm=1))
    entry.append(MInstr("br", srcs=(0,), targets=(check, cold)))
    cold.append(MInstr("jmp", targets=(check,)))    # the side entrance
    check.append(MInstr("ld.s", dest=1, srcs=(0,)))
    check.append(MInstr("chk.s", srcs=(1,), targets=(cont, rec)))
    rec.append(MInstr("ld.r", dest=1, srcs=(0,)))
    rec.append(MInstr("jmp", targets=(cont,)))
    cont.append(MInstr("ret", srcs=(1,)))
    profile = EdgeProfile()
    profile.entry_count["f"] = 10
    profile.block_name_count.update({
        ("f", "entry0"): 10, ("f", "check1"): 10, ("f", "cold2"): 1,
    })
    profile.edge_name_count.update({
        ("f", "entry0", "check1"): 9,
        ("f", "entry0", "cold2"): 1,
        ("f", "cold2", "check1"): 1,
    })
    traces = form_superblocks(fn, profile)
    assert traces[0].blocks == [entry]
    assert not any(".d" in b.name for b in fn.blocks)


def test_formation_follows_chks_continuation_past_recovery_rejoin():
    """The recovery block's jump back into the continuation is a
    rejoin, not a side entrance: the trace runs straight through the
    check into the continuation without duplicating it."""
    fn = MFunction("f")
    entry = fn.new_block("entry0")
    cont = fn.new_block("entry0.c1")
    rec = fn.new_block("entry0.r1")
    entry.append(MInstr("ld.s", dest=1, srcs=(0,)))
    entry.append(MInstr("chk.s", srcs=(1,), targets=(cont, rec)))
    rec.append(MInstr("ld.r", dest=1, srcs=(0,)))
    rec.append(MInstr("jmp", targets=(cont,)))
    cont.append(MInstr("ret", srcs=(1,)))
    traces = form_superblocks(fn, None)
    assert traces[0].blocks == [entry, cont]
    assert not any(".d" in b.name for b in fn.blocks)


# ---- hot-path layout ---------------------------------------------------


def test_layout_hot_successor_falls_through():
    """br target order puts the cold arm first, but after layout the
    hot arm is lexically next — placement alone flips the branch
    sense, so the hot transfer stops paying branch_penalty."""
    fn = MFunction("f")
    entry = fn.new_block("entry0")
    cold = fn.new_block("cold1")
    hot = fn.new_block("hot2")
    exit_b = fn.new_block("exit3")
    entry.append(MInstr("movi", dest=0, imm=1))
    entry.append(MInstr("br", srcs=(0,), targets=(cold, hot)))
    cold.append(MInstr("jmp", targets=(exit_b,)))
    hot.append(MInstr("jmp", targets=(exit_b,)))
    exit_b.append(MInstr("ret"))
    profile = EdgeProfile()
    profile.entry_count["f"] = 10
    profile.block_name_count.update({
        ("f", "entry0"): 10, ("f", "hot2"): 9, ("f", "cold1"): 1,
        ("f", "exit3"): 10,
    })
    profile.edge_name_count.update({
        ("f", "entry0", "hot2"): 9, ("f", "entry0", "cold1"): 1,
        ("f", "hot2", "exit3"): 9, ("f", "cold1", "exit3"): 1,
    })
    traces = form_superblocks(fn, profile)
    layout_function(fn, traces, profile)
    assert fn.blocks[0] is entry
    assert fn.blocks[1] is hot


# ---- side-exit hoisting legality ---------------------------------------


def _chks_pred():
    cont = MBlock("c")
    rec = MBlock("r")
    rec.append(MInstr("ld.r", dest=5, srcs=(4,)))
    rec.append(MInstr("jmp", targets=(cont,)))
    pred = MBlock("p")
    pred.append(MInstr("chk.s", srcs=(5,), targets=(cont, rec)))
    return pred, cont, rec


def test_hoist_above_jmp_always_legal_for_hoistable_ops():
    target = MBlock("t")
    pred = MBlock("p")
    pred.append(MInstr("jmp", targets=(target,)))
    assert may_hoist_above(MInstr("ld.s", dest=9, srcs=(0,)),
                           pred, target, {})
    # stores and effects never hoist, whatever the terminator
    assert not may_hoist_above(MInstr("st", srcs=(0, 1)),
                               pred, target, {})


def test_hoist_above_ret_never_legal():
    pred = MBlock("p")
    pred.append(MInstr("ret"))
    assert not may_hoist_above(MInstr("movi", dest=9, imm=1),
                               pred, MBlock("t"), {})


def test_hoist_above_br_requires_dest_dead_on_side_exit():
    side = MBlock("s")
    entered = MBlock("e")
    pred = MBlock("p")
    pred.append(MInstr("br", srcs=(0,), targets=(side, entered)))
    live_in = {id(side): frozenset({7})}
    assert not may_hoist_above(MInstr("movi", dest=7, imm=1),
                               pred, entered, live_in)
    assert may_hoist_above(MInstr("movi", dest=8, imm=1),
                           pred, entered, live_in)


def test_hoist_above_chks_protects_the_replay():
    pred, cont, rec = _chks_pred()
    # writing a register the replay defines: clobbers the recovery
    assert not may_hoist_above(MInstr("movi", dest=5, imm=1),
                               pred, cont, {})
    # reading one: the hoisted op would see the unreplayed value
    assert not may_hoist_above(MInstr("add", dest=9, srcs=(5, 2)),
                               pred, cont, {})
    # writing the replay's address chain
    assert not may_hoist_above(MInstr("movi", dest=4, imm=1),
                               pred, cont, {})
    # writing something live into the recovery block
    live_in = {id(rec): frozenset({9})}
    assert not may_hoist_above(MInstr("movi", dest=9, imm=1),
                               pred, cont, live_in)
    # a disjoint computation is fine
    assert may_hoist_above(MInstr("movi", dest=9, imm=1),
                           pred, cont, {})
    # tracing into the recovery block itself: opaque
    assert not may_hoist_above(MInstr("movi", dest=9, imm=1),
                               pred, rec, {})


# ---- property: superblock scheduling is semantics-preserving -----------


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_superblock_matches_unscheduled_output_on_fuzz_programs(seed):
    """Formation (with duplication), trace scheduling and layout must
    be pure optimizations: on random programs the superblock build's
    output equals the completely unscheduled build's (both already
    oracle-checked against the interpreter by compile_and_run)."""
    src = random_program(seed % 60, max_stmts=8)
    sb = compile_and_run(src, SpecConfig.profile().but(
        scheduler="superblock"))
    plain = compile_and_run(src, SpecConfig.profile().but(schedule=False))
    assert sb.output == plain.output
