"""List-scheduler ordering tests.

The correctness-critical rule: **no load crosses a store in either
direction** — in particular an ``ld.c`` must never hoist above a store,
or the check could hit an ALAT entry the store was about to invalidate
(a missed mis-speculation, i.e. a miscompile).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.target import MBlock, MFunction, MInstr, schedule_function


def _block(instrs, name="b0", terminate=True):
    fn = MFunction("f")
    block = fn.new_block(name)
    for instr in instrs:
        block.append(instr)
    if terminate:
        block.append(MInstr("ret"))
    return fn, block


def _ops(block):
    return [i.op for i in block.instrs]


def test_ldc_never_hoists_above_store():
    # r1 = ld.a [r0]; st [r2] <- r3; r1 = ld.c [r0]
    fn, block = _block([
        MInstr("ld.a", dest=1, srcs=(0,)),
        MInstr("st", srcs=(2, 3)),
        MInstr("ld.c", dest=1, srcs=(0,)),
    ])
    schedule_function(fn)
    ops = _ops(block)
    assert ops.index("st") < ops.index("ld.c")
    assert ops.index("ld.a") < ops.index("st")


def test_plain_load_never_sinks_below_store():
    # the other direction: a load before a store stays before it
    fn, block = _block([
        MInstr("ld", dest=1, srcs=(0,)),
        MInstr("st", srcs=(2, 3)),
    ])
    schedule_function(fn)
    assert _ops(block).index("ld") < _ops(block).index("st")


def test_independent_load_hoists_above_long_alu_chain():
    # the load (height 6) should issue before the cheap ALU op
    fn, block = _block([
        MInstr("add", dest=4, srcs=(2, 3)),
        MInstr("ld", dest=1, srcs=(0,)),
    ])
    schedule_function(fn)
    assert _ops(block) == ["ld", "add", "ret"]


def test_raw_dependence_preserved():
    fn, block = _block([
        MInstr("movi", dest=0, imm=8),
        MInstr("ld", dest=1, srcs=(0,)),
        MInstr("add", dest=2, srcs=(1, 1)),
    ])
    schedule_function(fn)
    assert _ops(block) == ["movi", "ld", "add", "ret"]


def test_ldc_implicit_dest_read_orders_after_lda():
    """ld.c reads its own destination (the value the ld.a produced), so
    it can never be scheduled before the ld.a that defines it — even
    with no store in between."""
    fn, block = _block([
        MInstr("ld.a", dest=1, srcs=(0,)),
        MInstr("ld.c", dest=1, srcs=(0,)),
    ])
    schedule_function(fn)
    assert _ops(block) == ["ld.a", "ld.c", "ret"]


def test_blocked_load_does_not_sink_below_store():
    """Regression: a load stuck behind a long-latency chain (here a div)
    must still not sink below a later store, even when the store's
    critical-path height exceeds the load's.  An address-blind model
    must keep program order between every load/store pair."""
    body = [
        MInstr("movi", dest=2, imm=7),
        MInstr("movi", dest=3, imm=3),
        MInstr("div", dest=1, srcs=(2, 3)),
        MInstr("ld", dest=4, srcs=(1,)),     # blocked behind the div
        MInstr("ld", dest=5, srcs=(0,)),
        MInstr("movi", dest=6, imm=1),
        MInstr("st", srcs=(0, 6)),           # tall: WAR chain below it
        MInstr("movi", dest=0, imm=32),
        MInstr("ld", dest=7, srcs=(0,)),
    ]
    fn, block = _block(list(body))
    schedule_function(fn)
    pos = {id(i): k for k, i in enumerate(block.instrs)}
    assert pos[id(body[3])] < pos[id(body[6])]


def test_effects_stay_ordered():
    fn, block = _block([
        MInstr("print", srcs=(1,)),
        MInstr("print", srcs=(2,)),
        MInstr("call", dest=3, callee="g"),
    ])
    schedule_function(fn)
    assert [(i.op, i.srcs) for i in block.instrs[:2]] == \
        [("print", (1,)), ("print", (2,))]
    assert _ops(block)[2] == "call"


def test_terminator_stays_last():
    fn, block = _block([
        MInstr("ld", dest=1, srcs=(0,)),
        MInstr("add", dest=2, srcs=(1, 1)),
    ])
    schedule_function(fn)
    assert block.instrs[-1].op == "ret"


def test_two_instruction_unterminated_block_is_scheduled():
    """Regression: the skip condition is about the schedulable *body*,
    not the raw instruction count.  A two-instruction block without a
    terminator has two reorderable instructions — the independent load
    must still hoist above the cheap ALU op."""
    fn, block = _block([
        MInstr("add", dest=4, srcs=(2, 3)),
        MInstr("ld", dest=1, srcs=(0,)),
    ], terminate=False)
    schedule_function(fn)
    assert _ops(block) == ["ld", "add"]


def test_two_instruction_terminated_block_unchanged():
    """A terminated two-instruction block has a one-instruction body:
    nothing to reorder, the block comes back byte-identical."""
    fn, block = _block([MInstr("ld", dest=1, srcs=(0,))])
    before = [str(i) for i in block.instrs]
    schedule_function(fn)
    assert [str(i) for i in block.instrs] == before
    assert _ops(block) == ["ld", "ret"]


def test_scheduling_is_deterministic_and_idempotent():
    def build():
        return _block([
            MInstr("movi", dest=0, imm=16),
            MInstr("ld", dest=1, srcs=(0,)),
            MInstr("movi", dest=2, imm=3),
            MInstr("mul", dest=3, srcs=(1, 2)),
            MInstr("st", srcs=(0, 3)),
        ])

    fn_a, block_a = build()
    fn_b, block_b = build()
    schedule_function(fn_a)
    schedule_function(fn_b)
    assert [str(i) for i in block_a.instrs] == \
        [str(i) for i in block_b.instrs]
    before = [str(i) for i in block_a.instrs]
    schedule_function(fn_a)  # idempotent: already-scheduled code is a fixpoint
    assert [str(i) for i in block_a.instrs] == before


# ---- property test: random blocks keep their dependences ---------------

@st.composite
def _random_body(draw):
    instrs = []
    for _ in range(draw(st.integers(2, 14))):
        kind = draw(st.sampled_from(["movi", "add", "ld", "ld.a", "ld.c",
                                     "st"]))
        reg = lambda: draw(st.integers(0, 5))
        if kind == "movi":
            instrs.append(MInstr("movi", dest=reg(), imm=draw(
                st.integers(0, 99))))
        elif kind == "add":
            instrs.append(MInstr("add", dest=reg(), srcs=(reg(), reg())))
        elif kind == "st":
            instrs.append(MInstr("st", srcs=(reg(), reg())))
        else:
            instrs.append(MInstr(kind, dest=reg(), srcs=(reg(),)))
    return instrs


@settings(max_examples=200, deadline=None)
@given(_random_body())
def test_schedule_preserves_dependences(body):
    fn, block = _block(body)
    originals = list(body)
    schedule_function(fn)
    scheduled = block.instrs[:-1]
    # a permutation of the same instruction objects
    assert sorted(map(id, scheduled)) == sorted(map(id, originals))
    pos = {id(i): k for k, i in enumerate(scheduled)}

    def before(a, b):
        assert pos[id(a)] < pos[id(b)], f"{a} reordered past {b}"

    last_def = {}
    last_uses = {}
    last_store = None
    pending_loads = []
    for instr in originals:
        for reg in instr.uses:
            if reg in last_def:
                before(last_def[reg], instr)       # RAW
            last_uses.setdefault(reg, []).append(instr)
        if instr.dest is not None:
            if instr.dest in last_def:
                before(last_def[instr.dest], instr)  # WAW
            for use in last_uses.get(instr.dest, ()):
                if use is not instr:
                    before(use, instr)             # WAR
            last_def[instr.dest] = instr
            last_uses[instr.dest] = []
        if instr.op == "st":
            if last_store is not None:             # stores stay ordered
                before(last_store, instr)
            for load in pending_loads:             # no load sinks below st
                before(load, instr)
            last_store = instr
            pending_loads = []
        elif instr.is_load:
            if last_store is not None:             # no load hoists above st
                before(last_store, instr)
            pending_loads.append(instr)
