"""Simulator semantics: speculative load flavours, counter algebra,
faults, and the machine knobs."""

import pytest

from repro.target import (ALAT, MFunction, MInstr, MProgram, MachineError,
                          run_program, verify_program)


def _program(body_builder):
    """A one-function MProgram: ``body_builder(block)`` appends the body;
    a ``ret`` is added automatically."""
    program = MProgram()
    fn = MFunction("main")
    fn.nregs = 16
    block = fn.new_block("entry")
    body_builder(block)
    block.append(MInstr("ret"))
    program.add_function(fn)
    verify_program(program)
    return program


def _spec_roundtrip(invalidate: bool):
    """alloc one cell; st 7; ld.a; (optionally st 9 to the same address);
    ld.c; print the checked register."""
    def build(b):
        b.append(MInstr("movi", dest=0, imm=1))
        b.append(MInstr("alloc", dest=1, srcs=(0,)))
        b.append(MInstr("movi", dest=2, imm=7))
        b.append(MInstr("st", srcs=(1, 2)))
        b.append(MInstr("ld.a", dest=3, srcs=(1,)))
        if invalidate:
            b.append(MInstr("movi", dest=4, imm=9))
            b.append(MInstr("st", srcs=(1, 4)))
        b.append(MInstr("ld.c", dest=3, srcs=(1,)))
        b.append(MInstr("print", srcs=(3,)))
    return _program(build)


def test_check_hit_keeps_value_and_skips_memory():
    stats, output = run_program(_spec_roundtrip(invalidate=False))
    assert output == ["7"]
    assert (stats.advanced_loads, stats.check_loads, stats.check_misses) \
        == (1, 1, 0)
    assert stats.memory_loads == 1      # only the ld.a touched memory
    assert stats.loads_retired == 2
    assert stats.redundant_loads == 1
    assert stats.misspeculation_ratio == 0.0


def test_store_to_armed_address_forces_check_miss():
    stats, output = run_program(_spec_roundtrip(invalidate=True))
    assert output == ["9"]              # the re-load sees the new value
    assert (stats.advanced_loads, stats.check_loads, stats.check_misses) \
        == (1, 1, 1)
    assert stats.memory_loads == 2      # ld.a + the check's re-load
    assert stats.redundant_loads == 0
    assert stats.misspeculation_ratio == 1.0


def test_counter_algebra_holds():
    stats, _ = run_program(_spec_roundtrip(invalidate=True))
    assert stats.loads_retired == (stats.plain_loads + stats.advanced_loads
                                   + stats.spec_loads + stats.check_loads)
    assert stats.memory_loads == (stats.plain_loads + stats.advanced_loads
                                  + stats.spec_loads + stats.check_misses)
    assert stats.redundant_loads == stats.check_loads - stats.check_misses
    d = stats.to_dict()
    assert d["check_misses"] == 1 and d["cycles"] == stats.cycles


def test_tiny_alat_turns_hits_into_capacity_misses():
    """The ablation mechanism: same program, smaller ALAT, more
    mis-speculation.  With 0 entries every check must re-load."""
    program = _spec_roundtrip(invalidate=False)
    stats, output = run_program(program, alat=ALAT(entries=1, ways=1))
    assert output == ["7"]
    # a 1-entry ALAT still holds the single armed entry:
    assert stats.check_misses == 0
    stats2, output2 = run_program(program,
                                  machine_overrides={"alat": ALAT(1, 1)})
    assert output2 == ["7"] and stats2.check_misses == 0


def test_plain_load_from_unallocated_address_faults():
    def build(b):
        b.append(MInstr("movi", dest=0, imm=5000))
        b.append(MInstr("ld", dest=1, srcs=(0,)))
    with pytest.raises(MachineError):
        run_program(_program(build))


def test_speculative_loads_defer_faults_as_nat():
    """ld.a / ld.s from a wild address deliver the NaT poison instead of
    faulting (the deferred-exception behaviour); the poison is invisible
    until consumed, printing it raises, and the failed ld.a does not
    arm, so a ld.c re-executes as a real (faulting) load."""
    def build(b):
        b.append(MInstr("movi", dest=0, imm=5000))
        b.append(MInstr("ld.a", dest=1, srcs=(0,)))
        b.append(MInstr("ld.s", dest=2, srcs=(0,)))
    stats, output = run_program(_program(build))
    assert output == []
    assert (stats.advanced_loads, stats.spec_loads) == (1, 1)
    assert stats.deferred_faults == 2

    def build_print(b):
        build(b)
        b.append(MInstr("print", srcs=(2,)))
    with pytest.raises(MachineError):
        run_program(_program(build_print))

    def build_checked(b):
        build(b)
        b.append(MInstr("ld.c", dest=1, srcs=(0,)))
    with pytest.raises(MachineError):
        run_program(_program(build_checked))


def test_fuel_exhaustion_faults():
    program = MProgram()
    fn = MFunction("main")
    fn.nregs = 1
    block = fn.new_block("loop")
    block.append(MInstr("jmp", targets=(block,)))
    program.add_function(fn)
    with pytest.raises(MachineError):
        run_program(program, fuel=100)


def test_input_stream():
    def build(b):
        b.append(MInstr("input", dest=0))
        b.append(MInstr("print", srcs=(0,)))
    _, output = run_program(_program(build), inputs=[42])
    assert output == ["42"]
    with pytest.raises(MachineError):
        run_program(_program(build), inputs=[])


def test_alat_and_cache_arguments_are_not_mutated():
    alat = ALAT()
    alat.arm(9, 123)
    run_program(_spec_roundtrip(invalidate=False), alat=alat)
    assert alat.check(9, 123)           # configuration object untouched


def test_check_hit_latency_prices_checks_like_loads():
    program = _spec_roundtrip(invalidate=False)
    fast, _ = run_program(program)
    slow, _ = run_program(program, check_hit_latency=8)
    slower, _ = run_program(program, machine_overrides={"check_latency": 8})
    assert fast.cycles < slow.cycles
    assert slow.cycles == slower.cycles  # alias knob, same meaning
