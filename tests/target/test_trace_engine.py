"""The hot-trace JIT engine (docs/performance.md, ``pytest -m
trace_engine``).

``run_program(engine="trace")`` layers a Dynamo-style trace JIT on the
predecoded program: arrival counters warm up per block, hot block
sequences are recorded and compiled into fused Python closures, and any
divergence from the recorded path side-exits back to the interpreter
with exact architectural state.  The contract these tests pin is the
same one the classic/predecode pair already honours — bit-identical
output, bit-identical architectural counters (:meth:`arch_dict`),
bit-identical per-function slices — plus the trace engine's own
obligations: the dispatch counters must be populated and deterministic,
the hot threshold must be tunable, side exits must deoptimize
losslessly, and inlined leaf calls must attribute instructions and
cycles to the callee's ``FnStats`` exactly as the interpreter does.

The fault-injection half (``pytest -m faultinject``) reruns the seeded
campaign with every injected simulation on the trace engine: poisoned
speculative loads, ALAT evictions and cache flushes land *inside*
compiled traces, and every run must still match the reference
interpreter bit for bit.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SpecConfig
from repro.pipeline import compile_program
from repro.target import machine_trace, run_program
from repro.workloads import all_workloads, get_workload
from repro.workloads.fuzz import random_program
from repro.workloads.runner import _machine_kwargs

pytestmark = pytest.mark.trace_engine

_WORKLOADS = [w.name for w in all_workloads()]


def _compiled(name):
    w = get_workload(name)
    result = compile_program(w.source, SpecConfig.profile(),
                             train_inputs=w.train_inputs)
    return result.program, list(w.ref_inputs)


def _compiled_source(source, config=None, train_inputs=()):
    return compile_program(source, config or SpecConfig.profile(),
                           train_inputs=train_inputs).program


def _run(program, inputs, engine):
    return run_program(program, inputs=inputs, engine=engine,
                       **_machine_kwargs())


def _assert_identical(program, inputs):
    """Trace vs classic: output, architectural counters and every
    per-function slice must agree bit for bit."""
    cstats, cout = _run(program, inputs, "classic")
    tstats, tout = _run(program, inputs, "trace")
    assert tout == cout
    assert tstats.arch_dict() == cstats.arch_dict()
    assert set(tstats.fn_stats) == set(cstats.fn_stats)
    for name, cfn in cstats.fn_stats.items():
        assert vars(tstats.fn_stats[name]) == vars(cfn), name
    return tstats


@pytest.mark.parametrize("name", _WORKLOADS)
def test_trace_bit_identical_all_workloads(name):
    program, inputs = _compiled(name)
    _assert_identical(program, inputs)


def test_trace_counters_populated():
    """A simulation-heavy workload must actually leave the interpreter:
    traces compile, the cache hits, and the bulk of the dynamic
    instruction stream retires inside fused closures."""
    program, inputs = _compiled("gzip")
    stats, _ = _run(program, inputs, "trace")
    assert stats.traces_compiled > 0
    assert stats.trace_hits > 0
    assert 0 < stats.trace_dyn_instr <= stats.instructions
    # the headline property of the JIT: most retired instructions ran
    # inside compiled traces, not the predecode loop
    assert stats.trace_dyn_instr / stats.instructions > 0.5


def test_trace_counters_deterministic():
    """Two identical runs agree on everything, dispatch counters
    included — trace recording is driven by arrival counts, not time."""
    program, inputs = _compiled("mcf")
    a, _ = _run(program, inputs, "trace")
    b, _ = _run(program, inputs, "trace")
    assert a.to_dict() == b.to_dict()


def test_hot_threshold_knob(monkeypatch):
    """``REPRO_TRACE_HOT`` (read into ``HOT_THRESHOLD`` at import)
    tunes warm-up: an unreachable threshold keeps every block in the
    interpreter, a threshold of 1 compiles at least as many traces as
    the default — and the run stays bit-identical either way."""
    program, inputs = _compiled("art")
    cstats, cout = _run(program, inputs, "classic")
    default_stats, _ = _run(program, inputs, "trace")

    monkeypatch.setattr(machine_trace, "HOT_THRESHOLD", 10 ** 9)
    cold_stats, cold_out = _run(program, inputs, "trace")
    assert cold_out == cout
    assert cold_stats.arch_dict() == cstats.arch_dict()
    assert cold_stats.traces_compiled == 0
    assert cold_stats.trace_hits == 0

    monkeypatch.setattr(machine_trace, "HOT_THRESHOLD", 1)
    eager_stats, eager_out = _run(program, inputs, "trace")
    assert eager_out == cout
    assert eager_stats.arch_dict() == cstats.arch_dict()
    assert eager_stats.traces_compiled >= default_stats.traces_compiled


def test_side_exits_deoptimize_losslessly():
    """A branch that flips direction after warm-up forces side exits
    out of the recorded arm; the deopt must restore exact architectural
    state (pinned by bit-identity with classic)."""
    source = """
    void main() {
      int i; int s;
      s = 0;
      for (i = 0; i < 400; i = i + 1) {
        if (i < 200) { s = s + i; } else { s = s - i; }
      }
      print(s);
    }
    """
    program = _compiled_source(source, SpecConfig.base())
    stats = _assert_identical(program, [])
    assert stats.traces_compiled > 0
    assert stats.side_exits > 0


def test_inlined_leaf_calls_attribute_to_callee():
    """mcf's ``rnd`` is the canonical branch-free leaf: hot traces
    inline it, and the callee's FnStats (instructions *and* cycles)
    must still match the interpreter's call-by-call attribution."""
    program, inputs = _compiled("mcf")
    tstats = _assert_identical(program, inputs)
    assert tstats.trace_dyn_instr > 0
    assert "rnd" in tstats.fn_stats  # the leaf actually exists and ran
    assert tstats.fn_stats["rnd"].instructions > 0


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture,
                                 HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_fuzz_trace_matches_classic(seed):
    """Hypothesis differential fuzz: on arbitrary generated programs the
    trace engine is bit-identical to classic.  The hot threshold drops
    to 2 so even short-lived fuzz loops compile traces (otherwise the
    property would mostly exercise the warm-up path)."""
    source = random_program(seed, max_stmts=10)
    program = _compiled_source(source)
    old = machine_trace.HOT_THRESHOLD
    machine_trace.HOT_THRESHOLD = 2
    try:
        _assert_identical(program, [])
    finally:
        machine_trace.HOT_THRESHOLD = old


@pytest.mark.faultinject
def test_trace_campaign_210_runs_bit_for_bit():
    """The seeded fault-injection campaign with every injected run on
    the trace engine: poison/storm/chaos perturbations land inside
    compiled traces and every deopt must be lossless — ≥210 runs, zero
    divergence, and the recovery machinery demonstrably fired."""
    from repro.hazards import run_campaign

    report = run_campaign(scenarios=("poison", "storm", "chaos"),
                          seeds=range(7), engine="trace")
    assert len(report.runs) >= 210
    assert report.ok, report.summary()
    assert sum(r.deferred_faults for r in report.runs) > 0
    assert report.total_recoveries > 0
    assert sum(r.check_misses for r in report.runs) > 0


@pytest.mark.faultinject
def test_trace_campaign_matches_predecode_campaign():
    """The engine is invisible to the campaign report: the same seeded
    matrix produces field-for-field identical runs under trace and
    predecode (cycle counts included — injected replays cost the same
    wherever they execute)."""
    from repro.hazards import run_campaign

    kwargs = dict(workload_names=["gzip", "parser"],
                  scenarios=("poison", "storm"), seeds=(0, 1))
    pre = run_campaign(engine="predecode", **kwargs)
    tra = run_campaign(engine="trace", **kwargs)
    assert [vars(r) for r in tra.runs] == [vars(r) for r in pre.runs]
    assert tra.degraded == pre.degraded
