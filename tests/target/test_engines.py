"""The three dispatch engines must be indistinguishable except in speed.

``run_program(engine="classic")`` keeps the pre-decode PR's interpretive
loop alive as the wall-clock baseline, ``engine="trace"`` layers the
hot-trace JIT on the predecoded program (docs/performance.md); these
tests pin the contract the perf benchmark relies on — identical output,
identical architectural counters, identical per-function slices — on
workloads that exercise every speculative flavour (ld.a/ld.c through
gzip's promotion, ld.s + chk.s recovery through the spec workloads).
The trace engine's own dispatch counters (``traces_compiled`` etc.) are
the one permitted difference; :meth:`MachineStats.arch_dict` is the
comparison surface that excludes them.
"""

import pytest

from repro.core import SpecConfig
from repro.pipeline import compile_program
from repro.target.machine import ENGINES, MachineError, run_program
from repro.workloads import all_workloads
from repro.workloads.runner import _machine_kwargs

_WORKLOADS = {w.name: w for w in all_workloads()}


def _compiled(name):
    w = _WORKLOADS[name]
    result = compile_program(w.source, SpecConfig.profile(),
                             train_inputs=w.train_inputs)
    return result.program, w.ref_inputs


@pytest.mark.parametrize("name", ["art", "ammp", "equake", "gzip"])
def test_engines_bit_identical(name):
    program, inputs = _compiled(name)
    kwargs = _machine_kwargs()
    runs = {}
    for engine in ENGINES:
        stats, output = run_program(program, inputs, engine=engine,
                                    **kwargs)
        runs[engine] = (stats, output)
    classic_stats, classic_out = runs["classic"]
    pre_stats, pre_out = runs["predecode"]
    trace_stats, trace_out = runs["trace"]
    assert pre_out == classic_out
    assert trace_out == classic_out
    assert pre_stats.to_dict() == classic_stats.to_dict()
    assert trace_stats.arch_dict() == classic_stats.arch_dict()
    for other in (pre_stats, trace_stats):
        assert set(other.fn_stats) == set(classic_stats.fn_stats)
        for fn_name, classic_fn in classic_stats.fn_stats.items():
            assert vars(other.fn_stats[fn_name]) == vars(classic_fn)
    # classic/predecode leave the dispatch counters untouched
    assert all(v == 0 for v in classic_stats.engine_dict().values())
    assert all(v == 0 for v in pre_stats.engine_dict().values())


def test_engine_selection_via_overrides():
    program, inputs = _compiled("art")
    base = run_program(program, inputs, **_machine_kwargs())
    via_override = run_program(
        program, inputs,
        machine_overrides={"engine": "classic"}, **_machine_kwargs())
    assert via_override[1] == base[1]
    assert via_override[0].to_dict() == base[0].to_dict()


def test_unknown_engine_rejected():
    program, inputs = _compiled("art")
    with pytest.raises(MachineError, match="unknown engine"):
        run_program(program, inputs, engine="jit")
