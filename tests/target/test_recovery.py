"""Misspeculation recovery: chk.s, ld.r, recovery blocks, and NaT
propagation (docs/recovery.md)."""

import pytest

from repro.core import SpecConfig
from repro.hazards import Injector
from repro.pipeline import compile_program
from repro.profiling import run_module
from repro.target import (MFunction, MInstr, MProgram, MachineError,
                          run_program, verify_program)

# ---------------------------------------------------------------------------
# hand-built machine programs
# ---------------------------------------------------------------------------


def _chk_program(mapped: bool):
    """ld.s from a mapped or unmapped address, guarded by chk.s; the
    recovery block replays via ld.r and jumps back to the continuation,
    which prints the register."""
    program = MProgram()
    fn = MFunction("main")
    fn.nregs = 8
    entry = fn.new_block("entry")
    cont = fn.new_block("entry.c1")
    rec = fn.new_block("entry.r1")
    entry.append(MInstr("movi", dest=0, imm=1))
    entry.append(MInstr("alloc", dest=1, srcs=(0,)))
    entry.append(MInstr("movi", dest=2, imm=7))
    entry.append(MInstr("st", srcs=(1, 2)))
    if not mapped:
        # point past the single allocated cell
        entry.append(MInstr("movi", dest=3, imm=1))
        entry.append(MInstr("add", dest=1, srcs=(1, 3)))
    entry.append(MInstr("ld.s", dest=4, srcs=(1,)))
    entry.append(MInstr("chk.s", srcs=(4,), targets=(cont, rec)))
    cont.append(MInstr("print", srcs=(4,)))
    cont.append(MInstr("ret"))
    rec.append(MInstr("ld.r", dest=4, srcs=(1,)))
    rec.append(MInstr("jmp", targets=(cont,)))
    program.add_function(fn)
    verify_program(program)
    return program


def test_chk_on_good_value_falls_through():
    stats, output = run_program(_chk_program(mapped=True))
    assert output == ["7"]
    assert stats.spec_checks == 1
    assert stats.spec_recoveries == 0
    assert stats.deferred_faults == 0
    assert stats.replay_loads == 0


def test_chk_on_nat_takes_recovery_and_replays():
    stats, output = run_program(_chk_program(mapped=False))
    # the unmapped ld.s deferred; ld.r reads the architectural zero
    assert output == ["0"]
    assert stats.deferred_faults == 1
    assert stats.spec_checks == 1
    assert stats.spec_recoveries == 1
    assert stats.replay_loads == 1
    # replay loads retire and touch memory
    assert stats.loads_retired == stats.spec_loads + stats.replay_loads
    assert stats.memory_loads == stats.spec_loads + stats.replay_loads


def test_nat_propagates_through_arithmetic_until_check():
    """NaT flows through bin/un ops; chk.s on the *derived* register
    still catches it (the recovery replays the whole span)."""
    program = MProgram()
    fn = MFunction("main")
    fn.nregs = 8
    entry = fn.new_block("entry")
    cont = fn.new_block("entry.c1")
    rec = fn.new_block("entry.r1")
    entry.append(MInstr("movi", dest=0, imm=4))
    entry.append(MInstr("alloc", dest=1, srcs=(0,)))
    entry.append(MInstr("movi", dest=2, imm=99))
    entry.append(MInstr("add", dest=3, srcs=(1, 0)))  # past end
    entry.append(MInstr("ld.s", dest=4, srcs=(3,)))
    entry.append(MInstr("add", dest=5, srcs=(4, 2)))  # NaT + 99
    entry.append(MInstr("chk.s", srcs=(5,), targets=(cont, rec)))
    cont.append(MInstr("print", srcs=(5,)))
    cont.append(MInstr("ret"))
    rec.append(MInstr("ld.r", dest=4, srcs=(3,)))
    rec.append(MInstr("add", dest=5, srcs=(4, 2)))
    rec.append(MInstr("jmp", targets=(cont,)))
    program.add_function(fn)
    verify_program(program)
    stats, output = run_program(program)
    assert output == ["99"]             # replayed: 0 + 99
    assert stats.deferred_faults == 1
    assert stats.spec_recoveries == 1


def test_unchecked_nat_consumption_is_a_machine_fault():
    """A NaT that reaches a store without passing a check is a compiler
    bug and must crash loudly, not corrupt memory."""
    program = MProgram()
    fn = MFunction("main")
    fn.nregs = 8
    entry = fn.new_block("entry")
    entry.append(MInstr("movi", dest=0, imm=1))
    entry.append(MInstr("alloc", dest=1, srcs=(0,)))
    entry.append(MInstr("movi", dest=2, imm=1))
    entry.append(MInstr("add", dest=3, srcs=(1, 2)))
    entry.append(MInstr("ld.s", dest=4, srcs=(3,)))   # unmapped -> NaT
    entry.append(MInstr("st", srcs=(1, 4)))           # NaT into memory!
    entry.append(MInstr("ret"))
    program.add_function(fn)
    verify_program(program)
    with pytest.raises(MachineError, match="NaT"):
        run_program(program)


# ---------------------------------------------------------------------------
# codegen-level: the compiler emits the whole recovery scheme
# ---------------------------------------------------------------------------

GUARDED = """
int lookup(int *t, int n, int k) {
  int i; int s; int v; s = 0;
  for (i = 0; i < n; i = i + 1) {
    if (k < n) { v = t[k]; s = s + v + i; }
  }
  return s;
}
void main() {
  int t[8]; int j; int acc; acc = 0;
  for (j = 0; j < 8; j = j + 1) { t[j] = j * 3; }
  for (j = 0; j < 40; j = j + 1) {
    acc = acc + lookup(t, 8, j - (j / 8) * 8);
  }
  print(acc);
}
"""


def _compiled():
    return compile_program(GUARDED, SpecConfig.base())


def test_codegen_emits_chk_with_out_of_line_recovery():
    compiled = _compiled()
    fn = compiled.program.functions["lookup"]
    checks = [i for b in fn.blocks for i in b.instrs if i.op == "chk.s"]
    assert checks, "guarded hoisted load should be chk.s-protected"
    for chk in checks:
        cont, rec = chk.targets
        # the recovery block replays loads non-speculatively and jumps
        # back to the continuation
        assert any(i.op == "ld.r" for i in rec.instrs)
        assert rec.instrs[-1].op == "jmp"
        assert rec.instrs[-1].targets == (cont,)
        # chk.s terminates its block: nothing may be scheduled past it
        owner = next(b for b in fn.blocks if chk in b.instrs)
        assert owner.instrs[-1] is chk
        # recovery is out of line: the good path falls through to the
        # continuation, which sits right after the check block
        assert fn.blocks.index(cont) == fn.blocks.index(owner) + 1
        assert fn.blocks.index(rec) > fn.blocks.index(cont)


def test_injected_poison_is_recovered_bit_for_bit():
    compiled = _compiled()
    expected = run_module(compiled.original)
    injector = Injector(seed=11, sload_nat_rate=0.5)
    stats, output = run_program(compiled.program, injector=injector)
    assert output == expected
    assert stats.deferred_faults > 0
    assert stats.spec_recoveries == stats.deferred_faults
    assert stats.replay_loads >= stats.spec_recoveries


def test_injection_is_deterministic_per_seed():
    compiled = _compiled()
    runs = [run_program(compiled.program,
                        injector=Injector(seed=3, sload_nat_rate=0.3))
            for _ in range(2)]
    assert runs[0][1] == runs[1][1]
    assert runs[0][0].deferred_faults == runs[1][0].deferred_faults
    other = run_program(compiled.program,
                        injector=Injector(seed=4, sload_nat_rate=0.3))
    # different seed, same program: the *outputs* still match
    assert other[1] == runs[0][1]
