"""Property test: the ALAT under adversarial store storms.

The model invariant from ``repro/target/alat.py``: **a check hit implies
no store wrote the armed address since the entry was armed** — under any
interleaving of arms, stores, forced evictions and flushes.  Hypothesis
drives a random operation stream against the real ALAT and a trivial
shadow model; at machine level, a store-heavy program under forced
evictions must still match its uninjected output bit-for-bit.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hazards import Injector
from repro.target import (ALAT, MFunction, MInstr, MProgram, run_program,
                          verify_program)

# ---------------------------------------------------------------------------
# model-level: random op streams against a shadow model
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("arm"), st.integers(0, 7), st.integers(0, 31)),
        st.tuples(st.just("store"), st.integers(0, 31), st.just(0)),
        st.tuples(st.just("evict"), st.integers(0, 10_000), st.just(0)),
        st.tuples(st.just("check"), st.integers(0, 7), st.integers(0, 31)),
    ),
    max_size=120,
)


@given(ops=_OPS, entries=st.sampled_from([2, 4, 8, 32]),
       ways=st.sampled_from([1, 2]))
@settings(max_examples=200, deadline=None)
def test_check_hit_implies_no_intervening_store(ops, entries, ways):
    if entries % ways:
        entries = ways * max(1, entries // ways)
    alat = ALAT(entries=entries, ways=ways)
    shadow = {}  # reg -> (addr, clean)
    for op, a, b in ops:
        if op == "arm":
            alat.arm(a, b)
            shadow[a] = (b, True)
        elif op == "store":
            alat.invalidate(a)
            for reg, (addr, _) in list(shadow.items()):
                if addr == a:
                    shadow[reg] = (addr, False)
        elif op == "evict":
            alat.evict_one(random.Random(a))
        elif op == "check":
            hit = alat.check(a, b)
            if hit:
                # the invariant: a hit is only possible for a clean,
                # still-matching entry (evictions may only remove hits,
                # never resurrect stale ones)
                addr, clean = shadow.get(a, (None, False))
                assert clean and addr == b
    assert len(alat) <= entries


@given(seed=st.integers(0, 2**31), rate=st.floats(0.1, 1.0))
@settings(max_examples=50, deadline=None)
def test_forced_evictions_never_fabricate_hits(seed, rate):
    """Arm, storm-evict, then check: the check either hits with the
    armed address (eviction didn't reach it) or misses — it can never
    hit with a different address."""
    alat = ALAT(entries=4, ways=2)
    rng = random.Random(seed)
    armed = {}
    for reg in range(6):
        addr = rng.randrange(16)
        alat.arm(reg, addr)
        armed[reg] = addr
    for _ in range(4):
        if rng.random() < rate:
            alat.evict_one(rng)
    for reg, addr in armed.items():
        assert not alat.check(reg, addr + 1)
        # a hit, if any, is only ever for the armed address
        alat.check(reg, addr)  # must not raise


# ---------------------------------------------------------------------------
# machine-level: store storm + forced evictions, differential
# ---------------------------------------------------------------------------


def _storm_program(n_iters: int):
    """A loop body flattened: repeated (ld.a; st elsewhere; ld.c; print)
    rounds so every forced eviction turns a would-be hit into a replay."""
    program = MProgram()
    fn = MFunction("main")
    fn.nregs = 16
    block = fn.new_block("entry")
    block.append(MInstr("movi", dest=0, imm=8))
    block.append(MInstr("alloc", dest=1, srcs=(0,)))
    block.append(MInstr("movi", dest=2, imm=5))
    block.append(MInstr("st", srcs=(1, 2)))            # cell0 = 5
    block.append(MInstr("movi", dest=3, imm=1))
    block.append(MInstr("add", dest=4, srcs=(1, 3)))   # &cell1
    for i in range(n_iters):
        block.append(MInstr("ld.a", dest=5, srcs=(1,)))
        block.append(MInstr("movi", dest=6, imm=i))
        block.append(MInstr("st", srcs=(4, 6)))        # never aliases
        block.append(MInstr("ld.c", dest=5, srcs=(1,)))
        block.append(MInstr("print", srcs=(5,)))
    block.append(MInstr("ret"))
    program.add_function(fn)
    verify_program(program)
    return program


@given(seed=st.integers(0, 2**31), rate=st.floats(0.1, 1.0))
@settings(max_examples=30, deadline=None)
def test_store_storm_matches_uninjected_output(seed, rate):
    program = _storm_program(12)
    clean_stats, clean_out = run_program(program)
    assert clean_stats.check_misses == 0      # the store never aliases
    injector = Injector(seed=seed, alat_evict_rate=rate)
    stats, output = run_program(program, injector=injector)
    assert output == clean_out                # recovery, not corruption
    # every evicted entry costs exactly one check miss (a replay)
    assert stats.check_misses == injector.telemetry["alat-evict"]
    assert stats.loads_retired >= clean_stats.loads_retired
