"""DataCache unit tests: hierarchy latencies, LRU, the FP L1 bypass."""

import pytest

from repro.target import DataCache


def _cache(**kw):
    kw.setdefault("l1_lines", 4)
    kw.setdefault("l2_lines", 8)
    kw.setdefault("ways", 2)
    kw.setdefault("line_cells", 8)
    return DataCache(**kw)


def test_miss_then_l1_hit():
    cache = _cache()
    assert cache.load(0) == cache.mem_latency
    assert cache.load(0) == cache.l1_latency
    assert cache.load(7) == cache.l1_latency  # same line
    assert (cache.misses, cache.l1_hits) == (1, 2)


def test_l2_hit_after_l1_eviction():
    cache = _cache()  # L1: 2 sets x 2 ways; lines 0,2,4 share set 0
    cache.load(0 * 8)
    cache.load(2 * 8)
    cache.load(4 * 8)                       # evicts line 0 from L1
    assert cache.load(0 * 8) == cache.l2_latency  # still in the larger L2
    assert cache.l2_hits == 1


def test_l1_lru_is_refreshed_by_hits():
    cache = _cache()
    cache.load(0 * 8)
    cache.load(2 * 8)
    cache.load(0 * 8)                       # line 0 becomes MRU
    cache.load(4 * 8)                       # evicts line 2, not line 0
    assert cache.load(0 * 8) == cache.l1_latency
    assert cache.load(2 * 8) == cache.l2_latency


def test_fp_loads_bypass_l1():
    """Itanium FP loads are served from L2 at best (paper §5.2) — the
    reason promoted FP loads save ≥ the L2 latency."""
    cache = _cache()
    assert cache.load(0, fp=True) == cache.mem_latency
    assert cache.load(0, fp=True) == cache.l2_latency  # never an L1 hit
    # and the FP access did not install the line in L1:
    assert cache.load(0, fp=False) == cache.l2_latency


def test_int_fill_then_fp_still_pays_l2():
    cache = _cache()
    cache.load(0, fp=False)                 # resident in both levels
    assert cache.load(0, fp=True) == cache.l2_latency


def test_store_write_allocates_without_latency():
    cache = _cache()
    cache.store(0)
    assert cache.load(0) == cache.l1_latency


def test_clone_is_cold_and_can_override_mem_latency():
    cache = _cache()
    cache.load(0)
    clone = cache.clone(mem_latency=99)
    assert clone.mem_latency == 99
    assert clone.l1_lines == cache.l1_lines
    assert clone.load(0) == 99              # cold: first access misses
    assert cache.load(0) == cache.l1_latency  # original state untouched


def test_reset_clears_residency_and_counters():
    cache = _cache()
    cache.load(0)
    cache.load(0)
    cache.reset()
    assert (cache.l1_hits, cache.l2_hits, cache.misses) == (0, 0, 0)
    assert cache.load(0) == cache.mem_latency


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        DataCache(l1_lines=3, ways=2)
