"""ALAT unit tests + the safety-invariant property test.

The invariant that makes data speculation sound (docs/machine_model.md):
**a check hit implies no store wrote the armed address since the entry
was armed.**  Misses are always allowed (capacity evictions just cost a
re-load); false *hits* would be miscompiles.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.target import ALAT


def test_arm_then_check_hits():
    alat = ALAT()
    alat.arm(3, 100)
    assert alat.check(3, 100)
    assert alat.check(3, 100)  # a hit does not consume the entry


def test_check_requires_matching_address():
    alat = ALAT()
    alat.arm(3, 100)
    assert not alat.check(3, 101)


def test_check_requires_matching_register():
    alat = ALAT()
    alat.arm(3, 100)
    assert not alat.check(4, 100)


def test_store_invalidates_matching_address():
    alat = ALAT()
    alat.arm(3, 100)
    alat.arm(4, 132)
    assert alat.invalidate(100) == 1
    assert not alat.check(3, 100)
    assert alat.check(4, 132)  # unrelated entry survives


def test_invalidate_unknown_address_is_noop():
    alat = ALAT()
    alat.arm(3, 100)
    assert alat.invalidate(999) == 0
    assert alat.check(3, 100)


def test_rearm_same_register_drops_stale_entry():
    """A register tracks one address: re-arming must not leave a stale
    entry behind, even when the new address hashes to another set."""
    alat = ALAT(entries=32, ways=2)
    alat.arm(3, 100)
    alat.arm(3, 101)          # different set (101 % 16 != 100 % 16)
    assert len(alat) == 1
    assert not alat.check(3, 100)
    assert alat.check(3, 101)


def test_capacity_eviction_is_lru_within_set():
    alat = ALAT(entries=4, ways=2)  # 2 sets
    # three addresses in the same set (multiples of nsets=2)
    alat.arm(1, 10)
    alat.arm(2, 12)
    alat.check(1, 10)         # touch: entry for r1 becomes MRU
    alat.arm(3, 14)           # evicts the LRU entry (r2)
    assert alat.check(1, 10)
    assert not alat.check(2, 12)
    assert alat.check(3, 14)


def test_frames_do_not_collide():
    """Recursion: the same register number in two activations must not
    share an entry (virtual registers are per-frame, physical ones are
    not — the frame serial restores the hardware's behaviour)."""
    alat = ALAT()
    alat.arm(3, 100, frame=1)
    assert not alat.check(3, 100, frame=2)
    alat.arm(3, 108, frame=2)
    assert alat.check(3, 100, frame=1)


def test_clone_is_cold_and_same_geometry():
    alat = ALAT(entries=8, ways=4)
    alat.arm(1, 10)
    clone = alat.clone()
    assert (clone.entries, clone.ways) == (8, 4)
    assert len(clone) == 0
    assert alat.check(1, 10)  # original untouched


def test_reset_clears_everything():
    alat = ALAT()
    alat.arm(1, 10)
    alat.reset()
    assert not alat.check(1, 10)
    assert len(alat) == 0


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        ALAT(entries=5, ways=2)
    with pytest.raises(ValueError):
        ALAT(entries=0, ways=1)


# ---- the safety invariant, property-tested ----------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("arm"), st.integers(0, 7), st.integers(0, 25)),
        st.tuples(st.just("store"), st.integers(0, 25)),
        st.tuples(st.just("check"), st.integers(0, 7), st.integers(0, 25)),
    ),
    max_size=120,
)


@settings(max_examples=300, deadline=None)
@given(ops=_ops, entries=st.sampled_from([2, 4, 8, 32]),
       ways=st.sampled_from([1, 2]))
def test_check_hit_implies_no_intervening_store(ops, entries, ways):
    """Against a shadow model: whenever the ALAT reports a hit, the
    register must have been armed at exactly that address and no store
    to it may have happened since.  (The converse — shadow-clean but
    ALAT miss — is allowed: capacity evictions.)"""
    alat = ALAT(entries=entries, ways=ways)
    armed = {}  # reg -> (addr, clean)
    for op in ops:
        if op[0] == "arm":
            _, reg, addr = op
            alat.arm(reg, addr)
            armed[reg] = (addr, True)
        elif op[0] == "store":
            _, addr = op
            alat.invalidate(addr)
            for reg, (a, clean) in list(armed.items()):
                if a == addr:
                    armed[reg] = (a, False)
        else:
            _, reg, addr = op
            if alat.check(reg, addr):
                assert reg in armed, "hit for a register never armed"
                a, clean = armed[reg]
                assert a == addr, "hit at a different address than armed"
                assert clean, "hit despite an intervening store"
