"""Unit tests for the reference interpreter."""

import pytest

from repro.lang import compile_source
from repro.profiling import InterpError, c_div, c_rem, run_module


def run(src, fuel=1_000_000):
    return run_module(compile_source(src), fuel=fuel)


def test_arith_and_print():
    assert run("void main() { print(1 + 2 * 3); }") == ["7"]


def test_c_division_semantics():
    assert c_div(7, 2) == 3
    assert c_div(-7, 2) == -3
    assert c_div(7, -2) == -3
    assert c_rem(-7, 2) == -1
    assert c_rem(7, -2) == 1
    assert c_div(1.0, 2) == 0.5


def test_division_by_zero_raises():
    with pytest.raises(InterpError):
        run("void main() { print(1 / 0); }")


def test_float_formatting():
    assert run("void main() { print(1.5 + 1.5); }") == ["3"]
    assert run("void main() { print(1.0 / 3.0); }") == ["0.333333"]


def test_control_flow_if_else():
    src = "void main() { int x; x = 5; if (x > 3) { print(1); } else { print(0); } }"
    assert run(src) == ["1"]


def test_loop_sum():
    src = (
        "void main() { int i; int s; s = 0;"
        " for (i = 0; i < 5; i = i + 1) { s = s + i; } print(s); }"
    )
    assert run(src) == ["10"]


def test_while_and_break_continue():
    src = (
        "void main() { int i; i = 0;"
        " while (1) { i = i + 1; if (i == 3) { continue; }"
        " if (i > 5) { break; } print(i); } }"
    )
    assert run(src) == ["1", "2", "4", "5"]


def test_function_calls_and_recursion():
    src = (
        "int fib(int n) { if (n < 2) { return n; }"
        " return fib(n - 1) + fib(n - 2); }"
        "void main() { print(fib(10)); }"
    )
    assert run(src) == ["55"]


def test_pointers_and_heap():
    src = (
        "void main() { int *p; int i;"
        " p = alloc(4);"
        " for (i = 0; i < 4; i = i + 1) { p[i] = i * i; }"
        " print(p[3] + p[2]); }"
    )
    assert run(src) == ["13"]


def test_address_of_scalar():
    src = (
        "void main() { int x; int *p; x = 1; p = &x; *p = 42; print(x); }"
    )
    assert run(src) == ["42"]


def test_globals_initialized_zero_and_shared():
    src = (
        "int g;"
        "void bump() { g = g + 1; }"
        "void main() { bump(); bump(); print(g); }"
    )
    assert run(src) == ["2"]


def test_global_array():
    src = (
        "double a[3];"
        "void main() { a[1] = 2.5; print(a[0] + a[1]); }"
    )
    assert run(src) == ["2.5"]


def test_pointer_aliasing_through_two_names():
    src = (
        "void main() { int *p; int *q; p = alloc(2); q = p;"
        " *p = 7; print(*q); }"
    )
    assert run(src) == ["7"]


def test_short_circuit_evaluation_avoids_deref():
    src = (
        "void main() { int *p; p = 0;"
        " if ((p != 0) && (*p > 0)) { print(1); } else { print(0); } }"
    )
    assert run(src) == ["0"]


def test_out_of_bounds_load_raises():
    with pytest.raises(InterpError):
        run("void main() { int *p; p = alloc(2); print(p[100]); }")


def test_fuel_exhaustion():
    with pytest.raises(InterpError):
        run("void main() { while (1) { } }", fuel=1000)


def test_conversions():
    assert run("void main() { int x; x = 3.7; print(x); }") == ["3"]
    assert run("void main() { double d; d = 3; print(d / 2); }") == ["1.5"]


def test_mutual_recursion():
    src = (
        "int is_odd(int n);"  # no prototypes — define in order instead
    )
    src = (
        "int dec(int n) { return n - 1; }"
        "int parity(int n) { if (n == 0) { return 0; }"
        " return 1 - parity(dec(n)); }"
        "void main() { print(parity(7)); }"
    )
    assert run(src) == ["1"]


def test_loc_of_addr_public_api():
    from repro.lang import compile_source
    from repro.profiling import Interpreter

    m = compile_source("int g; void main() { g = 1; }")
    interp = Interpreter(m)
    interp.run()
    g = m.globals[0]
    addr = interp._global_addr[g]
    assert interp.loc_of_addr(addr) is g
    assert interp.loc_of_addr(addr + 500) is None
    assert interp.loc_of_addr(0) is None
