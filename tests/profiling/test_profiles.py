"""Unit tests for alias/edge profiling and the load-reuse simulation."""

from repro.analysis import HeapLoc
from repro.ir import CallStmt, Load, Store
from repro.lang import compile_source
from repro.profiling import (collect_alias_profile, collect_edge_profile,
                             simulate_load_reuse)


def module_of(src):
    return compile_source(src)


def loads_of(fn):
    out = []
    for _, stmt in fn.statements():
        for e in stmt.walk_exprs():
            if isinstance(e, Load):
                out.append(e)
    for _, term in fn.terminators():
        for top in term.exprs():
            out.extend(e for e in top.walk() if isinstance(e, Load))
    return out


def stores_of(fn):
    return [s for _, s in fn.statements() if isinstance(s, Store)]


def calls_of(fn):
    return [s for _, s in fn.statements()
            if isinstance(s, CallStmt) and not s.is_alloc]


def test_load_loc_set_records_actual_targets():
    src = (
        "void main() { int x; int y; int *p; int s;"
        " p = &x; x = 1; y = 2; s = *p; print(s + y); }"
    )
    m = module_of(src)
    prof = collect_alias_profile(m)
    (load,) = loads_of(m.main)
    locs = prof.load_loc_set(load)
    assert {l.name for l in locs} == {"x"}


def test_store_loc_set_heap_named_by_site():
    src = "void main() { int *p; p = alloc(4); *p = 1; }"
    m = module_of(src)
    prof = collect_alias_profile(m)
    (store,) = stores_of(m.main)
    locs = prof.store_loc_set(store)
    assert len(locs) == 1 and isinstance(next(iter(locs)), HeapLoc)


def test_never_executed_store_has_empty_set():
    src = (
        "void main() { int x; int *p; p = &x;"
        " if (0) { *p = 1; } print(x); }"
    )
    m = module_of(src)
    prof = collect_alias_profile(m)
    (store,) = stores_of(m.main)
    assert not prof.store_executed(store)
    assert prof.store_loc_set(store) == set()


def test_input_dependent_aliasing_observed():
    # p points to x only on the path taken; profile reflects the run.
    src = (
        "void main() { int x; int y; int *p; int c; c = 1;"
        " if (c) { p = &x; } else { p = &y; } *p = 9; print(x + y); }"
    )
    m = module_of(src)
    prof = collect_alias_profile(m)
    (store,) = stores_of(m.main)
    assert {l.name for l in prof.store_loc_set(store)} == {"x"}


def test_call_mod_ref_sets():
    src = (
        "int g; int h;"
        "void touch(int *p) { g = g + 1; *p = 5; }"
        "void main() { int x; touch(&x); print(g + h + x); }"
    )
    m = module_of(src)
    prof = collect_alias_profile(m)
    (call,) = calls_of(m.main)
    mods = {l.name for l in prof.call_mod_set(call)}
    refs = {l.name for l in prof.call_ref_set(call)}
    assert mods == {"g", "x"}
    assert "g" in refs            # g read by g = g + 1
    assert "h" not in mods


def test_nested_calls_attributed_to_outer_site():
    src = (
        "int g;"
        "void inner() { g = 1; }"
        "void outer() { inner(); }"
        "void main() { outer(); print(g); }"
    )
    m = module_of(src)
    prof = collect_alias_profile(m)
    (call,) = calls_of(m.main)
    assert {l.name for l in prof.call_mod_set(call)} == {"g"}


def test_edge_profile_counts_loop_iterations():
    src = (
        "void main() { int i; for (i = 0; i < 10; i = i + 1) { print(i); } }"
    )
    m = module_of(src)
    prof = collect_edge_profile(m)
    fn = m.main
    cond = next(b for b in fn.blocks if b.name.startswith("for_cond"))
    body = next(b for b in fn.blocks if b.name.startswith("for_body"))
    exit_b = next(b for b in fn.blocks if b.name.startswith("for_exit"))
    assert prof.edge(cond, body) == 10
    assert prof.edge(cond, exit_b) == 1
    assert prof.block(cond) == 11
    assert prof.entry_count["main"] == 1


def test_edge_profile_untaken_branch_zero():
    src = "void main() { int x; x = 0; if (x) { print(1); } print(2); }"
    m = module_of(src)
    prof = collect_edge_profile(m)
    fn = m.main
    then_b = next(b for b in fn.blocks if b.name.startswith("then"))
    assert prof.block(then_b) == 0


def test_edge_prob_normalizes_outgoing_counts():
    src = (
        "void main() { int i; for (i = 0; i < 10; i = i + 1) { print(i); } }"
    )
    m = module_of(src)
    prof = collect_edge_profile(m)
    fn = m.main
    cond = next(b for b in fn.blocks if b.name.startswith("for_cond"))
    body = next(b for b in fn.blocks if b.name.startswith("for_body"))
    exit_b = next(b for b in fn.blocks if b.name.startswith("for_exit"))
    # 10 body traversals + 1 exit traversal out of cond
    assert abs(prof.prob(cond, body) - 10 / 11) < 1e-12
    assert abs(prof.prob(cond, exit_b) - 1 / 11) < 1e-12
    assert abs(sum(prof.prob(cond, s) for s in cond.succs) - 1.0) < 1e-12


def test_edge_prob_zero_count_falls_back_to_uniform():
    # the branch inside the dead arm never executes: its outgoing
    # counts are all 0 and prob() splits evenly over the successors
    src = (
        "void main() { int x; int y; x = 0; y = 1;"
        " if (x) { if (y) { print(1); } print(2); } print(3); }"
    )
    m = module_of(src)
    prof = collect_edge_profile(m)
    fn = m.main
    dead_cond = next(b for b in fn.blocks
                     if prof.block(b) == 0 and len(b.succs) == 2)
    for succ in dead_cond.succs:
        assert prof.prob(dead_cond, succ) == 0.5


def test_edge_prob_memo_matches_uncached_and_invalidates():
    """prob()'s per-branch normalization sums are memoized; the memo
    must be invisible (cached == recomputed-from-raw-counts) and must
    drop the moment any edge counter is touched."""
    src = (
        "void main() { int i; for (i = 0; i < 10; i = i + 1) { print(i); } }"
    )
    m = module_of(src)
    prof = collect_edge_profile(m)
    fn = m.main
    cond = next(b for b in fn.blocks if b.name.startswith("for_cond"))
    body = next(b for b in fn.blocks if b.name.startswith("for_body"))

    def uncached(src_b, dst_b):
        succs = list(src_b.succs)
        if dst_b not in succs:
            return 0.0
        total = sum(prof.edge(src_b, s) for s in succs)
        if total == 0:
            return 1.0 / len(succs)
        return prof.edge(src_b, dst_b) / total

    for src_b in fn.blocks:
        for dst_b in fn.blocks:
            first = prof.prob(src_b, dst_b)      # populates the memo
            assert prof.prob(src_b, dst_b) == first   # memo hit
            assert first == uncached(src_b, dst_b)

    # a counter update invalidates: the new counts are visible at once
    before = prof.prob(cond, body)
    prof.edge_count[(cond.uid, body.uid)] += 100
    after = prof.prob(cond, body)
    assert after != before
    assert after == uncached(cond, body)


def test_edge_prob_non_successor_is_zero():
    src = (
        "void main() { int i; for (i = 0; i < 10; i = i + 1) { print(i); } }"
    )
    m = module_of(src)
    prof = collect_edge_profile(m)
    fn = m.main
    body = next(b for b in fn.blocks if b.name.startswith("for_body"))
    exit_b = next(b for b in fn.blocks if b.name.startswith("for_exit"))
    assert exit_b not in body.succs
    assert prof.prob(body, exit_b) == 0.0


def test_load_reuse_detects_repeated_identical_loads():
    src = (
        "void main() { int *p; int i; int s; s = 0; p = alloc(2); *p = 5;"
        " for (i = 0; i < 10; i = i + 1) { s = s + *p; } print(s); }"
    )
    stats = simulate_load_reuse(module_of(src))
    # *p loaded 10x from same address with same value: 9 redundant.
    assert stats.redundant_loads >= 9
    assert stats.total_loads >= 10
    assert 0.0 < stats.reuse_fraction <= 1.0


def test_load_reuse_store_changing_value_breaks_reuse():
    src = (
        "void main() { int *p; int i; int s; s = 0; p = alloc(2);"
        " for (i = 0; i < 10; i = i + 1) { *p = i; s = s + *p; } print(s); }"
    )
    stats = simulate_load_reuse(module_of(src))
    assert stats.redundant_loads == 0


def test_load_reuse_does_not_cross_invocations():
    src = (
        "int f(int *p) { return *p; }"
        "void main() { int *p; int s; int i; s = 0; p = alloc(1); *p = 3;"
        " for (i = 0; i < 4; i = i + 1) { s = s + f(p); } print(s); }"
    )
    stats = simulate_load_reuse(module_of(src))
    # each f() invocation has a fresh table: the *p loads never reuse
    assert stats.redundant_loads == 0
