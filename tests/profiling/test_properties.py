"""Hypothesis property tests for the interpreter's C semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.profiling import c_div, c_rem

nonzero = st.integers(min_value=-1000, max_value=1000).filter(
    lambda x: x != 0
)
ints = st.integers(min_value=-10_000, max_value=10_000)


@given(a=ints, b=nonzero)
def test_div_rem_reconstruction(a, b):
    """C identity: (a/b)*b + a%b == a."""
    assert c_div(a, b) * b + c_rem(a, b) == a


@given(a=ints, b=nonzero)
def test_div_truncates_toward_zero(a, b):
    q = c_div(a, b)
    assert abs(q) == abs(a) // abs(b)
    if q != 0:
        assert (q > 0) == ((a > 0) == (b > 0))


@given(a=ints, b=nonzero)
def test_rem_sign_follows_dividend(a, b):
    r = c_rem(a, b)
    assert abs(r) < abs(b)
    if r != 0:
        assert (r > 0) == (a > 0)


@given(a=ints, b=nonzero)
def test_div_matches_float_division_rounded(a, b):
    assert c_div(a, b) == int(a / b)


@given(a=st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e6, max_value=1e6),
       b=st.floats(min_value=0.5, max_value=1e3))
def test_float_division_exact(a, b):
    assert c_div(a, b) == a / b


@given(seed=st.integers(min_value=0, max_value=10_000))
def test_interpreter_deterministic(seed):
    """Same program + same inputs ⇒ same output (no hidden state)."""
    from repro.lang import compile_source
    from repro.profiling import run_module
    from repro.workloads.fuzz import random_program

    src = random_program(seed % 50, max_stmts=6)
    module = compile_source(src)
    first = run_module(module, fuel=1_000_000)
    module2 = compile_source(src)
    second = run_module(module2, fuel=1_000_000)
    assert first == second
