"""Tests for the Andersen-style points-to analysis and its precision
relative to Steensgaard."""

import pytest

from repro.analysis import Steensgaard
from repro.analysis.andersen import Andersen
from repro.ir import Store
from repro.lang import compile_source


def both(src):
    m1 = compile_source(src)
    m2 = compile_source(src)
    return m1, Andersen(m1), m2, Steensgaard(m2)


def stores_of(module, fn="main"):
    return [s for _, s in module.functions[fn].statements()
            if isinstance(s, Store)]


def test_basic_points_to():
    src = "void main() { int x; int *p; p = &x; *p = 1; print(x); }"
    m, andersen = compile_source(src), None
    andersen = Andersen(m)
    (store,) = stores_of(m)
    targets = andersen._targets_of(store.addr)
    assert {t.name for t in targets} == {"x"}


def test_andersen_keeps_directional_flow_separate():
    """The classic Steensgaard imprecision: `p = &x; q = &y; r = p;`
    unifies x and y under Steensgaard (through r's merged class in a
    further copy chain), but Andersen keeps r ⊇ {x} only."""
    src = (
        "void main() { int x; int y; int *p; int *q; int *r;"
        " p = &x; q = &y; r = p; r = q;"
        " *p = 1; *q = 2; print(x + y); }"
    )
    m1, andersen, m2, steens = both(src)
    s1_a, s2_a = stores_of(m1)
    # Andersen: *p writes only x, *q writes only y
    assert {t.name for t in andersen._targets_of(s1_a.addr)} == {"x"}
    assert {t.name for t in andersen._targets_of(s2_a.addr)} == {"y"}
    assert not andersen.may_alias(s1_a.addr, s2_a.addr)
    # Steensgaard: r's unification merges the classes
    s1_s, s2_s = stores_of(m2)
    assert steens.may_alias(s1_s.addr, s2_s.addr)


def test_heap_objects_by_site():
    src = (
        "void main() { int *p; int *q; p = alloc(2); q = alloc(2);"
        " *p = 1; *q = 2; }"
    )
    m = compile_source(src)
    andersen = Andersen(m)
    s1, s2 = stores_of(m)
    assert not andersen.may_alias(s1.addr, s2.addr)


def test_store_then_load_chain():
    src = (
        "void main() { int x; int **h; int *p; h = alloc(1);"
        " *h = &x; p = *h; *p = 5; print(x); }"
    )
    m = compile_source(m_src := src)
    andersen = Andersen(m)
    stores = stores_of(m)
    final = stores[-1]
    assert {getattr(t, "name", t) for t in
            andersen._targets_of(final.addr)} == {"x"}


def test_interprocedural_param_and_return():
    src = (
        "int *pick(int *a, int *b, int c) {"
        " if (c) { return a; } return b; }"
        "void main() { int x; int y; int *r; r = pick(&x, &y, 1);"
        " *r = 3; print(x + y); }"
    )
    m = compile_source(src)
    andersen = Andersen(m)
    (store,) = stores_of(m)
    names = {t.name for t in andersen._targets_of(store.addr)}
    assert names == {"x", "y"}


def test_classes_are_equivalence_classes():
    src = (
        "void main() { int x; int y; int z; int *p; int *q;"
        " if (x) { p = &x; } else { p = &y; }"
        " if (y) { q = &y; } else { q = &z; }"
        " *p = 1; *q = 2; print(x + y + z); }"
    )
    m = compile_source(src)
    andersen = Andersen(m)
    s1, s2 = stores_of(m)
    # overlap through y forces one class covering x, y, z
    c1 = andersen.class_of_address(s1.addr)
    c2 = andersen.class_of_address(s2.addr)
    assert c1 == c2
    assert {l.name for l in andersen.locations(c1)} == {"x", "y", "z"}


def test_precision_never_worse_than_steensgaard():
    """Every Andersen may-alias is also a Steensgaard may-alias (the
    unification analysis over-approximates the inclusion one)."""
    from repro.workloads.fuzz import random_program

    for seed in range(10):
        src = random_program(seed, max_stmts=8)
        m1 = compile_source(src)
        m2 = compile_source(src)
        andersen, steens = Andersen(m1), Steensgaard(m2)
        stores1 = stores_of(m1)
        stores2 = stores_of(m2)
        for (a1, a2) in zip(stores1, stores2):
            for (b1, b2) in zip(stores1, stores2):
                if andersen.may_alias(a1.addr, b1.addr):
                    assert steens.may_alias(a2.addr, b2.addr), (seed, a1)


def test_precision_report():
    src = "void main() { int x; int *p; p = &x; *p = 1; print(x); }"
    report = Andersen(compile_source(src)).precision_report()
    assert report["classes"] >= 1
    assert report["max_class_size"] >= 1


def test_pipeline_works_with_andersen_classifier():
    """The classifier accepts any analysis with the Steensgaard query
    surface; swap Andersen in and run the Figure 2 program."""
    from repro.analysis import AliasClassifier
    from repro.core import SpecConfig, optimize_function
    from repro.ir import split_module_critical_edges
    from repro.profiling import collect_alias_profile, run_module
    from repro.ssa import SpecMode, build_ssa, flagger_for, lower_module

    src = (
        "void f(int *p, int *q) { int x; x = *p; *q = 9; x = x + *p;"
        " print(x); }"
        "void main() { int a[8]; int b[8]; int c; c = 0;"
        " a[0] = 5; if (c) { f(a, a); } f(a, b); }"
    )
    module = compile_source(src)
    expected = run_module(module)
    profile = collect_alias_profile(module)
    split_module_critical_edges(module)
    classifier = AliasClassifier(module, steensgaard=Andersen(module))
    ssa_fns = []
    for fn in module.functions.values():
        ssa = build_ssa(module, fn, classifier,
                        flagger=flagger_for(SpecMode.PROFILE, profile))
        optimize_function(ssa, SpecConfig.profile())
        ssa_fns.append(ssa)
    lowered = lower_module(module, ssa_fns)
    assert run_module(lowered) == expected
