"""Property tests: our dominator computation vs networkx's, on random
CFGs and on CFGs of random generated programs."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

nx = pytest.importorskip("networkx")

from repro.analysis import DominatorTree
from repro.ir import INT, FunctionBuilder, Jump, CondBr, Return
from repro.lang import compile_source
from repro.workloads.fuzz import random_program


def random_cfg(seed: int, n_blocks: int = 8):
    """Build a random (reducible or not) CFG function."""
    rng = random.Random(seed)
    b = FunctionBuilder("f", [("c", INT)])
    blocks = [b.fn.entry] + [b.new_block(f"n{i}")
                             for i in range(n_blocks - 1)]
    cond = b.read(b.params["c"])
    for i, block in enumerate(blocks):
        choice = rng.random()
        later = blocks[i + 1:] if i + 1 < len(blocks) else []
        anywhere = blocks  # allow back edges
        if not later or choice < 0.2:
            block.terminator = Return(None)
        elif choice < 0.6:
            block.terminator = Jump(rng.choice(later))
        else:
            t = rng.choice(anywhere)
            e = rng.choice(later)
            block.terminator = CondBr(cond, t, e)
    b.fn.compute_cfg()
    return b.fn


def nx_idoms(fn):
    graph = nx.DiGraph()
    graph.add_node(fn.entry.uid)
    for block in fn.blocks:
        for succ in block.successors():
            graph.add_edge(block.uid, succ.uid)
    return nx.immediate_dominators(graph, fn.entry.uid)


def check_against_networkx(fn):
    dom = DominatorTree(fn)
    expected = nx_idoms(fn)
    for block in fn.blocks:
        ours = dom.idom[block]
        if block is fn.entry:
            assert ours is None
        else:
            theirs = expected[block.uid]
            assert ours is not None and ours.uid == theirs, block.name


@pytest.mark.parametrize("seed", range(30))
def test_idoms_match_networkx_random_cfgs(seed):
    fn = random_cfg(seed, n_blocks=4 + seed % 9)
    check_against_networkx(fn)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_idoms_match_networkx_generated_programs(seed):
    module = compile_source(random_program(seed % 60, max_stmts=8))
    for fn in module.functions.values():
        check_against_networkx(fn)


@pytest.mark.parametrize("seed", range(15))
def test_dominance_frontier_definition(seed):
    """DF(b) = {y : b dominates a pred of y, b does not strictly
    dominate y} — checked against the definition directly."""
    fn = random_cfg(seed, n_blocks=7)
    dom = DominatorTree(fn)
    for b in fn.blocks:
        expected = set()
        for y in fn.blocks:
            if any(dom.dominates(b, p) for p in y.preds) \
                    and not dom.strictly_dominates(b, y):
                expected.add(y)
        assert dom.frontier[b] == expected, b.name


@pytest.mark.parametrize("seed", range(15))
def test_dominates_is_partial_order(seed):
    fn = random_cfg(seed + 100, n_blocks=6)
    dom = DominatorTree(fn)
    blocks = fn.blocks
    for a in blocks:
        assert dom.dominates(a, a)  # reflexive
        for b in blocks:
            if dom.dominates(a, b) and dom.dominates(b, a):
                assert a is b  # antisymmetric
            for c in blocks:
                if dom.dominates(a, b) and dom.dominates(b, c):
                    assert dom.dominates(a, c)  # transitive
