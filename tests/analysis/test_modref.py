"""Unit tests for interprocedural mod/ref summaries."""

import pytest

from repro.analysis import compute_modref
from repro.core import SpecConfig
from repro.lang import compile_source
from repro.pipeline import compile_and_run, compile_program


def summaries(src):
    return compute_modref(compile_source(src))


def globals_by_name(module):
    return {g.name: g for g in module.globals}


def test_direct_global_mod_and_ref():
    src = (
        "int g; int h;"
        "void f() { g = h + 1; }"
        "void main() { f(); print(g); }"
    )
    module = compile_source(src)
    s = compute_modref(module)["f"]
    names_mod = {x.name for x in s.mod_globals}
    names_ref = {x.name for x in s.ref_globals}
    assert names_mod == {"g"}
    assert names_ref == {"h"}
    assert not s.touches_memory_mod


def test_transitive_effects_through_calls():
    src = (
        "int g;"
        "void inner() { g = 1; }"
        "void outer() { inner(); }"
        "void main() { outer(); print(g); }"
    )
    s = summaries(src)
    assert {x.name for x in s["outer"].mod_globals} == {"g"}
    assert {x.name for x in s["main"].mod_globals} == {"g"}


def test_recursion_converges():
    src = (
        "int g;"
        "int f(int n) { if (n == 0) { return g; } g = n; return f(n - 1); }"
        "void main() { print(f(3)); }"
    )
    s = summaries(src)
    assert {x.name for x in s["f"].mod_globals} == {"g"}
    assert {x.name for x in s["f"].ref_globals} == {"g"}


def test_store_sets_memory_flag():
    src = (
        "void f(int *p) { *p = 1; }"
        "void g() { }"
        "void main() { int a[2]; f(a); g(); print(a[0]); }"
    )
    s = summaries(src)
    assert s["f"].touches_memory_mod
    assert not s["g"].touches_memory_mod
    assert not s["g"].touches_memory_ref


def test_pure_function_summary_empty():
    src = (
        "int sq(int x) { return x * x; }"
        "void main() { print(sq(4)); }"
    )
    s = summaries(src)["sq"]
    assert not s.mod_globals and not s.ref_globals
    assert not s.touches_memory_mod and not s.touches_memory_ref


def test_modref_enables_promotion_across_pure_call():
    """The base (no data speculation!) can now keep g in a register
    across a call that provably never touches it."""
    src = (
        "int g;"
        "int sq(int x) { return x * x; }"
        "void main() { int a; int b; g = 5;"
        " a = g; b = sq(2); a = a + g; print(a + b); }"
    )
    cfg = SpecConfig.base()
    compiled = compile_program(src, cfg)
    ops = [i.op for blk in compiled.program.functions["main"].blocks
           for i in blk.instrs]
    assert ops.count("ld") == 1  # second g read promoted, no check needed
    result = compile_and_run(src, cfg)
    assert result.output == result.expected == ["14"]


def test_modref_disabled_blocks_promotion():
    src = (
        "int g;"
        "int sq(int x) { return x * x; }"
        "void main() { int a; int b; g = 5;"
        " a = g; b = sq(2); a = a + g; print(a + b); }"
    )
    cfg = SpecConfig.base().but(interprocedural_modref=False)
    compiled = compile_program(src, cfg)
    ops = [i.op for blk in compiled.program.functions["main"].blocks
           for i in blk.instrs]
    assert ops.count("ld") == 2  # conservative: the call kills g
    result = compile_and_run(src, cfg)
    assert result.output == result.expected


def test_modref_never_unsafe_on_fuzz_programs():
    from repro.workloads.fuzz import random_program

    for seed in range(8):
        src = random_program(seed, max_stmts=8)
        on = compile_and_run(src, SpecConfig.base(), fuel=2_000_000)
        off = compile_and_run(
            src, SpecConfig.base().but(interprocedural_modref=False),
            fuel=2_000_000)
        assert on.output == off.output == on.expected
