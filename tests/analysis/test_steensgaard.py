"""Unit tests for the Steensgaard points-to analysis."""

from repro.analysis import HeapLoc, Steensgaard
from repro.ir import Load, Store, VarRead
from repro.lang import compile_source


def analyze(src):
    module = compile_source(src)
    return module, Steensgaard(module)


def find_local(module, fn, name):
    f = module.functions[fn]
    for sym in f.params + f.locals:
        if sym.name == name:
            return sym
    raise AssertionError(name)


def addr_of_store(module, fn="main", index=0):
    stores = [s for _, s in module.functions[fn].statements()
              if isinstance(s, Store)]
    return stores[index].addr


def test_two_pointers_same_target_unified():
    m, st = analyze(
        "void main() { int x; int *p; int *q; p = &x; q = p; *q = 1; }"
    )
    x = find_local(m, "main", "x")
    q_addr = addr_of_store(m)
    assert x in st.locations(st.class_of_address(q_addr))


def test_distinct_targets_not_aliased():
    m, st = analyze(
        "void main() { int x; int y; int *p; int *q;"
        " p = &x; q = &y; *p = 1; *q = 2; }"
    )
    a0 = addr_of_store(m, index=0)
    a1 = addr_of_store(m, index=1)
    assert not st.may_alias(a0, a1)


def test_conditional_assignment_unifies():
    m, st = analyze(
        "void main() { int x; int y; int *p;"
        " if (x) { p = &x; } else { p = &y; } *p = 1; }"
    )
    x = find_local(m, "main", "x")
    y = find_local(m, "main", "y")
    locs = st.locations(st.class_of_address(addr_of_store(m)))
    assert x in locs and y in locs


def test_heap_location_named_by_site():
    m, st = analyze("void main() { int *p; p = alloc(8); *p = 1; }")
    locs = st.locations(st.class_of_address(addr_of_store(m)))
    assert any(isinstance(l, HeapLoc) for l in locs)


def test_distinct_alloc_sites_distinct_classes():
    m, st = analyze(
        "void main() { int *p; int *q; p = alloc(8); q = alloc(8);"
        " *p = 1; *q = 2; }"
    )
    assert not st.may_alias(addr_of_store(m, index=0),
                            addr_of_store(m, index=1))


def test_store_through_pointer_links_contents():
    # **h = &x; then *(*h) aliases x
    m, st = analyze(
        "void main() { int x; int **h; int *p; h = alloc(1);"
        " *h = &x; p = *h; *p = 5; }"
    )
    x = find_local(m, "main", "x")
    locs = st.locations(st.class_of_address(addr_of_store(m, index=1)))
    assert x in locs


def test_interprocedural_param_flow():
    m, st = analyze(
        "void f(int *p) { *p = 1; }"
        "void main() { int x; f(&x); }"
    )
    x = find_local(m, "main", "x")
    locs = st.locations(st.class_of_address(addr_of_store(m, fn="f")))
    assert x in locs


def test_interprocedural_return_flow():
    m, st = analyze(
        "int *id(int *p) { return p; }"
        "void main() { int x; int *q; q = id(&x); *q = 1; }"
    )
    x = find_local(m, "main", "x")
    locs = st.locations(st.class_of_address(addr_of_store(m)))
    assert x in locs


def test_pointer_arithmetic_stays_in_class():
    m, st = analyze(
        "void main() { double *p; double *q; p = alloc(10);"
        " q = p + 4; *q = 1.0; }"
    )
    a = addr_of_store(m)
    p = find_local(m, "main", "p")
    assert st.may_alias(a, VarRead(p))  # q+0 cells alias p's object


def test_array_decay_points_to_array():
    m, st = analyze(
        "double a[10]; void main() { double *p; p = a; *p = 1.0; }"
    )
    a_sym = m.globals[0]
    locs = st.locations(st.class_of_address(addr_of_store(m)))
    assert a_sym in locs


def test_non_pointer_has_no_class():
    m, st = analyze("void main() { int x; x = 1; }")
    from repro.ir import Const, INT
    assert st.class_of_address(Const(5, INT)) is None
    assert st.locations(None) == set()


def test_globals_reachable_interprocedurally():
    m, st = analyze(
        "int g; int *gp;"
        "void set() { gp = &g; }"
        "void main() { set(); *gp = 3; }"
    )
    g = m.globals[0]
    locs = st.locations(st.class_of_address(addr_of_store(m, fn="main")))
    assert g in locs
