"""Unit tests for alias classes, TBAA and virtual-variable assignment."""

from repro.analysis import AliasClassifier, tbaa_compatible, type_family
from repro.ir import FLOAT, INT, Load, Store, ptr
from repro.lang import compile_source


def classify(src, fn="main", use_tbaa=True):
    module = compile_source(src)
    classifier = AliasClassifier(module, use_tbaa=use_tbaa)
    function = module.functions[fn]
    return module, function, classifier.analyze_function(function)


def stores_of(fn):
    return [s for _, s in fn.statements() if isinstance(s, Store)]


def loads_of(fn):
    out = []
    for _, stmt in fn.statements():
        for e in stmt.walk_exprs():
            if isinstance(e, Load):
                out.append(e)
    for _, term in fn.terminators():
        for top in term.exprs():
            for e in top.walk():
                if isinstance(e, Load):
                    out.append(e)
    return out


def test_tbaa_families():
    assert type_family(INT) == "int"
    assert type_family(ptr(FLOAT)) == "ptr"
    assert tbaa_compatible(INT, INT)
    assert not tbaa_compatible(INT, FLOAT)
    assert tbaa_compatible(ptr(INT), ptr(ptr(FLOAT)))


def test_same_shape_shares_vvar():
    src = (
        "int f(int *p) { return *p + *p; }"
        "void main() { }"
    )
    module, fn, info = classify(src, fn="f")
    l1, l2 = loads_of(fn)
    assert info.for_load(l1).vvar is info.for_load(l2).vvar


def test_different_shape_same_class_distinct_vvars_cross_chi():
    src = (
        "void f(int *p, int *q) { int x; x = *p; *q = 1; x = *p; }"
        "void main() { int a[4]; f(a, a); }"
    )
    module, fn, info = classify(src, fn="f")
    (store,) = stores_of(fn)
    loads = loads_of(fn)
    load_vvar = info.for_load(loads[0]).vvar
    store_site = info.for_store(store)
    assert store_site.vvar is not load_vvar
    assert load_vvar in store_site.other_vvars  # cross-shape may-update


def test_tbaa_filters_cross_vvars():
    # int store cannot alias double loads even in one Steensgaard class.
    src = (
        "void f(int *p, double *q) { double d; d = *q; *p = 1; d = *q; }"
        "void main() { int a[4]; f(a, a); }"
    )
    module, fn, info = classify(src, fn="f")
    (store,) = stores_of(fn)
    loads = loads_of(fn)
    q_vvar = info.for_load(loads[0]).vvar
    assert q_vvar not in info.for_store(store).other_vvars


def test_address_taken_scalar_in_chi_list():
    src = (
        "void main() { int a; int *p; p = &a; *p = 1; print(a); }"
    )
    module, fn, info = classify(src)
    (store,) = stores_of(fn)
    names = [s.name for s in info.for_store(store).real_vars]
    assert names == ["a"]


def test_non_address_taken_not_in_lists():
    src = (
        "void main() { int a; int b; int *p; p = &a; *p = 1; print(b); }"
    )
    module, fn, info = classify(src)
    (store,) = stores_of(fn)
    names = [s.name for s in info.for_store(store).real_vars]
    assert "b" not in names


def test_call_lists_include_globals_and_escaped():
    src = (
        "int g;"
        "void f(int *p) { *p = 1; }"
        "void main() { int x; int y; f(&x); print(y); g = 2; }"
    )
    module, fn, info = classify(src)
    call_names = {s.name for s in info.call_chi}
    assert "g" in call_names
    assert "x" in call_names        # escapes via &x argument
    assert "y" not in call_names    # never address-taken


def test_local_not_escaping_excluded_from_call_lists():
    src = (
        "void f(int *p) { *p = 1; }"
        "void main() { int x; int z; int *q; q = &z; *q = 3;"
        " f(&x); print(z); }"
    )
    module, fn, info = classify(src)
    call_names = {s.name for s in info.call_chi}
    assert "x" in call_names
    assert "z" not in call_names  # address-taken but never escapes


def test_vvar_has_class_and_shape_registered():
    src = "int f(int *p) { return *p; } void main() { }"
    module, fn, info = classify(src, fn="f")
    (load,) = loads_of(fn)
    vvar = info.for_load(load).vvar
    assert vvar in info.vvars
    assert info.vvar_class[vvar] is not None
    assert info.vvar_shape[vvar][0] == "var"


def test_without_tbaa_cross_type_vvars_link():
    src = (
        "void f(int *p, double *q) { double d; d = *q; *p = 1; }"
        "void main() { int a[4]; f(a, a); }"
    )
    module, fn, info = classify(src, fn="f", use_tbaa=False)
    (store,) = stores_of(fn)
    (load,) = loads_of(fn)
    assert info.for_load(load).vvar in info.for_store(store).other_vvars
