"""Unit tests for dominator tree / dominance frontiers."""

from repro.analysis import DominatorTree
from repro.ir import INT, FunctionBuilder


def build_diamond():
    b = FunctionBuilder("f", [("c", INT)])
    x = b.local("x", INT)
    then_b, else_b, join = (b.new_block(n) for n in ("then", "else", "join"))
    b.branch(b.read(b.params["c"]), then_b, else_b)
    b.set_block(then_b); b.assign(x, 1); b.jump(join)
    b.set_block(else_b); b.assign(x, 2); b.jump(join)
    b.set_block(join); b.ret()
    return b.done()


def build_loop():
    """entry -> cond <-> body ; cond -> exit"""
    b = FunctionBuilder("g", [("n", INT)])
    i = b.local("i", INT)
    b.assign(i, 0)
    cond, body, exit_b = (b.new_block(n) for n in ("cond", "body", "exit"))
    b.jump(cond)
    b.set_block(cond)
    b.branch(b.lt(i, b.params["n"]), body, exit_b)
    b.set_block(body)
    b.assign(i, b.add(i, 1))
    b.jump(cond)
    b.set_block(exit_b)
    b.ret()
    return b.done()


def blocks_by_name(fn):
    return {blk.name: blk for blk in fn.blocks}


def test_diamond_idoms():
    fn = build_diamond()
    dom = DominatorTree(fn)
    bb = blocks_by_name(fn)
    entry = fn.entry
    assert dom.idom[entry] is None
    for name in ("then0", "then1", "else1", "else2", "join3"):
        if name in bb:
            assert dom.idom[bb[name]] is entry


def test_diamond_dominates_queries():
    fn = build_diamond()
    dom = DominatorTree(fn)
    bb = blocks_by_name(fn)
    join = next(b for n, b in bb.items() if n.startswith("join"))
    then_b = next(b for n, b in bb.items() if n.startswith("then"))
    assert dom.dominates(fn.entry, join)
    assert dom.dominates(fn.entry, fn.entry)
    assert not dom.dominates(then_b, join)
    assert not dom.strictly_dominates(fn.entry, fn.entry)


def test_diamond_frontier_is_join():
    fn = build_diamond()
    dom = DominatorTree(fn)
    bb = blocks_by_name(fn)
    join = next(b for n, b in bb.items() if n.startswith("join"))
    then_b = next(b for n, b in bb.items() if n.startswith("then"))
    else_b = next(b for n, b in bb.items() if n.startswith("else"))
    assert dom.frontier[then_b] == {join}
    assert dom.frontier[else_b] == {join}
    assert dom.frontier[fn.entry] == set()


def test_loop_header_in_own_frontier():
    fn = build_loop()
    dom = DominatorTree(fn)
    bb = blocks_by_name(fn)
    cond = next(b for n, b in bb.items() if n.startswith("cond"))
    body = next(b for n, b in bb.items() if n.startswith("body"))
    assert cond in dom.frontier[body]
    assert cond in dom.frontier[cond]  # self-frontier through the back edge


def test_iterated_frontier_closure():
    fn = build_loop()
    dom = DominatorTree(fn)
    bb = blocks_by_name(fn)
    body = next(b for n, b in bb.items() if n.startswith("body"))
    cond = next(b for n, b in bb.items() if n.startswith("cond"))
    assert dom.iterated_frontier([body]) == {cond}


def test_preorder_starts_at_entry_and_covers_all():
    fn = build_loop()
    dom = DominatorTree(fn)
    pre = dom.preorder()
    assert pre[0] is fn.entry
    assert set(pre) == set(fn.blocks)
    # parent precedes child in preorder
    pos = {b: i for i, b in enumerate(pre)}
    for child, parent in dom.idom.items():
        if parent is not None:
            assert pos[parent] < pos[child]
