"""Unit tests for the static probabilistic alias analysis
(:mod:`repro.analysis.prob_alias`, ISSUE 8): the sparse linear solver on
closed-form systems, branch-probability / block-frequency closed forms
on hand-built CFGs, per-site distributions, and the static flagger's
determinism + threshold monotonicity (hypothesis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (LoopForest, block_frequencies,
                            branch_probabilities, compute_prob_alias,
                            solve_linear, solve_linear_multi)
from repro.analysis.prob_alias import (EPS_REACH, FREQ_CAP, NULL,
                                       PROB_LOOP_STAY, UNKNOWN,
                                       UNKNOWN_SHARE, SiteProb, dist_overlap)
from repro.lang import compile_source

pytestmark = pytest.mark.spec_static


# ---------------------------------------------------------------------------
# The sparse linear solver, on closed-form systems
# ---------------------------------------------------------------------------


def test_solver_identity_system():
    # x = 0·x + b  →  x = b
    assert solve_linear({"a": {}}, {"a": 3.0}) == {"a": 3.0}


def test_solver_two_by_two_closed_form():
    # x0 = 0.5·x1 + 1, x1 = 0.5·x0  →  x0 = 4/3, x1 = 2/3
    sol = solve_linear({"x0": {"x1": 0.5}, "x1": {"x0": 0.5}},
                       {"x0": 1.0, "x1": 0.0})
    assert math.isclose(sol["x0"], 4.0 / 3.0, rel_tol=1e-9)
    assert math.isclose(sol["x1"], 2.0 / 3.0, rel_tol=1e-9)


def test_solver_geometric_series():
    # x = p·x + 1  →  x = 1/(1-p), the loop-frequency closed form
    for p in (0.5, 0.88, 0.99):
        sol = solve_linear({"h": {"h": p}}, {"h": 1.0})
        assert math.isclose(sol["h"], 1.0 / (1.0 - p), rel_tol=1e-9)


def test_solver_needs_partial_pivoting():
    # row for x0 has a zero diagonal after (I - A): x0 = x0 + x1 makes
    # the natural pivot vanish, so the solver must row-swap.  Exact
    # solution: x1 = 0, then 0 = 0.5·x0 + 1 → x0 = -2.
    sol = solve_linear({"x0": {"x0": 1.0, "x1": 1.0},
                        "x1": {"x0": 0.5}},
                       {"x0": 0.0, "x1": 1.0})
    assert math.isclose(sol["x0"], -2.0, abs_tol=1e-9)
    assert abs(sol["x1"]) < 1e-9


def test_solver_multi_rhs_matches_scalar_solves():
    coeffs = {"x0": {"x1": 0.25}, "x1": {"x0": 0.5}}
    multi = solve_linear_multi(
        coeffs, {"x0": {"p": 1.0, "q": 2.0}, "x1": {"q": 1.0}})
    for dim, consts in (("p", {"x0": 1.0, "x1": 0.0}),
                        ("q", {"x0": 2.0, "x1": 1.0})):
        scalar = solve_linear(coeffs, consts)
        for v in coeffs:
            assert math.isclose(multi[v].get(dim, 0.0), scalar[v],
                                rel_tol=1e-9, abs_tol=1e-12)


def test_solver_singular_system_falls_back_bounded():
    # x = 1·x + 1 is a probability-1 cycle: (I - A) is singular, so the
    # damped Gauss–Seidel fallback runs and stays finite (≤ FREQ_CAP)
    sol = solve_linear({"x": {"x": 1.0}}, {"x": 1.0}, iterations=50)
    assert 1.0 <= sol["x"] <= FREQ_CAP
    # the homogeneous singular system converges to the zero fixpoint
    assert solve_linear({"x": {"x": 1.0}}, {"x": 0.0})["x"] == 0.0


# ---------------------------------------------------------------------------
# Branch probabilities and block frequencies on hand-built CFGs
# ---------------------------------------------------------------------------

DIAMOND = (
    "void main(int c) {"
    "  int a;"
    "  if (c) { a = 1; } else { a = 2; }"
    "  print(a);"
    "}"
)

DEAD_ARM = (
    "void main() {"
    "  int a;"
    "  if (0) { a = 1; } else { a = 2; }"
    "  print(a);"
    "}"
)

WHILE_LOOP = (
    "void main(int n) {"
    "  int i;"
    "  i = 0;"
    "  while (i < n) { i = i + 1; }"
    "  print(i);"
    "}"
)


def _fn(src, name="main"):
    return compile_source(src).functions[name]


def test_diamond_unpredictable_branch_splits_half():
    fn = _fn(DIAMOND)
    probs = branch_probabilities(fn)
    freq = block_frequencies(fn, probs)
    entry_out = {b: p for (a, b), p in probs.items() if a is fn.entry}
    assert len(entry_out) == 2
    assert all(math.isclose(p, 0.5) for p in entry_out.values())
    for arm in entry_out:
        assert math.isclose(freq[arm], 0.5, rel_tol=1e-9)
    # the join re-accumulates to the entry frequency
    assert math.isclose(max(freq.values()), 1.0, rel_tol=1e-9)
    assert math.isclose(freq[fn.entry], 1.0)


def test_constant_condition_folds_and_kills_the_dead_arm():
    fn = _fn(DEAD_ARM)
    probs = branch_probabilities(fn)
    freq = block_frequencies(fn, probs)
    entry_out = sorted(p for (a, _), p in probs.items() if a is fn.entry)
    assert entry_out == [0.0, 1.0]  # folded, not 0.5/0.5
    dead = [b for (a, b), p in probs.items()
            if a is fn.entry and p == 0.0]
    assert len(dead) == 1 and freq[dead[0]] <= EPS_REACH


def test_loop_header_frequency_is_the_geometric_closed_form():
    fn = _fn(WHILE_LOOP)
    probs = branch_probabilities(fn)
    freq = block_frequencies(fn, probs)
    loops = LoopForest(fn).loops
    assert len(loops) == 1
    header_freq = freq[loops[0].header]
    assert math.isclose(header_freq, 1.0 / (1.0 - PROB_LOOP_STAY),
                        rel_tol=1e-9)


def test_frequencies_are_nonnegative_and_entry_is_one():
    for src in (DIAMOND, DEAD_ARM, WHILE_LOOP):
        fn = _fn(src)
        freq = block_frequencies(fn)
        assert math.isclose(freq[fn.entry], 1.0)
        assert all(f >= 0.0 for f in freq.values())


# ---------------------------------------------------------------------------
# Site distributions
# ---------------------------------------------------------------------------


def test_site_prob_target_prob_blends_unknown_prior():
    site = SiteProb({"a": 0.5, UNKNOWN: 0.4, NULL: 0.1}, reach=1.0)
    assert math.isclose(site.target_prob("a"), 0.5 + 0.4 * UNKNOWN_SHARE)
    assert math.isclose(site.target_prob("b"), 0.4 * UNKNOWN_SHARE)
    assert SiteProb({"a": 2.0}, 1.0).target_prob("a") == 1.0  # clamped


def test_dist_overlap_closed_forms():
    assert dist_overlap({"a": 1.0}, {"a": 1.0}) == 1.0
    assert dist_overlap({"a": 1.0}, {"b": 1.0}) == 0.0
    assert math.isclose(dist_overlap({"a": 0.5, "b": 0.5},
                                     {"a": 0.5, "b": 0.5}), 0.5)
    # unknown mass collides at the prior share
    assert math.isclose(dist_overlap({UNKNOWN: 1.0}, {"a": 1.0}),
                        UNKNOWN_SHARE)
    assert dist_overlap({NULL: 1.0}, {"a": 1.0}) == 0.0


POINTER_DIAMOND = (
    "void main(int c) {"
    "  int a; int b; int x; int *p;"
    "  if (c) { p = &a; } else { p = &b; }"
    "  x = *p;"
    "  print(x);"
    "}"
)

POINTER_DEAD = (
    "void main() {"
    "  int a; int b; int x; int *p;"
    "  if (0) { p = &a; } else { p = &b; }"
    "  x = *p;"
    "  print(x);"
    "}"
)


def _load_site(fn, info):
    """The SiteProb of the function's last indirect load."""
    from repro.ir import Load

    sites = []
    for block in fn.rpo():
        for stmt in block.stmts:
            for expr in stmt.exprs():
                for node in expr.walk():
                    if isinstance(node, Load):
                        key = id(node)
                        if key in info.sites:
                            sites.append(info.sites[key])
    assert sites, "no analyzed load site found"
    return sites[-1]


def test_pointer_diamond_splits_the_distribution():
    fn = _fn(POINTER_DIAMOND)
    info = compute_prob_alias(fn)
    site = _load_site(fn, info)
    a_syms = [s for s in fn.locals if s.name == "a"]
    b_syms = [s for s in fn.locals if s.name == "b"]
    assert a_syms and b_syms
    assert math.isclose(site.dist.get(a_syms[0], 0.0), 0.5, rel_tol=1e-9)
    assert math.isclose(site.dist.get(b_syms[0], 0.0), 0.5, rel_tol=1e-9)
    assert site.reach > EPS_REACH


def test_pointer_dead_arm_concentrates_the_distribution():
    fn = _fn(POINTER_DEAD)
    info = compute_prob_alias(fn)
    site = _load_site(fn, info)
    a_sym = next(s for s in fn.locals if s.name == "a")
    b_sym = next(s for s in fn.locals if s.name == "b")
    assert site.dist.get(a_sym, 0.0) <= 1e-9     # dead arm never assigns
    assert site.dist.get(b_sym, 0.0) >= 1.0 - 1e-9


def test_distribution_mass_never_exceeds_one():
    for src in (POINTER_DIAMOND, POINTER_DEAD, WHILE_LOOP, DIAMOND):
        fn = _fn(src)
        info = compute_prob_alias(fn)
        for site in info.sites.values():
            assert sum(site.dist.values()) <= 1.0 + 1e-6
            assert all(v >= -1e-12 for v in site.dist.values())
            assert 0.0 <= site.reach


# ---------------------------------------------------------------------------
# Static flagger: determinism + threshold monotonicity (hypothesis)
# ---------------------------------------------------------------------------

FLAG_PROGRAM = (
    "void main(int c) {"
    "  int a; int b; int x; int *p; int *q;"
    "  if (c) { p = &a; q = &b; } else { p = &b; q = &a; }"
    "  a = 1;"
    "  *p = 4;"
    "  x = a + *q;"
    "  b = x;"
    "  print(x + b);"
    "}"
)


def _snapshot(threshold):
    from repro.analysis import AliasClassifier
    from repro.ssa import build_ssa, make_static_flagger
    from repro.ssa.spec import flag_snapshot

    module = compile_source(FLAG_PROGRAM)
    fn = module.functions["main"]
    ssa = build_ssa(module, fn, AliasClassifier(module),
                    flagger=make_static_flagger(threshold))
    return flag_snapshot(ssa)


def _likely_bits(snapshot):
    return [int(line.split("likely=")[1][0])
            for line in snapshot.splitlines() if "likely=" in line]


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0,
                 allow_nan=False, allow_infinity=False))
def test_static_flagger_is_deterministic(threshold):
    assert _snapshot(threshold) == _snapshot(threshold)


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_static_flagger_is_threshold_monotone(t1, t2):
    """Raising the threshold only ever *removes* likely marks: at the
    higher threshold every likely operand was already likely at the
    lower one, pointwise (the snapshots line up positionally)."""
    lo, hi = min(t1, t2), max(t1, t2)
    lo_bits = _likely_bits(_snapshot(lo))
    hi_bits = _likely_bits(_snapshot(hi))
    assert len(lo_bits) == len(hi_bits)
    assert all(l >= h for l, h in zip(lo_bits, hi_bits))


def test_threshold_sweep_is_monotone_in_total_marks():
    counts = [sum(_likely_bits(_snapshot(t)))
              for t in (0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0)]
    assert counts == sorted(counts, reverse=True)
    assert counts[0] > counts[-1]  # the sweep actually moves flags
