"""Unit tests for natural-loop detection."""

from repro.analysis import LoopForest
from repro.lang import compile_source


def loops_of(src, fn="main"):
    module = compile_source(src)
    return LoopForest(module.functions[fn])


def test_single_loop():
    forest = loops_of(
        "void main() { int i; for (i = 0; i < 4; i = i + 1) { print(i); } }"
    )
    assert len(forest.loops) == 1
    loop = forest.loops[0]
    assert loop.header.name.startswith("for_cond")
    assert loop.depth == 1


def test_no_loops_in_straightline():
    forest = loops_of("void main() { print(1); }")
    assert forest.loops == []


def test_nested_loops_depth_and_parent():
    forest = loops_of(
        "void main() { int i; int j;"
        " for (i = 0; i < 3; i = i + 1) {"
        "   for (j = 0; j < 3; j = j + 1) { print(j); }"
        " } }"
    )
    assert len(forest.loops) == 2
    inner = min(forest.loops, key=lambda l: len(l.blocks))
    outer = max(forest.loops, key=lambda l: len(l.blocks))
    assert inner.parent is outer
    assert outer.parent is None
    assert inner.depth == 2
    assert inner.blocks < outer.blocks


def test_innermost_maps_body_to_inner_loop():
    forest = loops_of(
        "void main() { int i; int j; int s; s = 0;"
        " for (i = 0; i < 3; i = i + 1) {"
        "   for (j = 0; j < 3; j = j + 1) { s = s + j; }"
        "   s = s + i;"
        " } print(s); }"
    )
    inner = min(forest.loops, key=lambda l: len(l.blocks))
    body = next(b for b in inner.blocks if b.name.startswith("for_body")
                and b in inner.blocks and forest.innermost(b) is inner)
    assert forest.loop_depth(body) == 2
    entry = forest.fn.entry
    assert forest.innermost(entry) is None
    assert forest.loop_depth(entry) == 0


def test_while_loop_detected():
    forest = loops_of(
        "void main() { int i; i = 0; while (i < 5) { i = i + 1; } }"
    )
    assert len(forest.loops) == 1
    assert forest.loops[0].header.name.startswith("while_cond")
