"""Figure 9 fidelity: the paper's smvp uses ``double ***A`` — three
levels of indirection (``A[Anext][0][0]``).  This exercises the chained
speculative promotion the paper's Appendix B handles with chk.a: once
the row pointer ``A[Anext]`` is itself a checked temporary, the loads
through it chase the check (our ``check_source`` mechanism)."""

import pytest

from repro.core import SpecConfig
from repro.pipeline import compile_and_run, compile_program

SMVP3 = """
int seed;

int rnd(int bound) {
  seed = (seed * 1103 + 12849) % 65536;
  return seed % bound;
}

void smvp3(int nodes, double ***A, int *Acol, int *Aindex,
           double **v, double **w) {
  int i; int Anext; int Alast; int col;
  double sum0; double sum1;
  for (i = 0; i < nodes; i = i + 1) {
    Anext = Aindex[i];
    Alast = Aindex[i + 1];
    sum0 = 0.0; sum1 = 0.0;
    while (Anext < Alast) {
      col = Acol[Anext];
      sum0 = sum0 + A[Anext][0][0] * v[col][0];
      sum1 = sum1 + A[Anext][1][1] * v[col][1];
      w[col][0] = w[col][0] + A[Anext][0][0] * v[i][0];
      w[col][1] = w[col][1] + A[Anext][1][1] * v[i][1];
      Anext = Anext + 1;
    }
    w[i][0] = w[i][0] + sum0;
    w[i][1] = w[i][1] + sum1;
  }
}

void main() {
  int nodes; int deg; int guard; int nnz; int i; int e; int r;
  double ***A; int *Acol; int *Aindex; double **v; double **w;
  double *cell; double check;
  nodes = input(); deg = input(); guard = input();
  seed = 42;
  nnz = nodes * deg;
  A = alloc(nnz); Acol = alloc(nnz); Aindex = alloc(nodes + 1);
  v = alloc(nodes); w = alloc(nodes);
  for (e = 0; e < nnz; e = e + 1) {
    double **rows;
    rows = alloc(2);
    for (r = 0; r < 2; r = r + 1) {
      cell = alloc(2);
      cell[0] = 0.5 + rnd(100) * 0.01;
      cell[1] = 0.25 + rnd(100) * 0.01;
      rows[r] = cell;
    }
    A[e] = rows;
    Acol[e] = rnd(nodes);
  }
  for (i = 0; i <= nodes; i = i + 1) { Aindex[i] = i * deg; }
  for (i = 0; i < nodes; i = i + 1) {
    cell = alloc(2);
    cell[0] = 1.0 + (i % 7) * 0.125;
    cell[1] = 0.5;
    v[i] = cell;
    cell = alloc(2);
    cell[0] = 0.0; cell[1] = 0.0;
    w[i] = cell;
  }
  if (guard < 0) { smvp3(nodes, A, Acol, Aindex, w, w); }
  smvp3(nodes, A, Acol, Aindex, v, w);
  check = 0.0;
  for (i = 0; i < nodes; i = i + 1) {
    check = check + w[i][0] + w[i][1];
  }
  print(check);
}
"""

TRAIN = [6, 2, 0]
REF = [10, 3, 0]


def instr_ops(program, fn):
    return [i.op for blk in program.functions[fn].blocks
            for i in blk.instrs]


def test_three_level_smvp_correct_under_all_configs():
    for config in (SpecConfig.base(), SpecConfig.profile(),
                   SpecConfig.heuristic()):
        result = compile_and_run(SMVP3, config,
                                 train_inputs=TRAIN, ref_inputs=REF)
        assert result.output == result.expected


def test_three_level_chained_checks_emitted():
    compiled = compile_program(SMVP3, SpecConfig.profile(),
                               train_inputs=TRAIN)
    ops = instr_ops(compiled.program, "smvp3")
    assert ops.count("ld.c") >= 2   # chained promotion through levels
    assert ops.count("ld.a") >= 1


def test_three_level_speculation_reduces_loads():
    base = compile_and_run(SMVP3, SpecConfig.base(),
                           train_inputs=TRAIN, ref_inputs=REF)
    spec = compile_and_run(SMVP3, SpecConfig.profile(),
                           train_inputs=TRAIN, ref_inputs=REF)
    assert spec.stats.memory_loads < base.stats.memory_loads
    assert spec.stats.check_misses == 0  # no aliasing materializes


def test_three_level_misspeculation_recovers():
    """Force real aliasing on the ref input (w == v rows for index 0) by
    passing overlapping structures through a different guard path."""
    # Reuse the same kernel but alias v and w on the ref run only.
    src = SMVP3.replace(
        "if (guard < 0) { smvp3(nodes, A, Acol, Aindex, w, w); }\n"
        "  smvp3(nodes, A, Acol, Aindex, v, w);",
        "if (guard < 0) { smvp3(nodes, A, Acol, Aindex, w, w); }\n"
        "  if (guard > 0) { smvp3(nodes, A, Acol, Aindex, w, w); }\n"
        "  smvp3(nodes, A, Acol, Aindex, v, w);",
    )
    assert "guard > 0" in src
    result = compile_and_run(src, SpecConfig.profile(),
                             train_inputs=[6, 2, 0],
                             ref_inputs=[6, 2, 1])
    assert result.output == result.expected
    assert result.stats.check_misses > 0  # the aliased call mis-speculates
