"""CLI tests (python -m repro …)."""

import pytest

from repro.cli import build_parser, main

FIG2 = """
void f(int *p, int *q) {
  int x;
  x = *p;
  *q = 9;
  x = x + *p;
  print(x);
}
void main() {
  int a[8]; int b[8]; int c;
  c = input();
  a[0] = 5;
  if (c) { f(a, a); }
  f(a, b);
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "fig2.c"
    path.write_text(FIG2)
    return str(path)


def test_run_prints_program_output(program_file, capsys):
    rc = main(["run", program_file, "--train", "0", "--ref", "0"])
    assert rc == 0
    out = capsys.readouterr()
    assert out.out.splitlines()[0] == "10"
    assert "ld.c=1" in out.err


def test_run_base_config(program_file, capsys):
    rc = main(["run", program_file, "--config", "base",
               "--train", "0", "--ref", "0"])
    assert rc == 0
    assert "ld.c=0" in capsys.readouterr().err


def test_run_dump_ir(program_file, capsys):
    rc = main(["run", program_file, "--dump-ir",
               "--train", "0", "--ref", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[advance]" in out and "[check]" in out


def test_compare_table(program_file, capsys):
    rc = main(["compare", program_file, "--train", "0", "--ref", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "load_reduction_%" in out


def test_workloads_list(capsys):
    rc = main(["workloads", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("gzip", "equake", "mcf"):
        assert name in out


def test_workloads_single(capsys):
    rc = main(["workloads", "--name", "art"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "art" in out and "load_reduction_%" in out


def test_parser_rejects_unknown_config(program_file):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", program_file,
                                   "--config", "bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_json_output(program_file, capsys):
    import json

    rc = main(["run", program_file, "--train", "0", "--ref", "0",
               "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["output"] == ["10"]
    assert payload["stats"]["check_loads"] == 1
    assert payload["stats"]["misspeculation_ratio"] == 0.0


GUARDED = """
int lookup(int *t, int n, int k) {
  int i; int s; int v; s = 0;
  for (i = 0; i < n; i = i + 1) {
    if (k < n) { v = t[k]; s = s + v + i; }
  }
  return s;
}
void main() {
  int t[8]; int j; int acc; acc = 0;
  for (j = 0; j < 8; j = j + 1) { t[j] = j * 3; }
  for (j = 0; j < 40; j = j + 1) {
    acc = acc + lookup(t, 8, j - (j / 8) * 8);
  }
  print(acc);
}
"""


@pytest.fixture()
def guarded_file(tmp_path):
    path = tmp_path / "guarded.c"
    path.write_text(GUARDED)
    return str(path)


def test_run_with_injection_still_checks_the_oracle(guarded_file, capsys):
    rc = main(["run", guarded_file, "--config", "base",
               "--inject", "chaos", "--inject-seed", "5"])
    assert rc == 0
    out = capsys.readouterr()
    # injected deferrals were taken and recovered
    assert "deferred=" in out.err and "deferred=0" not in out.err
    assert "recovered=0" not in out.err


def test_run_injection_seed_is_reproducible(guarded_file, capsys):
    def run(seed):
        rc = main(["run", guarded_file, "--config", "base",
                   "--inject", "poison", "--inject-seed", seed])
        assert rc == 0
        err = capsys.readouterr().err
        # the counters line (SSA temp numbering in diagnostics varies
        # across in-process compiles; the injection must not)
        return [l for l in err.splitlines() if l.startswith("---")]

    assert run("3") == run("3")


def test_run_rejects_unknown_scenario(guarded_file):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", guarded_file,
                                   "--inject", "meltdown"])


def test_oracle_mismatch_exits_nonzero_with_diff(program_file, capsys,
                                                 monkeypatch):
    import repro.pipeline.driver as driver

    original = driver.run_program

    def corrupted(program, **kwargs):
        stats, output = original(program, **kwargs)
        return stats, output + ["SPURIOUS"]

    monkeypatch.setattr(driver, "run_program", corrupted)
    rc = main(["run", program_file, "--train", "0", "--ref", "0"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "diverged" in err and "SPURIOUS" in err


def test_fuel_exhaustion_exits_2_with_diagnostic(tmp_path, capsys):
    path = tmp_path / "loop.c"
    path.write_text("void main() { int i; i = 0;"
                    " while (i < 2) { i = 0; } }")
    rc = main(["run", str(path), "--no-check", "--fuel", "20000"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "fuel exhausted" in err and "main" in err
    assert "Traceback" not in err


def test_campaign_subcommand(capsys):
    rc = main(["campaign", "--workloads", "parser,gzip",
               "--scenarios", "poison,storm", "--seeds", "0,1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "8 injected runs" in out
    assert "0 mismatches" in out


def test_campaign_with_adversary(capsys):
    rc = main(["campaign", "--workloads", "parser",
               "--scenarios", "poison", "--seeds", "0",
               "--adversary", "invert"])
    assert rc == 0
    assert "0 mismatches" in capsys.readouterr().out
