"""CLI tests (python -m repro …)."""

import pytest

from repro.cli import build_parser, main

FIG2 = """
void f(int *p, int *q) {
  int x;
  x = *p;
  *q = 9;
  x = x + *p;
  print(x);
}
void main() {
  int a[8]; int b[8]; int c;
  c = input();
  a[0] = 5;
  if (c) { f(a, a); }
  f(a, b);
}
"""


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "fig2.c"
    path.write_text(FIG2)
    return str(path)


def test_run_prints_program_output(program_file, capsys):
    rc = main(["run", program_file, "--train", "0", "--ref", "0"])
    assert rc == 0
    out = capsys.readouterr()
    assert out.out.splitlines()[0] == "10"
    assert "ld.c=1" in out.err


def test_run_base_config(program_file, capsys):
    rc = main(["run", program_file, "--config", "base",
               "--train", "0", "--ref", "0"])
    assert rc == 0
    assert "ld.c=0" in capsys.readouterr().err


def test_run_dump_ir(program_file, capsys):
    rc = main(["run", program_file, "--dump-ir",
               "--train", "0", "--ref", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "[advance]" in out and "[check]" in out


def test_compare_table(program_file, capsys):
    rc = main(["compare", program_file, "--train", "0", "--ref", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "load_reduction_%" in out


def test_workloads_list(capsys):
    rc = main(["workloads", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("gzip", "equake", "mcf"):
        assert name in out


def test_workloads_single(capsys):
    rc = main(["workloads", "--name", "art"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "art" in out and "load_reduction_%" in out


def test_parser_rejects_unknown_config(program_file):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", program_file,
                                   "--config", "bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_json_output(program_file, capsys):
    import json

    rc = main(["run", program_file, "--train", "0", "--ref", "0",
               "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["output"] == ["10"]
    assert payload["stats"]["check_loads"] == 1
    assert payload["stats"]["misspeculation_ratio"] == 0.0
