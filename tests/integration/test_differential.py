"""Differential / property-based integration tests.

The central correctness claim of the paper's framework is that
ALAT-checked data speculation never changes program semantics.  These
tests drive that claim with randomly generated programs: for every safe
configuration the simulated optimized binary must print exactly what the
reference interpreter prints for the original program.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SpecConfig
from repro.lang import compile_source
from repro.pipeline import compile_and_run
from repro.profiling import run_module
from repro.workloads.fuzz import random_program

CONFIGS = [
    SpecConfig.unoptimized(),
    SpecConfig.base(),
    SpecConfig.base().but(control_speculation=False),
    SpecConfig.profile(),
    SpecConfig.heuristic(),
    SpecConfig.profile().but(store_forwarding=False),
    SpecConfig.heuristic().but(flow_refine=False),
]


@pytest.mark.parametrize("seed", range(25))
def test_random_program_all_configs(seed):
    source = random_program(seed)
    module = compile_source(source)
    expected = run_module(module, fuel=2_000_000)
    for config in CONFIGS:
        result = compile_and_run(source, config, fuel=2_000_000)
        assert result.output == expected, (
            f"seed={seed} config={config.mode} diverged\n{source}"
        )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1000, max_value=100_000))
def test_random_program_speculative_matches_interpreter(seed):
    """Hypothesis-driven: profile-speculative compilation preserves
    semantics on arbitrary generated programs."""
    source = random_program(seed, max_stmts=10)
    result = compile_and_run(source, SpecConfig.profile(),
                             fuel=2_000_000)
    assert result.output == result.expected


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_program_ssa_invariants(seed):
    """Hypothesis-driven: HSSA construction satisfies the SSA invariants
    (single def, uses dominated by defs) on arbitrary programs."""
    from repro.analysis import AliasClassifier
    from repro.ssa import build_ssa, verify_ssa

    source = random_program(seed, max_stmts=10)
    module = compile_source(source)
    classifier = AliasClassifier(module)
    for fn in module.functions.values():
        verify_ssa(build_ssa(module, fn, classifier))


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_random_program_spec_flags_degenerate_when_off(seed):
    """Property: the OFF flagging leaves every µ/χ binding — the
    speculative SSA form degenerates to classical HSSA."""
    from repro.analysis import AliasClassifier
    from repro.ssa import (SpecMode, build_ssa, flagger_for, iter_loads)

    source = random_program(seed, max_stmts=8)
    module = compile_source(source)
    classifier = AliasClassifier(module)
    for fn in module.functions.values():
        ssa = build_ssa(module, fn, classifier,
                        flagger=flagger_for(SpecMode.OFF))
        for block in ssa.blocks:
            for stmt in block.stmts:
                assert all(chi.likely for chi in stmt.chis)
                assert all(mu.likely for mu in getattr(stmt, "mus", ()))
        for load in iter_loads(ssa):
            assert all(mu.likely for mu in load.mus)


def test_generator_is_deterministic():
    assert random_program(7) == random_program(7)
    assert random_program(7) != random_program(8)


def test_generated_programs_parse_and_run():
    for seed in range(40):
        module = compile_source(random_program(seed))
        run_module(module, fuel=2_000_000)
