"""Integration fidelity tests for the paper's worked IR examples.

Each test builds the situation from one of the paper's figures through
the *full* pipeline and asserts the transformation the figure shows.
(The SSA-level flag tests for Example 1 live in
tests/ssa/test_spec_flags.py; the step-level Figure 5/6/7 behaviours in
tests/core/test_speculative_pre.py.)
"""

import pytest

from repro.core import SpecConfig
from repro.pipeline import compile_and_run, compile_program
from repro.target import LOAD_OPS


def instr_ops(program, fn_name):
    return [i.op for blk in program.functions[fn_name].blocks
            for i in blk.instrs]


def test_fig1_control_speculation_hoists_load_as_speculative():
    """Figure 1: a load executed only under a hot condition is hoisted
    above the branch as a control-speculative (non-faulting) load."""
    src = (
        "int work(int *y, int n) {"
        "  int i; int x; int s; s = 0;"
        "  for (i = 0; i < n; i = i + 1) {"
        "    if (i < n) {"            # always true: hot branch
        "      x = y[0];"             # the Figure-1 load
        "      s = s + x;"
        "    }"
        "  }"
        "  return s;"
        "}"
        "void main() { int a[4]; a[0] = 3; print(work(a, 5)); }"
    )
    compiled = compile_program(src, SpecConfig.base())
    ops = instr_ops(compiled.program, "work")
    # the hoisted load materializes as ld.s (non-faulting, like ld.s +
    # chk.s in the figure) somewhere outside the guarded block
    assert "ld.s" in ops or "ld.a" in ops
    result = compile_and_run(src, SpecConfig.base())
    assert result.output == result.expected == ["15"]


def test_fig2_instruction_sequence():
    """Figure 2: ld.a replaces the first load, ld.c the second."""
    src = (
        "void f(int *p, int *q) { int x; x = *p; *q = 9; x = x + *p;"
        " print(x); }"
        "void main() { int a[8]; int b[8]; int c; c = input();"
        " a[0] = 5; if (c) { f(a, a); } f(a, b); }"
    )
    compiled = compile_program(src, SpecConfig.profile(),
                               train_inputs=[0])
    ops = instr_ops(compiled.program, "f")
    assert ops.count("ld.a") == 1
    assert ops.count("ld.c") == 1
    assert ops.count("ld") == 0  # both *p references are covered
    # ld.a precedes the store, ld.c follows it
    assert ops.index("ld.a") < ops.index("st") < ops.index("ld.c")


def test_fig8_advance_flag_reaches_all_defs_of_merged_value():
    """Figure 8 / Appendix B: when a speculative check's value can come
    from either side of a merge, *both* definitions get the advanced-load
    flag (Set_speculative_load_flag walks the Φ)."""
    src = (
        "void f(int *p, int *q, int c) {"
        "  int x;"
        "  if (c) { x = *p; } else { x = *p + 1; }"
        "  *q = 5;"
        "  x = x + *p;"      # check; value may come from either branch
        "  print(x);"
        "}"
        "void main() { int a[8]; int b[8]; int c; c = input();"
        " a[0] = 2; if (c < 0) { f(a, a, c); }"
        " f(a, b, 0); f(a, b, 1); }"
    )
    compiled = compile_program(src, SpecConfig.profile(),
                               train_inputs=[0])
    ops = instr_ops(compiled.program, "f")
    assert ops.count("ld.a") == 2   # one per branch (Φ operands)
    assert ops.count("ld.c") >= 1
    result = compile_and_run(src, SpecConfig.profile(),
                             train_inputs=[0], ref_inputs=[0])
    assert result.output == result.expected


def test_example1_store_to_load_forwarding_shape():
    """Example 1's conclusion: the definition *p = 4 reaches the use of
    *p despite the intervening direct defs — realized here as
    store-forwarding (no load instruction remains for the use)."""
    src = (
        "void f(int *p) {"
        "  int a; int x;"
        "  a = 1;"
        "  *p = 4;"
        "  x = a;"
        "  a = 4;"
        "  x = x + *p;"   # the paper: s1 highly likely reaches s8
        "  print(x + a);"
        "}"
        "void main() { int b[4]; f(b); }"
    )
    compiled = compile_program(src, SpecConfig.profile())
    ops = instr_ops(compiled.program, "f")
    loads = [op for op in ops if op in LOAD_OPS and op != "ld.c"]
    # the *p use is satisfied from the stored register value
    assert ops.count("ld") == 0
    result = compile_and_run(src, SpecConfig.profile())
    assert result.output == result.expected == ["9"]


def test_smvp_kernel_text_faithful_to_fig9():
    """Figure 9's smvp shape (guard: the workload keeps the paper's
    structure — sums plus w accumulation with A/v reloads)."""
    from repro.workloads import get_workload

    src = get_workload("equake").source
    assert "void smvp(" in src
    assert "sum0" in src and "sum1" in src and "sum2" in src
    assert "w[col * 3 + 0]" in src
    assert "Anext = Anext + 1" in src
