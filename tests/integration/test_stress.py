"""Stress tests: larger programs and a wider fuzz corpus.

These keep the pipeline honest at sizes beyond the unit tests — deeper
nesting, more functions, bigger loops — while staying fast enough for
the default test run.
"""

import pytest

from repro.core import SpecConfig
from repro.pipeline import compile_and_run
from repro.workloads.fuzz import random_program


def test_wide_fuzz_corpus_profile_config():
    """50 extra seeds under the headline configuration."""
    for seed in range(100, 150):
        result = compile_and_run(random_program(seed, max_stmts=8),
                                 SpecConfig.profile(), fuel=2_000_000)
        assert result.output == result.expected, seed


def test_larger_generated_programs():
    for seed in (7, 23, 77):
        src = random_program(seed, max_stmts=40)
        result = compile_and_run(src, SpecConfig.profile(),
                                 fuel=5_000_000)
        assert result.output == result.expected, seed


def test_deep_call_chain():
    layers = 12
    parts = ["int f0(int x) { return x + 1; }"]
    for i in range(1, layers):
        parts.append(
            f"int f{i}(int x) {{ return f{i - 1}(x) + {i}; }}"
        )
    parts.append(
        f"void main() {{ print(f{layers - 1}(5)); }}"
    )
    src = "\n".join(parts)
    result = compile_and_run(src, SpecConfig.base())
    assert result.output == result.expected


def test_many_expression_classes():
    """Hundreds of distinct PRE candidates in one function."""
    lines = ["void main() {", "  int s;", "  s = 0;"]
    for i in range(60):
        lines.append(f"  int a{i};")
        lines.append(f"  a{i} = {i} + 1;")
        lines.append(f"  s = s + a{i} * 3 + a{i} * 3;")
    lines.append("  print(s);")
    lines.append("}")
    result = compile_and_run("\n".join(lines), SpecConfig.base())
    assert result.output == result.expected


def test_deeply_nested_loops():
    src = (
        "void main() { int a; int b; int c; int d; int s; s = 0;"
        " for (a = 0; a < 3; a = a + 1) {"
        "  for (b = 0; b < 3; b = b + 1) {"
        "   for (c = 0; c < 3; c = c + 1) {"
        "    for (d = 0; d < 3; d = d + 1) {"
        "     s = s + a * 27 + b * 9 + c * 3 + d;"
        "    } } } }"
        " print(s); }"
    )
    for config in (SpecConfig.base(), SpecConfig.profile()):
        result = compile_and_run(src, config)
        assert result.output == result.expected


def test_big_mcf_instance():
    """A 4x-scaled mcf run (one config) to confirm the pipeline and the
    simulator scale gracefully."""
    from repro.workloads import get_workload
    from repro.workloads.runner import run_workload
    from dataclasses import replace

    mcf = get_workload("mcf")
    big = replace(mcf, ref_inputs=[8192, 6000, 2, 0])
    result = run_workload(big, SpecConfig.profile())
    assert result.output == result.expected
    assert result.stats.memory_loads > 100_000
