"""Workload integration tests: every workload must run correctly under
every speculation configuration (the output is checked against the
reference interpreter inside ``run_workload``)."""

import pytest

from repro.core import SpecConfig
from repro.workloads import all_workloads, get_workload, run_workload

WORKLOAD_NAMES = [w.name for w in all_workloads()]

CONFIGS = {
    "base": SpecConfig.base(),
    "profile": SpecConfig.profile(),
    "heuristic": SpecConfig.heuristic(),
}


def test_registry_has_eight_workloads():
    assert len(WORKLOAD_NAMES) == 8
    assert set(WORKLOAD_NAMES) == {
        "gzip", "vpr", "mcf", "bzip2", "twolf", "art", "equake", "ammp"
    }


def test_workload_metadata_complete():
    for w in all_workloads():
        assert w.spec_name
        assert w.description
        assert w.expectation
        assert w.train_inputs and w.ref_inputs


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_workload_correct_under_config(name, config_name):
    workload = get_workload(name)
    result = run_workload(workload, CONFIGS[config_name])
    assert result.output == result.expected
    assert result.stats.cycles > 0


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_unoptimized_matches_reference(name):
    workload = get_workload(name)
    result = run_workload(workload, SpecConfig.unoptimized())
    assert result.output == result.expected


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_profile_never_loads_more_than_base(name):
    """Speculation may only remove memory-accessing loads (up to check
    misses, which are bounded by check count)."""
    workload = get_workload(name)
    base = run_workload(workload, SpecConfig.base())
    spec = run_workload(workload, SpecConfig.profile())
    assert spec.stats.memory_loads <= base.stats.memory_loads \
        + spec.stats.check_misses


def test_aggressive_correct_when_aliasing_never_happens():
    """equake's aliasing never materializes, so even the unsafe
    upper-bound configuration computes the right answer on this input."""
    workload = get_workload("equake")
    result = run_workload(workload, SpecConfig.aggressive())
    assert result.output == result.expected
