"""Golden-output regression pins for every workload.

The reference interpreter defines each workload's semantics; pinning the
ref-input outputs catches accidental semantic drift in the frontend,
interpreter or workload sources.  (If a workload is intentionally
changed, update the pin — the correctness tests will already have
validated the new behaviour against the interpreter.)
"""

import pytest

from repro.lang import compile_source
from repro.profiling import run_module
from repro.workloads import all_workloads, get_workload, recovery_workloads

GOLDEN = {
    "gzip": ["6103"],
    "vpr": ["142295"],
    "mcf": ["-20952"],
    "bzip2": ["589988"],
    "twolf": ["1245220"],
    "art": ["40.7595"],
    "equake": ["552.47"],
    "ammp": ["0.1206"],
    "parser": ["140135"],
    "crafty": ["191664"],
}


def compute(name):
    w = get_workload(name)
    return run_module(compile_source(w.source), inputs=w.ref_inputs)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_ref_output(name):
    assert compute(name) == GOLDEN[name]


def test_golden_covers_all_workloads():
    assert set(GOLDEN) == {
        w.name for w in all_workloads() + recovery_workloads()
    }
