"""Tests for the random program generator itself."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import compile_source
from repro.profiling import run_module
from repro.workloads.fuzz import ProgramGenerator, random_program


def test_deterministic_per_seed():
    assert random_program(123) == random_program(123)


def test_seeds_produce_distinct_programs():
    programs = {random_program(seed) for seed in range(20)}
    assert len(programs) >= 18  # near-total diversity


def test_every_program_has_observable_output():
    for seed in range(20):
        src = random_program(seed)
        assert "print(" in src


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000_000))
def test_generated_programs_always_compile_and_terminate(seed):
    module = compile_source(random_program(seed, max_stmts=8))
    run_module(module, fuel=2_000_000)


def test_max_stmts_bounds_program_size():
    small = random_program(5, max_stmts=4)
    large = random_program(5, max_stmts=40)
    assert len(large) >= len(small)


def test_generator_uses_pointer_aliasing_constructs():
    hits = 0
    for seed in range(30):
        src = random_program(seed)
        if "alloc(" in src or "*v" in src:
            hits += 1
    assert hits >= 15  # the alias fodder appears frequently


def test_fresh_names_never_collide():
    gen = ProgramGenerator(1)
    names = [gen.fresh() for _ in range(100)]
    assert len(set(names)) == 100
