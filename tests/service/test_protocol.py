"""The wire schema, content keys and the config registry
(docs/service.md)."""

import pytest

from repro.core import SpecConfig
from repro.pipeline import content_key, shard_of
from repro.service import protocol
from repro.service.registry import resolve_config


def _run_req(**over):
    req = {"id": 1, "op": "run", "source": "void main() { print(1); }",
           "config": "profile", "train": [1], "ref": [2]}
    req.update(over)
    return req


class TestValidateRequest:
    def test_accepts_minimal_ops(self):
        for op in ("ping", "stats"):
            protocol.validate_request({"id": "a", "op": op})

    def test_accepts_compile_run_campaign(self):
        protocol.validate_request(_run_req())
        protocol.validate_request({"id": 2, "op": "compile",
                                   "source": "x", "train": []})
        protocol.validate_request({"id": 3, "op": "campaign",
                                   "workloads": ["parser"],
                                   "scenarios": ["poison"], "seeds": [0]})

    @pytest.mark.parametrize("bad", [
        "not a dict",
        {"op": "run"},                                  # no id
        {"id": 1, "op": "explode"},                     # unknown op
        {"id": 1, "op": "run"},                         # no source
        {"id": 1, "op": "run", "source": 7},            # source not str
        _run_req(train="1,2"),                          # train not list
        _run_req(train=[True]),                         # bool is not num
        _run_req(fuel=-5),                              # bad fuel
        _run_req(timeout_ms=0),                         # bad timeout
        {"id": 1, "op": "campaign", "scenarios": []},   # empty scenarios
        {"id": 1, "op": "campaign", "seeds": ["x"]},    # bad seeds
    ])
    def test_rejects(self, bad):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_request(bad)

    def test_error_carries_salvaged_id(self):
        with pytest.raises(protocol.ProtocolError) as exc:
            protocol.validate_request({"id": "r9", "op": "explode"})
        assert exc.value.request_id == "r9"


class TestValidateResponse:
    def test_ok_and_error_shapes(self):
        protocol.validate_response(protocol.ok_response(1, "ping", {}))
        protocol.validate_response(
            protocol.error_response(1, "timeout", "too slow"))

    def test_overload_is_a_known_type_with_retry_hint(self):
        resp = protocol.error_response(1, "overload", "queue full",
                                       retry_after_ms=150)
        protocol.validate_response(resp)
        assert resp["error"]["retry_after_ms"] == 150

    @pytest.mark.parametrize("bad", [
        {"ok": True},                                   # no id
        {"id": 1, "ok": True},                          # no result
        {"id": 1, "ok": False},                         # no error
        {"id": 1, "ok": False,
         "error": {"type": "novel", "message": "x"}},   # unknown type
        {"id": 1, "ok": False, "error": {"type": "timeout"}},  # no msg
        {"id": 1, "ok": False,
         "error": {"type": "overload", "message": "x",
                   "retry_after_ms": -5}},              # negative hint
        {"id": 1, "ok": False,
         "error": {"type": "overload", "message": "x",
                   "retry_after_ms": True}},            # bool hint
    ])
    def test_rejects(self, bad):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_response(bad)

    def test_error_types_is_a_closed_set(self):
        """Both sides validate against the same tuple, so an unlisted
        type cannot cross the wire in either direction."""
        assert "overload" in protocol.ERROR_TYPES
        bad = {"id": 1, "ok": False,
               "error": {"type": "made-up", "message": "x"}}
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_response(bad)  # client-side reject
        with pytest.raises(AssertionError):
            protocol.error_response(1, "made-up", "x")  # daemon-side


class TestKeys:
    def test_request_key_ignores_id_and_timeout(self):
        a = protocol.request_key(_run_req(id=1, timeout_ms=50))
        b = protocol.request_key(_run_req(id="other"))
        assert a == b

    def test_request_key_separates_ops_and_inputs(self):
        run = protocol.request_key(_run_req())
        compile_ = protocol.request_key(
            {"id": 1, "op": "compile",
             "source": "void main() { print(1); }",
             "config": "profile", "train": [1]})
        other_ref = protocol.request_key(_run_req(ref=[3]))
        other_src = protocol.request_key(_run_req(source="void main(){}"))
        assert len({run, compile_, other_ref, other_src}) == 4

    def test_non_work_ops_have_no_key(self):
        assert protocol.request_key({"id": 1, "op": "ping"}) is None

    def test_content_key_is_portable_and_shardable(self):
        key = content_key("src", SpecConfig.profile(), [1], 1000, True)
        assert key == content_key("src", SpecConfig.profile(), [1],
                                  1000, True)
        assert key != content_key("src", SpecConfig.base(), [1],
                                  1000, True)
        shards = {shard_of(key, n) for n in (1, 2, 7)}
        assert all(0 <= s for s in shards)
        assert shard_of(key, 1) == 0
        with pytest.raises(ValueError):
            shard_of(key, 0)

    def test_framing_round_trip(self):
        req = _run_req()
        assert protocol.decode_line(protocol.encode(req)) == req
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b"{nope\n")


class TestRegistry:
    def test_base_names(self):
        assert repr(resolve_config("profile")) \
            == repr(SpecConfig.profile())
        assert repr(resolve_config("base")) == repr(SpecConfig.base())

    def test_composition(self):
        config = resolve_config("profile+superblock+noedge")
        assert config.scheduler == "superblock"
        assert config.use_edge_profile is False

    @pytest.mark.parametrize("bad", ["", "+", "nonsense",
                                     "profile+nonsense"])
    def test_unknown_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            resolve_config(bad)

    def test_registration(self):
        from repro.service.registry import (CONFIG_FACTORIES, MODIFIERS,
                                            register_config,
                                            register_modifier)

        register_config("_test", SpecConfig.base)
        register_modifier("_mod", lambda c: c.but(dce=False))
        try:
            assert resolve_config("_test+_mod").dce is False
        finally:
            del CONFIG_FACTORIES["_test"]
            del MODIFIERS["_mod"]
