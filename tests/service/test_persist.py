"""On-disk response persistence: atomic writes, validation-before-
reuse, corrupt/stale accounting, and warm restarts (docs/service.md)."""

import json
import os

import pytest

from repro.service import CacheStore, DaemonThread, ServiceClient, protocol
from repro.service.persist import (MAGIC, VERSION, CacheStoreError,
                                   validate_entry)

SRC = "void main() { int x; x = input(); print(x + 7); }"


def _response(rid=0):
    return protocol.ok_response(rid, "run", {"output": ["12"]},
                                cached=False)


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

class TestCacheStore:
    def test_put_get_round_trip_strips_the_id(self, tmp_path):
        store = CacheStore(str(tmp_path))
        assert store.put("k1", "run", _response(rid=99))
        got = store.get("k1")
        assert got is not None
        assert "id" not in got
        assert got["result"] == {"output": ["12"]}
        assert store.hits == 1 and store.stores == 1

    def test_miss_is_counted_not_raised(self, tmp_path):
        store = CacheStore(str(tmp_path))
        assert store.get("absent") is None
        assert store.misses == 1

    def test_corrupt_file_is_skipped_and_counted(self, tmp_path):
        store = CacheStore(str(tmp_path))
        (tmp_path / "bad.json").write_text("{truncated")
        assert store.get("bad") is None
        assert store.corrupt == 1

    def test_stale_version_is_skipped_and_counted(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.put("k1", "run", _response())
        path = tmp_path / "k1.json"
        entry = json.loads(path.read_text())
        entry["version"] = VERSION + 1
        path.write_text(json.dumps(entry))
        assert store.get("k1") is None
        assert store.stale == 1

    def test_renamed_entry_fails_key_revalidation(self, tmp_path):
        """A file renamed onto another key must not be trusted: the
        stored content_key pins the entry."""
        store = CacheStore(str(tmp_path))
        store.put("k1", "run", _response())
        os.rename(tmp_path / "k1.json", tmp_path / "k2.json")
        assert store.get("k2") is None
        assert store.corrupt == 1

    def test_invalid_stored_response_is_rejected(self, tmp_path):
        store = CacheStore(str(tmp_path))
        entry = {"magic": MAGIC, "version": VERSION, "content_key": "k1",
                 "op": "run", "response": {"ok": True}}  # no result
        (tmp_path / "k1.json").write_text(json.dumps(entry))
        assert store.get("k1") is None
        assert store.corrupt == 1

    def test_write_leaves_no_temp_files(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.put("k1", "run", _response())
        names = os.listdir(tmp_path)
        assert names == ["k1.json"]
        assert len(store) == 1

    def test_stats_shape(self, tmp_path):
        store = CacheStore(str(tmp_path))
        stats = store.stats()
        for field in ("root", "entries", "hits", "misses", "stores",
                      "corrupt", "stale", "write_errors"):
            assert field in stats


class TestValidateEntry:
    def _entry(self, **over):
        entry = {"magic": MAGIC, "version": VERSION, "content_key": "k1",
                 "op": "run", "response": {"ok": True, "op": "run",
                                           "result": {}}}
        entry.update(over)
        return entry

    def test_accepts_a_well_formed_entry(self):
        validate_entry(self._entry(), key="k1")

    @pytest.mark.parametrize("over", [
        {"magic": "other"},
        {"version": 0},
        {"content_key": ""},
        {"op": "ping"},
        {"response": {"ok": False}},
        {"response": "not a dict"},
    ])
    def test_rejects_malformed_entries(self, over):
        with pytest.raises(CacheStoreError):
            validate_entry(self._entry(**over))

    def test_rejects_key_mismatch(self):
        with pytest.raises(CacheStoreError):
            validate_entry(self._entry(), key="other")


# ---------------------------------------------------------------------------
# warm restarts, in-process (workers=0)
# ---------------------------------------------------------------------------

def test_daemon_restart_answers_from_disk(tmp_path):
    cache_dir = str(tmp_path / "persist")
    req = dict(op="run", source=SRC, config="profile", train=[1], ref=[5])
    with DaemonThread(workers=0, cache_dir=cache_dir) as handle:
        with ServiceClient(handle.host, handle.port,
                           timeout=30.0) as client:
            first = client.request(dict(req))
            assert first["result"]["output"] == ["12"]
            assert not first.get("persisted")
            stats = client.stats()
            assert stats["persist_stores"] >= 1
    assert os.listdir(cache_dir), "the response must be on disk"
    # a fresh daemon generation: the same key answers from disk
    with DaemonThread(workers=0, cache_dir=cache_dir) as handle:
        with ServiceClient(handle.host, handle.port,
                           timeout=30.0) as client:
            again = client.request(dict(req))
            assert again["result"]["output"] == ["12"]
            assert again["persisted"] is True
            assert again["cached"] is True
            assert client.stats()["persist_hits"] >= 1


def test_restart_without_cache_dir_stays_cold(tmp_path):
    # in-process mode shares the module-global store; a daemon without
    # cache_dir must disable it (no stale store from a previous test)
    req = dict(op="run", source=SRC, config="profile", train=[2], ref=[6])
    with DaemonThread(workers=0) as handle:
        with ServiceClient(handle.host, handle.port,
                           timeout=30.0) as client:
            resp = client.request(dict(req))
            assert not resp.get("persisted")
            stats = client.stats()
            assert stats["persist_stores"] == 0


def test_corrupt_entry_falls_back_to_compile(tmp_path):
    cache_dir = tmp_path / "persist"
    req = dict(op="run", source=SRC, config="profile", train=[1], ref=[5])
    with DaemonThread(workers=0, cache_dir=str(cache_dir)) as handle:
        with ServiceClient(handle.host, handle.port,
                           timeout=30.0) as client:
            client.request(dict(req))
    (entry,) = cache_dir.glob("*.json")
    entry.write_text("{torn write")
    with DaemonThread(workers=0, cache_dir=str(cache_dir)) as handle:
        with ServiceClient(handle.host, handle.port,
                           timeout=30.0) as client:
            resp = client.request(dict(req))
            assert resp["result"]["output"] == ["12"]
            assert not resp.get("persisted"), \
                "a corrupt entry must be recompiled, not trusted"


# ---------------------------------------------------------------------------
# warm restarts, worker subprocesses
# ---------------------------------------------------------------------------

def test_worker_pool_restart_answers_from_disk(tmp_path):
    cache_dir = str(tmp_path / "persist")
    req = dict(op="run", source=SRC, config="profile", train=[1], ref=[5])
    with DaemonThread(workers=1, cache_dir=cache_dir) as handle:
        with ServiceClient(handle.host, handle.port,
                           timeout=120.0) as client:
            first = client.request(dict(req))
            assert first["result"]["output"] == ["12"]
            assert not first.get("persisted")
    assert os.listdir(cache_dir)
    with DaemonThread(workers=1, cache_dir=cache_dir) as handle:
        with ServiceClient(handle.host, handle.port,
                           timeout=120.0) as client:
            again = client.request(dict(req))
            assert again["persisted"] is True
            assert again["cached"] is True
            stats = client.stats()
            assert stats["persist_hits"] >= 1
