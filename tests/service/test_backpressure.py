"""Backpressure: bounded queues shed with typed ``overload`` errors
carrying ``retry_after_ms``, dedup waiters are never shed, and shed
requests succeed through client backoff (docs/service.md)."""

import threading
import time

import pytest

from repro.service import (DaemonThread, RetryPolicy, ServiceClient,
                           ServiceError, protocol)
from repro.service import worker as worker_mod

SRC = "void main() { int x; x = input(); print(x + 7); }"


def _work(n=0, **over):
    req = {"op": "run", "source": SRC + f"// {n}", "config": "profile",
           "train": [1], "ref": [5]}
    req.update(over)
    return req


def _gated_handler(gate, calls=None):
    """A worker seam that parks work requests on ``gate``."""
    def handler(req):
        if req.get("op") == worker_mod.STATS_OP:
            return protocol.ok_response(req.get("id"),
                                        worker_mod.STATS_OP, {})
        if calls is not None:
            calls.append(req["op"])
        gate.wait(10.0)
        return protocol.ok_response(req["id"], req["op"],
                                    {"output": ["held"]})
    return handler


@pytest.fixture
def bounded():
    with DaemonThread(workers=0, max_inflight=1) as handle:
        yield handle


def _client(handle, **kwargs):
    kwargs.setdefault("timeout", 30.0)
    return ServiceClient(host=handle.host, port=handle.port, **kwargs)


def test_overload_is_typed_and_carries_retry_hint(bounded, monkeypatch):
    gate = threading.Event()
    monkeypatch.setattr(worker_mod, "handle_request",
                        _gated_handler(gate))
    try:
        with _client(bounded) as blocker, _client(bounded) as client:
            blocker._send(dict(_work(0), id=1))
            deadline = time.monotonic() + 10.0
            while not bounded.daemon._inflight:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            with pytest.raises(ServiceError) as exc:
                client.request(_work(1))
            assert exc.value.type == "overload"
            assert exc.value.retry_after_ms is not None
            assert exc.value.retry_after_ms >= 0
            stats = client.stats()
            assert stats["shed"] == 1
            assert stats["max_inflight"] == 1
            assert stats["queue_depth_peak"] >= 1
    finally:
        gate.set()


def test_dedup_waiters_are_never_shed(bounded, monkeypatch):
    """An identical key joining in-flight work adds no work, so it must
    be admitted even at the bound."""
    gate = threading.Event()
    calls = []
    monkeypatch.setattr(worker_mod, "handle_request",
                        _gated_handler(gate, calls))
    with _client(bounded) as client:
        batch = [dict(_work(0)) for _ in range(4)]
        iterator = client.submit(batch)
        threading.Timer(0.4, gate.set).start()
        responses = list(iterator)
    assert len(responses) == 4
    assert all(r["ok"] for r in responses)
    assert len(calls) == 1
    assert sum(1 for r in responses if r["dedup"]) == 3
    with _client(bounded) as client:
        assert client.stats()["shed"] == 0


def test_shed_requests_succeed_through_retry_backoff(bounded,
                                                     monkeypatch):
    gate = threading.Event()
    monkeypatch.setattr(worker_mod, "handle_request",
                        _gated_handler(gate))
    policy = RetryPolicy(retries=30, retry_types=("overload",),
                         base_ms=20.0, max_ms=200.0, seed=0)
    with _client(bounded) as blocker, \
            _client(bounded, retry=policy) as client:
        blocker._send(dict(_work(0), id=1))
        deadline = time.monotonic() + 10.0
        while not bounded.daemon._inflight:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        # release the blocker shortly: the retried request must land
        threading.Timer(0.4, gate.set).start()
        resp = client.request(_work(1))
        assert resp["ok"] and resp["result"]["output"] == ["held"]
    with _client(bounded) as client:
        stats = client.stats()
        assert stats["shed"] >= 1, "the first attempt must have shed"


def test_max_queue_depth_bounds_the_in_process_queue(monkeypatch):
    gate = threading.Event()
    monkeypatch.setattr(worker_mod, "handle_request",
                        _gated_handler(gate))
    try:
        with DaemonThread(workers=0, max_queue_depth=2) as handle:
            with _client(handle) as feeder, _client(handle) as client:
                # two *distinct* keys occupy the queue (depth 2)
                feeder._send([dict(_work(i), id=i + 1)
                              for i in range(2)])
                deadline = time.monotonic() + 10.0
                while len(handle.daemon._inflight) < 2:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                with pytest.raises(ServiceError) as exc:
                    client.request(_work(9))
                assert exc.value.type == "overload"
                assert "max_queue_depth" in exc.value.message
    finally:
        gate.set()


def test_unbounded_daemon_never_sheds(monkeypatch):
    gate = threading.Event()
    monkeypatch.setattr(worker_mod, "handle_request",
                        _gated_handler(gate))
    with DaemonThread(workers=0) as handle:
        with _client(handle) as client:
            batch = [dict(_work(i)) for i in range(6)]
            iterator = client.submit(batch)
            threading.Timer(0.4, gate.set).start()
            responses = list(iterator)
        assert all(r["ok"] for r in responses)
        with _client(handle) as client:
            stats = client.stats()
            assert stats["shed"] == 0
            assert stats["max_inflight"] == 0  # 0 = unbounded
            assert stats["queue_depth_peak"] >= 1


def test_daemon_rejects_negative_bounds():
    from repro.service.daemon import Daemon

    with pytest.raises(ValueError):
        Daemon(max_queue_depth=-1)
    with pytest.raises(ValueError):
        Daemon(max_inflight=-1)


def test_retry_hint_grows_with_pressure():
    from repro.service.daemon import Daemon

    daemon = Daemon(max_inflight=1, retry_hint_ms=50.0)
    calm = daemon._retry_hint(None)
    daemon._depth[None] = 7
    assert daemon._retry_hint(None) > calm
    assert daemon._retry_hint(None) <= 5000
