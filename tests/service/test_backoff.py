"""Backoff schedules, retry policy, circuit breaker, readiness probe
(docs/service.md, "Overload & recovery")."""

import pytest

from repro.service.backoff import (Backoff, CircuitBreaker, RetryPolicy,
                                   wait_ready)


class TestBackoff:
    def test_same_seed_replays_the_same_schedule(self):
        a = Backoff(seed=7)
        b = Backoff(seed=7)
        assert [a.delay_ms(i) for i in range(6)] \
            == [b.delay_ms(i) for i in range(6)]

    def test_different_seeds_decorrelate(self):
        a = Backoff(seed=1)
        b = Backoff(seed=2)
        assert [a.delay_ms(i) for i in range(6)] \
            != [b.delay_ms(i) for i in range(6)]

    def test_reset_rewinds_the_jitter_stream(self):
        bo = Backoff(seed=3)
        first = [bo.delay_ms(i) for i in range(4)]
        bo.reset()
        assert [bo.delay_ms(i) for i in range(4)] == first

    def test_exponential_growth_within_jitter_envelope(self):
        bo = Backoff(base_ms=100.0, factor=2.0, max_ms=100_000.0,
                     jitter=0.25, seed=0)
        for attempt in range(5):
            raw = 100.0 * 2.0 ** attempt
            delay = bo.delay_ms(attempt)
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_cap_applies_before_jitter(self):
        bo = Backoff(base_ms=100.0, factor=10.0, max_ms=500.0,
                     jitter=0.5, seed=0)
        assert bo.delay_ms(9) <= 500.0 * 1.5

    def test_retry_after_hint_is_a_floor(self):
        bo = Backoff(base_ms=1.0, jitter=0.0, seed=0)
        assert bo.delay_ms(0, retry_after_ms=250.0) == 250.0
        # a hint below the schedule does not shrink it
        assert bo.delay_ms(10, retry_after_ms=1.0) > 1.0

    def test_zero_jitter_is_exact(self):
        bo = Backoff(base_ms=10.0, factor=2.0, max_ms=1000.0,
                     jitter=0.0, seed=0)
        assert [bo.delay_ms(i) for i in range(4)] \
            == [10.0, 20.0, 40.0, 80.0]

    @pytest.mark.parametrize("kwargs", [
        {"base_ms": -1.0}, {"factor": 0.5}, {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            Backoff(**kwargs)


class TestRetryPolicy:
    def test_backoff_factory_is_fresh_per_request(self):
        policy = RetryPolicy(seed=5)
        a = policy.backoff()
        b = policy.backoff()
        assert a is not b
        assert [a.delay_ms(i) for i in range(4)] \
            == [b.delay_ms(i) for i in range(4)]

    def test_defaults_retry_overload_only(self):
        policy = RetryPolicy()
        assert policy.retry_types == ("overload",)
        assert policy.retry_connect is True
        assert policy.retries > 0


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        kwargs.setdefault("threshold", 3)
        kwargs.setdefault("cooldown_s", 10.0)
        breaker = CircuitBreaker(clock=lambda: clock["now"], **kwargs)
        return breaker, clock

    def test_opens_after_threshold_consecutive_failures(self):
        breaker, _ = self._breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_failure()
        assert not breaker.allow()

    def test_success_resets_the_streak(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.allow(), "non-consecutive failures must not open"

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = self._breaker(threshold=1, cooldown_s=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock["now"] = 5.1  # cooldown elapsed: one probe allowed
        assert breaker.allow()
        # probe fails: the circuit re-opens from now
        breaker.record_failure()
        assert not breaker.allow()
        clock["now"] = 10.0
        assert not breaker.allow()
        clock["now"] = 10.3
        assert breaker.allow()
        breaker.record_success()
        assert breaker.allow() and breaker.failures == 0


class TestWaitReady:
    def test_returns_time_to_ready_for_a_live_daemon(self):
        from repro.service import DaemonThread

        with DaemonThread(workers=0) as handle:
            elapsed = wait_ready(handle.host, handle.port, budget_s=10.0)
        assert 0.0 <= elapsed < 10.0

    def test_raises_the_last_error_when_the_budget_elapses(self):
        import socket

        # a bound-but-not-listening port: connections are refused
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        with pytest.raises(OSError):
            wait_ready("127.0.0.1", port, budget_s=0.3)
