"""Daemon behaviour: batching, in-flight dedup, typed errors,
timeouts, worker crash recovery, drain (docs/service.md).

Most tests run the daemon in-process (``workers=0`` on a background
thread) so they are fast and can monkeypatch the worker seam
(:func:`repro.service.worker.handle_request` is resolved late by the
daemon precisely for this); the crash-recovery test boots a real
worker subprocess.
"""

import json
import socket
import threading
import time

import pytest

from repro.service import (DaemonThread, ServiceClient, ServiceError,
                           ServiceTimeout)
from repro.service import protocol
from repro.service import worker as worker_mod

SRC = "void main() { int x; x = input(); print(x + 7); }"


@pytest.fixture
def daemon():
    with DaemonThread(workers=0) as handle:
        yield handle


def _client(handle, **kwargs):
    kwargs.setdefault("timeout", 30.0)
    return ServiceClient(host=handle.host, port=handle.port, **kwargs)


# ---------------------------------------------------------------------------
# happy path
# ---------------------------------------------------------------------------

def test_ping_run_and_cache_flag(daemon):
    with _client(daemon) as client:
        assert client.ping()["pong"] is True
        first = client.run_source(SRC, config="profile", train=[1],
                                  ref=[5])
        assert first["result"]["output"] == ["12"]
        assert first["cached"] is False
        again = client.run_source(SRC, config="profile", train=[1],
                                  ref=[5])
        assert again["result"]["output"] == ["12"]
        assert again["cached"] is True


def test_batch_array_gets_one_response_per_request(daemon):
    with _client(daemon) as client:
        responses = list(client.submit(
            [{"op": "ping"}, {"op": "ping"}, {"op": "stats"}]))
        assert len(responses) == 3
        assert all(r["ok"] for r in responses)


def test_compile_op_reports_shape_not_output(daemon):
    with _client(daemon) as client:
        resp = client.compile_source(SRC, config="base")
        assert resp["result"]["functions"] == 1
        assert resp["result"]["instructions"] > 0
        assert "output" not in resp["result"]


# ---------------------------------------------------------------------------
# in-flight deduplication
# ---------------------------------------------------------------------------

def test_duplicate_inflight_keys_resolve_to_one_compile(daemon,
                                                        monkeypatch):
    """Eight identical concurrent requests: exactly one execution, the
    other seven wait on it and are answered with ``dedup: true``."""
    calls = []
    gate = threading.Event()

    def slow_handler(req):
        if req.get("op") == worker_mod.STATS_OP:
            return protocol.ok_response(req.get("id"), worker_mod.STATS_OP,
                                        {"hits": 0, "misses": len(calls)})
        calls.append(req["op"])
        gate.wait(5.0)  # hold every duplicate in the in-flight window
        return protocol.ok_response(req["id"], req["op"],
                                    {"output": ["held"]})

    monkeypatch.setattr(worker_mod, "handle_request", slow_handler)
    with _client(daemon) as client:
        batch = [{"op": "run", "source": SRC, "config": "profile",
                  "train": [1], "ref": [5]} for _ in range(8)]
        iterator = client.submit(batch)
        # responses only flow once the gate opens; release it after the
        # daemon has had time to coalesce all eight
        threading.Timer(0.4, gate.set).start()
        responses = list(iterator)
    assert len(calls) == 1, "duplicates must coalesce onto one compile"
    assert len(responses) == 8
    assert all(r["ok"] for r in responses)
    assert sum(1 for r in responses if r["dedup"]) == 7
    assert sum(1 for r in responses if not r["dedup"]) == 1
    with _client(daemon) as client:
        assert client.stats()["deduped"] == 7


def test_distinct_keys_do_not_dedup(daemon):
    # a source of its own: profile-free configs normalize train inputs
    # out of the compile-cache key, so reusing SRC would warm-hit the
    # base compile another test already did in this process
    src = "void main() { int x; x = input(); print(x + 11); }"
    with _client(daemon) as client:
        a = client.run_source(src, config="profile", train=[1], ref=[5])
        b = client.run_source(src, config="base", train=[1], ref=[5])
        assert not a["dedup"] and not b["dedup"]
        assert b["cached"] is False  # different config = different key


# ---------------------------------------------------------------------------
# typed errors; the connection always survives
# ---------------------------------------------------------------------------

def test_malformed_json_gets_typed_error_and_connection_survives(daemon):
    with socket.create_connection((daemon.host, daemon.port),
                                  timeout=10.0) as sock:
        rfile = sock.makefile("rb")
        sock.sendall(b"this is not json\n")
        resp = json.loads(rfile.readline())
        assert resp["ok"] is False
        assert resp["error"]["type"] == "bad-request"
        assert resp["id"] is None
        # same connection, next line: still fully functional
        sock.sendall(protocol.encode({"id": "after", "op": "ping"}))
        resp = json.loads(rfile.readline())
        assert resp["ok"] is True and resp["id"] == "after"


def test_schema_violation_echoes_salvaged_id(daemon):
    with _client(daemon) as client:
        with pytest.raises(ServiceError) as exc:
            client.request({"id": "r1", "op": "run"})  # no source
        assert exc.value.type == "bad-request"


def test_unknown_config_spec_is_bad_request(daemon):
    with _client(daemon) as client:
        with pytest.raises(ServiceError) as exc:
            client.run_source(SRC, config="profile+nonsense")
        assert exc.value.type == "bad-request"
        assert "nonsense" in exc.value.message


def test_compile_error_is_typed_not_fatal(daemon):
    with _client(daemon) as client:
        with pytest.raises(ServiceError) as exc:
            client.run_source("void main() { this is not mini-C }",
                              failsafe=False)
        assert exc.value.type in ("compile-error", "bad-request")
        # daemon still alive
        assert client.ping()["pong"] is True


# ---------------------------------------------------------------------------
# timeouts
# ---------------------------------------------------------------------------

def test_client_timeout_raises_service_timeout(daemon, monkeypatch):
    def slow_handler(req):
        if req.get("op") == worker_mod.STATS_OP:
            return protocol.ok_response(req.get("id"),
                                        worker_mod.STATS_OP, {})
        time.sleep(2.0)
        return protocol.ok_response(req["id"], req["op"], {})

    monkeypatch.setattr(worker_mod, "handle_request", slow_handler)
    with _client(daemon, timeout=0.2) as client:
        with pytest.raises(ServiceTimeout):
            client.run_source(SRC, train=[1], ref=[5])


def test_daemon_side_timeout_ms_is_typed(daemon, monkeypatch):
    def slow_handler(req):
        if req.get("op") == worker_mod.STATS_OP:
            return protocol.ok_response(req.get("id"),
                                        worker_mod.STATS_OP, {})
        time.sleep(2.0)
        return protocol.ok_response(req["id"], req["op"], {})

    monkeypatch.setattr(worker_mod, "handle_request", slow_handler)
    with _client(daemon) as client:
        with pytest.raises(ServiceTimeout):
            client.request({"op": "run", "source": SRC, "train": [1],
                            "ref": [5], "timeout_ms": 100})
        # the daemon survives its own timeout and still answers
        assert client.ping()["pong"] is True


# ---------------------------------------------------------------------------
# stats round-trip; worker error hygiene
# ---------------------------------------------------------------------------

def test_daemon_stats_dict_round_trip():
    from repro.service.daemon import DaemonStats

    stats = DaemonStats()
    stats.requests = 12
    stats.shed = 3
    stats.queue_depth_peak = 5
    stats.by_op = {"run": 9, "ping": 3}
    payload = stats.to_dict()
    restored = DaemonStats.from_dict(payload)
    again = restored.to_dict()
    for name in DaemonStats._COUNTERS:
        assert again[name] == payload[name]
    assert again["by_op"] == payload["by_op"]
    assert abs(again["uptime_s"] - payload["uptime_s"]) < 1.0


def test_worker_unknown_error_type_is_downgraded_to_internal(
        daemon, monkeypatch):
    """A worker speaking an unknown error dialect must surface as a
    typed ``internal`` error, never crash the dispatch task."""
    def weird_handler(req):
        if req.get("op") == worker_mod.STATS_OP:
            return protocol.ok_response(req.get("id"),
                                        worker_mod.STATS_OP, {})
        return {"id": req["id"], "ok": False,
                "error": {"type": "made-up-dialect", "message": "?"}}

    monkeypatch.setattr(worker_mod, "handle_request", weird_handler)
    with _client(daemon) as client:
        with pytest.raises(ServiceError) as exc:
            client.run_source(SRC, train=[1], ref=[5])
        assert exc.value.type == "internal"
        assert client.ping()["pong"] is True


# ---------------------------------------------------------------------------
# drain
# ---------------------------------------------------------------------------

def test_draining_daemon_refuses_work_with_typed_error(daemon):
    daemon.daemon._draining = True
    try:
        with _client(daemon) as client:
            # control ops still answer (health checks during drain)
            assert client.ping()["draining"] is True
            with pytest.raises(ServiceError) as exc:
                client.run_source(SRC, train=[1], ref=[5])
            assert exc.value.type == "shutdown"
    finally:
        daemon.daemon._draining = False


# ---------------------------------------------------------------------------
# real worker subprocesses: sharding, crash recovery
# ---------------------------------------------------------------------------

def test_worker_crash_yields_typed_error_then_respawns():
    """Killing a worker mid-request must fail that request with a typed
    ``worker-crash`` error (not a hang), and the next request must be
    served by a respawned worker."""
    import os
    import signal

    slow_src = """
void main() {
  int i; int s;
  s = 0;
  i = 0;
  while (i < 3000000) { s = s + i; i = i + 1; }
  print(s + input());
}
"""
    with DaemonThread(workers=1) as handle:
        with ServiceClient(handle.host, handle.port,
                           timeout=120.0) as client:
            assert client.ping()["workers"] == 1
            pid = handle.daemon._handles[0].proc.pid
            killer = threading.Timer(
                0.5, lambda: os.kill(pid, signal.SIGKILL))
            killer.start()
            with pytest.raises(ServiceError) as exc:
                client.run_source(slow_src, config="base", train=[1],
                                  ref=[5])
            killer.cancel()
            assert exc.value.type == "worker-crash"
            # the pool heals: the next request respawns the shard
            resp = client.run_source(SRC, config="base", train=[1],
                                     ref=[5])
            assert resp["result"]["output"] == ["12"]
            stats = client.stats()
            assert stats["worker_restarts"] == 1


def test_sharding_routes_same_key_to_same_worker():
    from repro.service.loadgen import key_source

    with DaemonThread(workers=2) as handle:
        with ServiceClient(handle.host, handle.port,
                           timeout=120.0) as client:
            workers = set()
            for _ in range(3):
                resp = client.run_source(key_source(1), config="profile",
                                         train=[1], ref=[2])
                workers.add(resp["worker"])
            assert len(workers) == 1, \
                "one content key must always land on one shard"
            # and the repeats were shard-cache hits
            assert resp["cached"] is True
