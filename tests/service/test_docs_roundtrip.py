"""docs/service.md cannot drift from the implementation: every fenced
``json`` block in the page must validate against the real wire schema
(`repro.service.protocol`).  Documentation examples here are test
inputs, not prose."""

import json
import re
from pathlib import Path

import pytest

from repro.service import persist, protocol

DOC = Path(__file__).resolve().parents[2] / "docs" / "service.md"

_FENCE = re.compile(r"```json\n(.*?)```", re.DOTALL)


def _json_blocks():
    blocks = _FENCE.findall(DOC.read_text())
    assert blocks, "docs/service.md must contain ```json examples"
    return blocks


def _classify(obj):
    """A documented snippet is a request, a response, a batch, or a
    persisted cache entry (checked first: entries carry a top-level
    ``op`` too)."""
    if isinstance(obj, list):
        return "batch"
    if isinstance(obj, dict) and obj.get("magic") == persist.MAGIC:
        return "cache-entry"
    if isinstance(obj, dict) and "ok" in obj:
        return "response"
    if isinstance(obj, dict) and "op" in obj:
        return "request"
    raise AssertionError(f"undocumentable JSON shape: {obj!r}")


@pytest.mark.parametrize("block", _json_blocks(),
                         ids=lambda b: b.strip()[:40])
def test_documented_snippet_matches_wire_schema(block):
    obj = json.loads(block)  # the example must at least be valid JSON
    kind = _classify(obj)
    if kind == "batch":
        assert obj, "a documented batch must not be empty"
        for req in obj:
            protocol.validate_request(req)
    elif kind == "request":
        protocol.validate_request(obj)
    elif kind == "cache-entry":
        persist.validate_entry(obj, key=obj["content_key"])
    else:
        protocol.validate_response(obj)


def test_docs_cover_every_op_and_error_family():
    """The protocol page documents each op at least once, and shows both
    an ok response and a typed error."""
    kinds = {"request": [], "response": [], "batch": [],
             "cache-entry": []}
    for block in _json_blocks():
        obj = json.loads(block)
        kinds[_classify(obj)].append(obj)
    documented_ops = {req["op"] for req in kinds["request"]}
    documented_ops.update(req["op"] for batch in kinds["batch"]
                          for req in batch)
    assert documented_ops == set(protocol.OPS)
    assert any(resp["ok"] for resp in kinds["response"])
    error_types = {resp["error"]["type"] for resp in kinds["response"]
                   if not resp["ok"]}
    assert error_types, "docs must show at least one typed error"
    assert error_types <= set(protocol.ERROR_TYPES)


def test_docs_name_every_error_type():
    """The closed error set is listed verbatim in the page, so a new
    type cannot ship undocumented."""
    text = DOC.read_text()
    for err_type in protocol.ERROR_TYPES:
        assert f"`{err_type}`" in text, \
            f"error type {err_type!r} missing from docs/service.md"


def test_framing_round_trip_of_documented_examples():
    """Every documented object survives the real encode/decode path."""
    for block in _json_blocks():
        obj = json.loads(block)
        assert protocol.decode_line(protocol.encode(obj)) == obj
