"""Client resilience: batch resend after mid-pipeline timeouts, retry
with backoff, and the circuit breaker (docs/service.md)."""

import threading
import time

import pytest

from repro.service import (DaemonThread, RetryPolicy, ServiceClient,
                           protocol)
from repro.service.backoff import CircuitBreaker
from repro.service.client import ServiceTimeout, ServiceUnavailable
from repro.service import worker as worker_mod

SRC = "void main() { int x; x = input(); print(x + 7); }"


def _work(n=0, **over):
    req = {"op": "run", "source": SRC + f"// {n}", "config": "profile",
           "train": [1], "ref": [5]}
    req.update(over)
    return req


@pytest.fixture
def daemon():
    with DaemonThread(workers=0) as handle:
        yield handle


def _client(handle, **kwargs):
    kwargs.setdefault("timeout", 30.0)
    return ServiceClient(host=handle.host, port=handle.port, **kwargs)


# ---------------------------------------------------------------------------
# submit: the unanswered tail of a batch survives a mid-batch timeout
# ---------------------------------------------------------------------------

def test_submit_resends_unanswered_tail_after_timeout(daemon,
                                                      monkeypatch):
    """Regression: a timeout mid-``submit()`` used to drop the batch's
    unanswered tail (the client closed the socket and raised).  The
    client must reconnect, resend what is still pending, and deliver
    every response."""
    slow_key = "slow-marker"
    release = threading.Event()

    def handler(req):
        if req.get("op") == worker_mod.STATS_OP:
            return protocol.ok_response(req.get("id"),
                                        worker_mod.STATS_OP, {})
        if slow_key in req.get("source", ""):
            release.wait(10.0)
        return protocol.ok_response(req["id"], req["op"],
                                    {"output": ["done"]})

    monkeypatch.setattr(worker_mod, "handle_request", handler)
    with _client(daemon, timeout=0.4) as client:
        batch = [_work(1), _work(2, source=SRC + slow_key), _work(3)]
        # release the slow request after the first client-side timeout
        threading.Timer(0.7, release.set).start()
        responses = list(client.submit(batch, max_resends=4))
    assert len(responses) == 3
    assert all(r["ok"] for r in responses)
    assert sorted(r["id"] for r in responses) \
        == sorted(r["id"] for r in batch)


def test_submit_raises_once_the_resend_budget_is_spent(daemon,
                                                       monkeypatch):
    def handler(req):
        if req.get("op") == worker_mod.STATS_OP:
            return protocol.ok_response(req.get("id"),
                                        worker_mod.STATS_OP, {})
        time.sleep(5.0)
        return protocol.ok_response(req["id"], req["op"], {})

    monkeypatch.setattr(worker_mod, "handle_request", handler)
    with _client(daemon, timeout=0.2) as client:
        with pytest.raises(ServiceTimeout):
            list(client.submit([_work(1)], max_resends=1))


# ---------------------------------------------------------------------------
# request: retry/backoff and the circuit breaker
# ---------------------------------------------------------------------------

def test_request_retries_connection_failures_until_daemon_is_up():
    """A client pointed at a daemon that boots late must succeed within
    its retry budget (the connect-retry half of the policy)."""
    # reserve a port, then boot the daemon on it after a delay
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()

    handle_box = {}

    def boot():
        handle_box["daemon"] = DaemonThread(workers=0, host="127.0.0.1",
                                            port=port)

    timer = threading.Timer(0.5, boot)
    timer.start()
    try:
        policy = RetryPolicy(retries=40, base_ms=50.0, max_ms=200.0,
                             seed=0)
        client = ServiceClient("127.0.0.1", port, timeout=10.0,
                               retry=policy)
        assert client.ping()["pong"] is True
        client.close()
    finally:
        timer.join()
        if "daemon" in handle_box:
            handle_box["daemon"].stop()


def test_circuit_breaker_fails_fast_on_a_dead_daemon():
    import socket

    # a bound-but-not-listening port: every connect is refused
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
    breaker = CircuitBreaker(threshold=2, cooldown_s=60.0)
    client = ServiceClient("127.0.0.1", port, timeout=1.0,
                           breaker=breaker)
    with pytest.raises(OSError):
        client.request({"op": "ping"})
    with pytest.raises((OSError, ServiceUnavailable)):
        client.request({"op": "ping"})
    assert not breaker.allow()
    # the circuit is open: no connection attempt, instant typed failure
    t0 = time.perf_counter()
    with pytest.raises(ServiceUnavailable):
        client.request({"op": "ping"})
    assert time.perf_counter() - t0 < 0.5


def test_breaker_closes_after_successful_probe(daemon):
    breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
    with _client(daemon, breaker=breaker) as client:
        breaker.record_failure()  # simulate a failed epoch
        assert not breaker.allow()
        time.sleep(0.06)  # cooldown: half-open, one probe allowed
        assert client.ping()["pong"] is True
        assert breaker.allow() and breaker.failures == 0
