"""Shared typed exceptions.

:class:`FuelExhausted` is the base for "the program ran out of fuel"
in both execution engines — the reference interpreter raises
:class:`repro.profiling.interp.InterpFuelExhausted` and the machine
simulator raises :class:`repro.target.MachineFuelExhausted`, each also
subclassing its engine's native error so existing ``except`` clauses
keep working.  The pipeline driver catches the shared base and reports
a diagnostic (function + instruction context) instead of a stack trace.
"""

from __future__ import annotations


class FuelExhausted(Exception):
    """A bounded execution ran out of fuel.

    Attributes:
        function: name of the function being executed, or ``None``.
        instruction: engine-specific position context (a block label,
            statement repr, ...), or ``None``.
    """

    function = None
    instruction = None

    def context(self) -> str:
        """One-line human-readable position for diagnostics."""
        where = self.function or "?"
        if self.instruction is not None:
            where += f" @ {self.instruction}"
        return where
