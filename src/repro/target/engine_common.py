"""Pieces shared by the three execution engines.

The simulator grew engines the way real VMs do — an interpretive
baseline (:mod:`machine_classic`), a pre-decoded dispatch loop
(:mod:`machine`) and a hot-trace JIT (:mod:`machine_trace`) — and they
all agree on this substrate: the NaT poison token, the machine error
types, the pre-decoded instruction encoding and the per-function
translation (:class:`_TFunc`).  Everything here is engine-neutral;
anything that differs between engines (dispatch, profiling, trace
compilation) lives in the engine modules.

``machine.py`` re-exports these names unchanged, so existing imports
(``from repro.target.machine import NAT``) keep working.
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..errors import FuelExhausted
from ..ir import StorageKind
from ..profiling.interp import c_div, c_rem

Value = Union[int, float]


class MachineError(Exception):
    """Raised on a machine-level runtime error (bad address, fuel
    exhausted, missing main, malformed program)."""


class MachineFuelExhausted(FuelExhausted, MachineError):
    """Fuel ran out in the simulator.  Carries the function and block
    being executed so the driver can report a diagnostic instead of a
    stack trace."""

    def __init__(self, function: str, block: str, instructions: int) -> None:
        super().__init__(
            f"fuel exhausted (infinite loop?) in {function} at block "
            f"{block} after {instructions} instructions")
        self.function = function
        self.instruction = block
        self.instructions = instructions


class _NaT:
    """The deferred-exception poison token.  A singleton compared by
    identity (``value is NAT``); it deliberately supports *no*
    arithmetic — the simulator checks for it explicitly, so any leak
    into a Python operator is a loud bug, not silent corruption."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "NaT"


#: The one NaT value speculative loads deliver on a deferred fault.
NAT = _NaT()


# ---- opcode encoding --------------------------------------------------
#
# Numbered hottest-first: the execute stage dispatches through an
# if/elif chain in this order, so the dynamic-frequency ranking (ALU
# ops and moves dominate every workload) keeps the average comparison
# count low.

(_ADD, _BIN, _CMPLT, _MOV, _MOVI, _LD, _BR, _JMP, _ST, _REM, _LDC,
 _LDA, _LDS, _LDR, _CHK, _LEA, _UN, _CALL, _RET, _ALLOC, _PRINT,
 _INPUT, _INPUTF) = range(23)

_BIN_FN = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": c_div,
    "rem": c_rem,
    "cmp.lt": lambda a, b: int(a < b),
    "cmp.le": lambda a, b: int(a <= b),
    "cmp.gt": lambda a, b: int(a > b),
    "cmp.ge": lambda a, b: int(a >= b),
    "cmp.eq": lambda a, b: int(a == b),
    "cmp.ne": lambda a, b: int(a != b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
}

_UN_FN = {
    "neg": lambda a: -a,
    "not": lambda a: int(not a),
    "bnot": lambda a: ~int(a),
    "cvt.int": int,
    "cvt.float": float,
}

#: result latency in cycles by ALU op (everything else is 1)
_ALU_LATENCY = {"mul": 3, "div": 12, "rem": 12}

#: shared empty frame-address map for functions with no local allocs
_NO_FRAME_ADDRS: Dict[object, int] = {}


class _TFunc:
    """One translated function: blocks of **pre-decoded** instruction
    tuples.

    Every tuple shares a uniform prefix the dispatch loop relies on:

    * ``[0]`` — opcode (the hotness-ordered encoding above);
    * ``[1]`` — stall sources: the register tuple the scoreboard must
      see ready before issue (for ``ld.c`` this is the *miss* set —
      address then tag register);
    * ``[2]`` — memory-op flag (consumes a memory port at issue).

    The payload from ``[3]`` on is op-specific; ``ld.c`` additionally
    carries its *hit* stall set — just the ALAT tag register — in
    ``[7]``, selected at dispatch when the entry survived, so a check
    that rides the ALAT never stalls on the address recomputation.
    Terminators and calls carry their in-block position + 1 as the last
    payload slot, which lets the dispatch loop bill executed-instruction
    counts per *block* instead of per instruction.

    The trailing ``tr_*`` slots are the trace engine's per-run profile
    state (:mod:`machine_trace`); they stay ``None`` under the other
    engines and cost nothing.
    """

    __slots__ = ("name", "blocks", "nregs", "param_regs", "frame_allocs",
                 "fs", "tr_tbl", "tr_elig", "tr_fail")

    def __init__(self, fn) -> None:
        self.fs = None  # this run's FnStats, bound on first call
        self.tr_tbl = None    # trace engine: per-block counter/closure
        self.tr_elig = None   # trace engine: block may join a trace
        self.tr_fail = None   # trace engine: abandoned-recording counts
        self.name = fn.name
        self.nregs = fn.nregs
        self.param_regs = fn.param_regs
        self.frame_allocs = fn.frame_allocs
        index = {id(block): i for i, block in enumerate(fn.blocks)}
        self.blocks: List[List[tuple]] = []
        for i, block in enumerate(fn.blocks):
            out: List[tuple] = []
            for instr in block.instrs:
                op = instr.op
                if op == "add":
                    # the two most frequent ALU ops on every workload get
                    # their own opcodes: no callable in the payload, unit
                    # latency baked in
                    a, b = instr.srcs
                    out.append((_ADD, instr.srcs, False, instr.dest,
                                a, b))
                elif op == "cmp.lt":
                    a, b = instr.srcs
                    out.append((_CMPLT, instr.srcs, False, instr.dest,
                                a, b))
                elif op == "rem":
                    a, b = instr.srcs
                    out.append((_REM, instr.srcs, False, instr.dest,
                                a, b, _ALU_LATENCY["rem"]))
                elif op in _BIN_FN:
                    a, b = instr.srcs
                    out.append((_BIN, instr.srcs, False, instr.dest,
                                _BIN_FN[op], a, b,
                                _ALU_LATENCY.get(op, 1)))
                elif op == "mov":
                    out.append((_MOV, instr.srcs, False, instr.dest,
                                instr.srcs[0]))
                elif op == "movi":
                    out.append((_MOVI, (), False, instr.dest, instr.imm))
                elif op == "ld":
                    out.append((_LD, instr.srcs, True, instr.dest,
                                instr.srcs[0], instr.fp))
                elif op == "st":
                    out.append((_ST, instr.srcs, True, instr.srcs[0],
                                instr.srcs[1], instr.coerce, instr.fp))
                elif op == "ld.c":
                    addr = instr.srcs[0]
                    out.append((_LDC, (addr, instr.dest), True,
                                instr.dest, addr, instr.fp,
                                None, (instr.dest,)))
                elif op == "ld.a":
                    out.append((_LDA, instr.srcs, True, instr.dest,
                                instr.srcs[0], instr.fp))
                elif op == "ld.s":
                    out.append((_LDS, instr.srcs, True, instr.dest,
                                instr.srcs[0], instr.fp))
                elif op == "ld.r":
                    out.append((_LDR, instr.srcs, True, instr.dest,
                                instr.srcs[0], instr.fp))
                elif op == "jmp":
                    target = index[id(instr.targets[0])]
                    out.append((_JMP, (), False, target, target != i + 1,
                                len(out) + 1))
                elif op == "br":
                    then_i = index[id(instr.targets[0])]
                    else_i = index[id(instr.targets[1])]
                    out.append((_BR, instr.srcs, False, instr.srcs[0],
                                then_i, else_i,
                                then_i != i + 1, else_i != i + 1,
                                len(out) + 1))
                elif op == "chk.s":
                    cont_i = index[id(instr.targets[0])]
                    rec_i = index[id(instr.targets[1])]
                    out.append((_CHK, instr.srcs, False, instr.srcs[0],
                                cont_i, rec_i,
                                cont_i != i + 1, rec_i != i + 1,
                                len(out) + 1))
                elif op == "lea":
                    out.append((_LEA, (), False, instr.dest, instr.sym,
                                instr.sym.kind is StorageKind.GLOBAL))
                elif op in _UN_FN:
                    out.append((_UN, instr.srcs, False, instr.dest,
                                _UN_FN[op], instr.srcs[0]))
                elif op == "call":
                    out.append((_CALL, instr.srcs, False, instr.dest,
                                instr.callee, len(out) + 1))
                elif op == "ret":
                    src = instr.srcs[0] if instr.srcs else None
                    out.append((_RET, instr.srcs, False, src,
                                len(out) + 1))
                elif op == "alloc":
                    out.append((_ALLOC, instr.srcs, False, instr.dest,
                                instr.srcs[0]))
                elif op == "print":
                    out.append((_PRINT, instr.srcs, False))
                elif op == "input":
                    out.append((_INPUT, (), False, instr.dest))
                elif op == "inputf":
                    out.append((_INPUTF, (), False, instr.dest))
                else:
                    raise MachineError(f"unknown opcode {op!r}")
            self.blocks.append(out)
