"""The IA-64-flavoured virtual-register ISA.

A :class:`MProgram` is the code generator's output and the simulator's
input: per-function CFGs of :class:`MInstr` over an unbounded virtual
register file.  The four load flavours carry the paper's speculative
semantics (docs/machine_model.md):

========  ==========================================================
``ld``    ordinary load; faults on an unallocated address
``ld.a``  advanced load — loads *and* arms an ALAT entry; never
          faults (deferred-exception NaT behaviour)
``ld.s``  control-speculative load; never faults — a bad address
          delivers the NaT poison, which propagates through ALU ops
          until a ``chk.s`` catches it
``ld.c``  check load — ALAT hit: the register value stands at ~zero
          cost; miss: re-executes as a real load and re-arms
``ld.r``  recovery replay load — re-executes a deferred ``ld.s``
          non-speculatively inside a ``chk.s`` recovery block; a
          still-unmapped cell reads as zero (the architectural
          NaT-consumption value) instead of faulting
========  ==========================================================

``chk.s r, cont, recover`` is the misspeculation check: a block
terminator that falls through to ``cont`` when ``r`` holds a real
value and branches to the (out-of-line) ``recover`` block when ``r``
is NaT; recovery replays the load(s) with ``ld.r`` and jumps back to
``cont`` (docs/recovery.md).

Everything else is a deliberately small RISC: ``movi``/``mov``/``lea``,
three-address ALU ops named after the IR operators, ``st``, branches,
``call``/``ret`` and the ``input``/``alloc``/``print`` intrinsics shared
with the reference interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import Symbol

#: The load flavours (retired-load counters are split along these).
LOAD_OPS = frozenset({"ld", "ld.a", "ld.s", "ld.c", "ld.r"})

#: Binary ALU ops, keyed by the IR operator they implement.
BIN_OP_NAMES = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "<": "cmp.lt", "<=": "cmp.le", ">": "cmp.gt", ">=": "cmp.ge",
    "==": "cmp.eq", "!=": "cmp.ne",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
}

#: Unary ALU ops, keyed by the IR operator.
UN_OP_NAMES = {
    "-": "neg", "!": "not", "~": "bnot",
    "int": "cvt.int", "float": "cvt.float",
}

ALU_OPS = frozenset(BIN_OP_NAMES.values()) | frozenset(UN_OP_NAMES.values())

#: Ops with externally visible effects whose relative order is frozen.
EFFECT_OPS = frozenset({"call", "print", "input", "inputf", "alloc"})

#: Block terminators.  ``chk.s`` is control flow: fall through on a
#: real value, branch to the recovery block on NaT.
TERMINATOR_OPS = frozenset({"jmp", "br", "ret", "chk.s"})


class MInstr:
    """One machine instruction.

    Attributes:
        op: opcode string (see module docstring).
        dest: destination virtual register, or ``None``.
        srcs: source virtual registers (address first for memory ops).
        imm: immediate constant (``movi``).
        sym: the frame/global :class:`~repro.ir.Symbol` (``lea``).
        callee: target function or intrinsic name (``call``).
        targets: successor :class:`MBlock` s (``jmp``/``br``).
        fp: the access moves a floating-point value (memory ops; drives
            the cache's FP-bypass policy and ``st`` coercion).
        coerce: ``st`` only — coerce the stored value to float first
            (set from the IR :class:`~repro.ir.Store`'s declared type).
    """

    __slots__ = ("op", "dest", "srcs", "imm", "sym", "callee", "targets",
                 "fp", "coerce")

    def __init__(self, op: str, dest: Optional[int] = None,
                 srcs: Sequence[int] = (), imm=None,
                 sym: Optional[Symbol] = None, callee: Optional[str] = None,
                 targets: Sequence["MBlock"] = (), fp: bool = False,
                 coerce: bool = False) -> None:
        self.op = op
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.sym = sym
        self.callee = callee
        self.targets = tuple(targets)
        self.fp = fp
        self.coerce = coerce

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def uses(self) -> Tuple[int, ...]:
        """Registers this instruction reads.  ``ld.c`` implicitly reads
        its own destination: on an ALAT hit the register value stands,
        so the check depends on the advanced load (or whatever else)
        that last defined it."""
        if self.op == "ld.c" and self.dest is not None:
            return self.srcs + (self.dest,)
        return self.srcs

    @property
    def is_mem(self) -> bool:
        return self.op in LOAD_OPS or self.op == "st"

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATOR_OPS

    def __str__(self) -> str:
        parts: List[str] = []
        if self.dest is not None:
            parts.append(f"r{self.dest} =")
        parts.append(self.op + (".f" if self.fp and self.is_mem else ""))
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.sym is not None:
            parts.append(f"&{self.sym.name}")
        if self.callee is not None:
            parts.append(self.callee)
        if self.srcs:
            parts.append(", ".join(f"r{s}" for s in self.srcs))
        if self.targets:
            parts.append(", ".join(t.name for t in self.targets))
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MInstr {self}>"


class MBlock:
    """A machine basic block: a list of instructions ending in exactly
    one terminator (``jmp``/``br``/``ret``)."""

    __slots__ = ("name", "instrs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.instrs: List[MInstr] = []

    def append(self, instr: MInstr) -> MInstr:
        self.instrs.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[MInstr]:
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MBlock {self.name} ({len(self.instrs)} instrs)>"


class MFunction:
    """One compiled procedure.

    Attributes:
        name: function name.
        blocks: machine blocks in layout order (entry first); a branch
            to the lexically-next block is a fall-through, anything else
            pays the taken-branch penalty.
        nregs: size of the virtual register file.
        param_regs: registers receiving the arguments, in order.
        frame_allocs: ``(symbol, cells)`` pairs the simulator allocates
            on every activation, in the reference interpreter's order
            (memory-resident locals first, then address-taken params).
        max_live: static maximum of simultaneously-live virtual
            registers (the §5.2 register-pressure proxy), computed by
            the code generator.
    """

    __slots__ = ("name", "blocks", "nregs", "param_regs", "frame_allocs",
                 "max_live")

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: List[MBlock] = []
        self.nregs = 0
        self.param_regs: List[int] = []
        self.frame_allocs: List[Tuple[Symbol, int]] = []
        self.max_live = 0

    def new_block(self, name: str) -> MBlock:
        block = MBlock(name)
        self.blocks.append(block)
        return block

    def instructions(self):
        for block in self.blocks:
            for instr in block.instrs:
                yield block, instr

    def counts(self) -> Tuple[int, int, int]:
        """``(instructions, loads, stores)`` — the machine-level IR-size
        triple the pass manager's ``--time-passes`` deltas report."""
        instrs = loads = stores = 0
        for _, instr in self.instructions():
            instrs += 1
            if instr.is_load:
                loads += 1
            elif instr.op == "st":
                stores += 1
        return instrs, loads, stores

    def format(self) -> str:
        lines = [f"func {self.name} "
                 f"(params {', '.join(f'r{r}' for r in self.param_regs)}; "
                 f"{self.nregs} regs; max-live {self.max_live})"]
        for sym, cells in self.frame_allocs:
            lines.append(f"  frame {sym.name}[{cells}]")
        for block in self.blocks:
            lines.append(f"{block.name}:")
            for instr in block.instrs:
                lines.append(f"  {instr}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MFunction {self.name}>"


class MProgram:
    """A whole compiled program: globals plus machine functions."""

    def __init__(self) -> None:
        self.functions: Dict[str, MFunction] = {}
        self.globals: List[Tuple[Symbol, int]] = []

    def add_function(self, fn: MFunction) -> MFunction:
        self.functions[fn.name] = fn
        return fn

    @property
    def main(self) -> MFunction:
        return self.functions["main"]

    def counts(self) -> Tuple[int, int, int]:
        """Program-wide ``(instructions, loads, stores)``."""
        instrs = loads = stores = 0
        for fn in self.functions.values():
            i, l, s = fn.counts()
            instrs += i
            loads += l
            stores += s
        return instrs, loads, stores

    def format(self) -> str:
        parts = []
        for sym, cells in self.globals:
            parts.append(f"global {sym.name}[{cells}]")
        for fn in self.functions.values():
            parts.append(fn.format())
        return "\n\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MProgram {sorted(self.functions)}>"
