"""The machine simulator: in-order EPIC-style timing over an exact
functional execution.

Functional semantics mirror the reference interpreter byte-for-byte
(same bump allocator, same guard cells, same C-style division, same
``%.6g`` float printing), so the correctness oracle can compare outputs
verbatim.  On top of that runs the timing model of
docs/machine_model.md: ``issue_width`` slots per cycle with
``mem_ports`` memory ports, a register scoreboard (consumers stall
until their producer's latency elapses), a taken-branch penalty and a
small call overhead.  Stall cycles whose binding producer was a load
are attributed to *data access* — Figure 10's third series.

The speculative flavours meet the :class:`~repro.target.ALAT` here:
``ld.a`` arms an entry, ``st`` invalidates matching entries, and
``ld.c`` either rides a surviving entry at ``check_hit_latency``
(default 0 — the paper's whole premise) or re-executes as a real load,
counted as a mis-speculation.

Deferred exceptions are modelled with the :data:`NAT` poison token
(IA-64's "Not a Thing"): a speculative load that cannot complete —
unmapped address, or a fault injected by a
:class:`~repro.hazards.Injector` — delivers ``NAT`` instead of raising.
The poison propagates through ALU ops, ``mov`` and call arguments; a
non-speculative consumer (plain ``ld``/``st`` address, store value,
branch condition, ``print``, ``alloc``) raises :class:`MachineError`,
and ``chk.s`` branches to its recovery block, which replays the loads
with ``ld.r`` (docs/recovery.md).

Dispatch is **pre-decoded** (docs/performance.md): translation flattens
every instruction into a tuple whose first three slots are uniform —
``(code, stall_srcs, is_mem, ...payload)`` — so the million-instruction
dispatch loop does *zero* per-instruction operand classification; the
source-register tuple, result latency and memory-port flag were all
computed once per function.  ``ld.c`` carries its hit and miss stall
sets separately: a check that rides a surviving ALAT entry binds only
on the tag register, never on the (possibly still in flight) address
recomputation.  The pre-PR interpretive loop survives unchanged as
:mod:`repro.target.machine_classic` (``run_program(...,
engine="classic")``), kept purely as the wall-clock baseline that
``benchmarks/test_compiler_perf.py`` measures against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..profiling.interp import c_rem
from .alat import ALAT
from .cache import DataCache
from .engine_common import (  # noqa: F401 — re-exported engine substrate
    _ADD, _ALLOC, _ALU_LATENCY, _BIN, _BIN_FN, _BR, _CALL, _CHK, _CMPLT,
    _INPUT, _INPUTF, _JMP, _LD, _LDA, _LDC, _LDR, _LDS, _LEA, _MOV,
    _MOVI, _NO_FRAME_ADDRS, _PRINT, _REM, _RET, _ST, _UN, _UN_FN, NAT,
    MachineError, MachineFuelExhausted, Value, _NaT, _TFunc)
from .isa import MProgram
from .stats import MachineStats



class _Machine:
    """One simulation run: memory + scoreboard + counters."""

    def __init__(self, program: MProgram, inputs: Sequence[Value],
                 fuel: int, issue_width: int, mem_ports: int,
                 branch_penalty: int, call_overhead: int,
                 alat: ALAT, cache: DataCache,
                 check_hit_latency: int, check_issue_free: bool,
                 injector=None) -> None:
        self.funcs = {name: _TFunc(fn)
                      for name, fn in program.functions.items()}
        self.inputs = list(inputs)
        self._input_pos = 0
        self.fuel = fuel
        self.issue_width = issue_width
        self.mem_ports = mem_ports
        self.branch_penalty = branch_penalty
        self.call_overhead = call_overhead
        self.alat = alat
        self.cache = cache
        self.check_hit_latency = check_hit_latency
        self.check_issue_free = check_issue_free
        self.injector = injector

        self.memory: Dict[int, Value] = {}
        self._next_addr = 16  # matches the interpreter: 0 stays null
        self._global_addr: Dict[object, int] = {}
        for sym, cells in program.globals:
            self._global_addr[sym] = self._allocate(cells)
        self.output: List[str] = []
        self.stats = MachineStats()
        self._frame_serial = 0

        # scoreboard
        self.cycle = 0
        self.slots = 0
        self.ports = 0

        # run-constant environment, unpacked by _call in one statement
        # instead of ~25 attribute reads per frame.  The trailing cache
        # geometry feeds the inlined residency fast paths in _LD/_ST
        # (the per-set dicts are mutated in place, never rebound, so
        # binding them once per run is safe — see DataCache.flush).
        self._env = (
            self.stats, self.memory, self.memory.get, self.alat,
            self.alat.peek, self.alat.check, self.alat.arm,
            self.alat.invalidate, self.alat.disarm, self.cache,
            self.cache.load, self.cache.store, self.injector,
            self.funcs.get, self._global_addr, self.issue_width,
            self.mem_ports, self.branch_penalty, self.check_hit_latency,
            self.check_issue_free, self.cache.line_cells,
            self.cache._l1.sets, self.cache._l1.nsets,
            self.cache.l1_latency, self.cache._l2.sets,
            self.cache._l2.nsets, self.alat._sets, self.alat.nsets)

    # ---- memory ---------------------------------------------------------
    def _allocate(self, cells: int) -> int:
        base = self._next_addr
        span = cells if cells > 0 else 1
        self._next_addr += span + 1  # +1 guard cell, like the interpreter
        memory = self.memory
        for i in range(span):
            memory[base + i] = 0
        return base

    def _next_input(self) -> Value:
        if self._input_pos >= len(self.inputs):
            raise MachineError("input stream exhausted")
        value = self.inputs[self._input_pos]
        self._input_pos += 1
        return value

    # ---- running --------------------------------------------------------
    def run(self) -> Tuple[MachineStats, List[str]]:
        if "main" not in self.funcs:
            raise MachineError("program has no main()")
        self._call(self.funcs["main"], [])
        stats = self.stats
        stats.cycles = self.cycle
        # the dispatch loop maintains only the per-function slices; the
        # whole-run counters are their exact sums, recovered here once
        # instead of being double-written at every frame return
        for f in stats.fn_stats.values():
            stats.instructions += f.instructions
            stats.plain_loads += f.plain_loads
            stats.advanced_loads += f.advanced_loads
            stats.spec_loads += f.spec_loads
            stats.check_loads += f.check_loads
            stats.check_misses += f.check_misses
            stats.stores += f.stores
            stats.deferred_faults += f.deferred_faults
            stats.spec_checks += f.spec_checks
            stats.spec_recoveries += f.spec_recoveries
            stats.replay_loads += f.replay_loads
            stats.taken_branches += f.taken_branches
            stats.fallthroughs += f.fallthroughs
        return self.stats, self.output

    def _call(self, fn: _TFunc, args: List[Value]) -> Optional[Value]:
        if len(args) != len(fn.param_regs):
            raise MachineError(f"{fn.name}: arity mismatch")
        self._frame_serial += 1
        frame = self._frame_serial
        regs: List[Value] = [0] * fn.nregs
        ready = [0] * fn.nregs          # cycle each register's value lands
        from_load = [False] * fn.nregs  # producer was a load (for Fig. 10)
        for reg, value in zip(fn.param_regs, args):
            regs[reg] = value
        if fn.frame_allocs:
            addr_of: Dict[object, int] = {}
            for sym, cells in fn.frame_allocs:
                addr_of[sym] = self._allocate(cells)
        else:
            addr_of = _NO_FRAME_ADDRS  # read-only when nothing allocates

        (stats, memory, mem_get, alat, alat_peek, alat_check, alat_arm,
         alat_invalidate, alat_disarm, cache, cache_load, cache_store,
         injector, funcs_get, global_addr, issue_width, mem_ports,
         branch_penalty, check_hit_latency, check_issue_free, line_cells,
         l1_sets, l1_nsets, l1_latency, l2_sets, l2_nsets, al_sets,
         al_nsets) = self._env
        fs = fn.fs
        if fs is None:
            fs = fn.fs = stats.fn(fn.name)
        self.cycle += self.call_overhead
        nat = NAT
        blocks = fn.blocks
        block_index = 0
        # The scoreboard lives in locals for the duration of the
        # dispatch loop (written back around calls and on return), the
        # two per-instruction counters are buffered and flushed at the
        # same boundaries, and the stall + issue stages are fused into
        # each opcode's branch so a pre-decoded tuple costs exactly one
        # dispatch — pure dispatch-cost savings; every observable total
        # matches the classic engine exactly.  Each branch's fused
        # scoreboard keeps the classic invariants: a stall or a
        # slot/port rollover starts a fresh cycle (and this very
        # instruction then issues into it, hence ``slots = 1``).
        cycle = self.cycle
        slots = self.slots
        ports = self.ports
        fuel = self.fuel
        n_instr = 0     # buffered stats.instructions / fs.instructions
        da_cycles = 0   # buffered stats.data_access_cycles
        fs_cycles = 0   # buffered fs.cycles
        # the remaining per-event counters, buffered the same way; each
        # flushes to stats.X and fs.X with the same value at return
        n_plain = n_store = n_checkload = n_checkmiss = 0
        n_adv = n_spec = n_replay = n_defer = 0
        n_speccheck = n_recover = n_taken = n_fall = 0
        while True:
            fuel -= 1
            if fuel <= 0:
                fs.instructions += n_instr
                # every enclosing frame flushed its count at its _CALL,
                # so the per-function slices sum to the exact total here
                raise MachineFuelExhausted(
                    fn.name, f"#{block_index}",
                    sum(f.instructions for f in stats.fn_stats.values()))
            entered_at = cycle
            for instr in blocks[block_index]:
                code = instr[0]
                if code == _ADD:
                    sa = instr[4]
                    sb = instr[5]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[sa]
                    b = regs[sb]
                    dest = instr[3]
                    if a is nat or b is nat:
                        regs[dest] = nat    # poison propagates
                    else:
                        regs[dest] = a + b
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _BIN:
                    sa = instr[5]
                    sb = instr[6]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[sa]
                    b = regs[sb]
                    dest = instr[3]
                    if a is nat or b is nat:
                        regs[dest] = nat    # poison propagates
                    else:
                        regs[dest] = instr[4](a, b)
                    ready[dest] = cycle + instr[7]
                    from_load[dest] = False
                elif code == _CMPLT:
                    sa = instr[4]
                    sb = instr[5]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[sa]
                    b = regs[sb]
                    dest = instr[3]
                    if a is nat or b is nat:
                        regs[dest] = nat    # poison propagates
                    else:
                        regs[dest] = int(a < b)
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _MOV:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    regs[dest] = regs[src]
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _MOVI:
                    if slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    regs[dest] = instr[4]
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _LD:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    a = regs[src]
                    if a is nat:
                        raise MachineError(
                            "load address is NaT (unchecked speculative "
                            "value reached a non-speculative load)")
                    addr = int(a)
                    dest = instr[3]
                    try:
                        regs[dest] = memory[addr]
                    except KeyError:
                        raise MachineError(
                            f"load from unallocated address {addr}"
                        ) from None
                    # DataCache.load's L1-hit path, inlined (the common
                    # case by far); anything else falls through to the
                    # real method, which re-probes and fills
                    if instr[5]:
                        ready[dest] = cycle + cache_load(addr, True)
                    else:
                        line = addr // line_cells
                        l1e = l1_sets.get(line % l1_nsets)
                        if l1e is not None and line in l1e:
                            l1e.move_to_end(line)
                            cache.l1_hits += 1
                            ready[dest] = cycle + l1_latency
                        else:
                            ready[dest] = cycle + cache_load(addr, False)
                    from_load[dest] = True
                    n_plain += 1
                elif code == _BR:
                    src = instr[3]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    cond = regs[src]
                    if cond is nat:
                        raise MachineError(
                            "branch condition is NaT (unchecked "
                            "speculative value reached control flow)")
                    if cond:
                        block_index, taken = instr[4], instr[6]
                    else:
                        block_index, taken = instr[5], instr[7]
                    if taken:
                        n_taken += 1
                        cycle += 1 + branch_penalty
                        slots = 0
                        ports = 0
                    else:
                        n_fall += 1
                    n_instr += instr[8]
                    break
                elif code == _JMP:
                    if slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    block_index = instr[3]
                    if instr[4]:
                        n_taken += 1
                        cycle += 1 + branch_penalty
                        slots = 0
                        ports = 0
                    else:
                        n_fall += 1
                    n_instr += instr[5]
                    break
                elif code == _ST:
                    sa = instr[3]
                    sb = instr[4]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    a = regs[sa]
                    value = regs[sb]
                    if a is nat or value is nat:
                        raise MachineError(
                            "store consumed NaT (unchecked speculative "
                            "value reached memory)")
                    addr = int(a)
                    if addr not in memory:
                        raise MachineError(
                            f"store to unallocated address {addr}")
                    if instr[5]:
                        value = float(value)
                    memory[addr] = value
                    # ALAT.invalidate against an empty set is a no-op —
                    # probe first and skip the call (most stores never
                    # touch an armed address)
                    if al_sets.get(addr % al_nsets):
                        alat_invalidate(addr)
                    # DataCache.store with the line already resident in
                    # both levels is two LRU refreshes — inlined; any
                    # other case falls through to the real write-allocate
                    if instr[6]:
                        cache_store(addr, True)
                    else:
                        line = addr // line_cells
                        l2e = l2_sets.get(line % l2_nsets)
                        l1e = l1_sets.get(line % l1_nsets)
                        if (l2e is not None and line in l2e
                                and l1e is not None and line in l1e):
                            l2e.move_to_end(line)
                            l1e.move_to_end(line)
                        else:
                            cache_store(addr, False)
                    n_store += 1
                    if injector is not None:
                        injector.after_store(alat, cache)
                elif code == _REM:
                    sa = instr[4]
                    sb = instr[5]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[sa]
                    b = regs[sb]
                    dest = instr[3]
                    if a is nat or b is nat:
                        regs[dest] = nat    # poison propagates
                    elif type(a) is int and type(b) is int and b:
                        # c_rem's int branch unfolded (the pointer-chasing
                        # workloads are rem-heavy); floats and the
                        # divide-by-zero raise take the call
                        q = abs(a) // abs(b)
                        regs[dest] = a - (q if (a >= 0) == (b >= 0)
                                          else -q) * b
                    else:
                        regs[dest] = c_rem(a, b)
                    ready[dest] = cycle + instr[6]
                    from_load[dest] = False
                elif code == _LDC:
                    dest = instr[3]
                    a = regs[instr[4]]
                    if a is nat:
                        raise MachineError(
                            "check-load address is NaT (unchecked "
                            "speculative value)")
                    addr = int(a)
                    # one ALAT probe serves both stages: nothing touches
                    # the ALAT between the classic engine's stall-set
                    # peek and its execute-stage check, so their answers
                    # are always identical
                    hit = alat_check(dest, addr, frame)
                    if hit:
                        t = ready[dest]    # hit: bind only on the tag
                        binding = dest
                    else:
                        src = instr[4]
                        t = ready[src]
                        binding = src
                        r = ready[dest]
                        if r > t:
                            t = r
                            binding = dest
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 0
                        ports = 0
                    if not check_issue_free:
                        if slots >= issue_width or ports >= mem_ports:
                            cycle += 1
                            slots = 1
                            ports = 1
                        else:
                            slots += 1
                            ports += 1
                    n_checkload += 1
                    if hit:
                        # hit: the register value stands at ~zero cost
                        ready[dest] = cycle + check_hit_latency
                        from_load[dest] = False
                    else:
                        try:
                            regs[dest] = memory[addr]
                        except KeyError:
                            raise MachineError(
                                f"check load from unallocated address "
                                f"{addr}") from None
                        alat_arm(dest, addr, frame)
                        if instr[5]:
                            ready[dest] = cycle + cache_load(addr, True)
                        else:
                            line = addr // line_cells
                            l1e = l1_sets.get(line % l1_nsets)
                            if l1e is not None and line in l1e:
                                l1e.move_to_end(line)
                                cache.l1_hits += 1
                                ready[dest] = cycle + l1_latency
                            else:
                                ready[dest] = cycle + cache_load(
                                    addr, False)
                        from_load[dest] = True
                        n_checkmiss += 1
                elif code == _LDA:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    dest = instr[3]
                    a = regs[src]
                    if a is nat:
                        regs[dest] = nat    # poison propagates, no arm
                        alat_disarm(dest, frame)
                        ready[dest] = cycle + 1
                    else:
                        addr = int(a)
                        value = mem_get(addr)
                        # no injector hook here: a real ld.a faults
                        # immediately (only ld.s defers), so its value may
                        # be consumed before any check — poisoning it would
                        # inject a wrong execution, not a misspeculation
                        if value is None:
                            regs[dest] = nat    # deferred fault
                            alat_disarm(dest, frame)
                            n_defer += 1
                        else:
                            regs[dest] = value
                            alat_arm(dest, addr, frame)
                        if instr[5]:
                            ready[dest] = cycle + cache_load(addr, True)
                        else:
                            line = addr // line_cells
                            l1e = l1_sets.get(line % l1_nsets)
                            if l1e is not None and line in l1e:
                                l1e.move_to_end(line)
                                cache.l1_hits += 1
                                ready[dest] = cycle + l1_latency
                            else:
                                ready[dest] = cycle + cache_load(
                                    addr, False)
                    from_load[dest] = True
                    n_adv += 1
                elif code == _LDS:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    dest = instr[3]
                    a = regs[src]
                    if a is nat:
                        regs[dest] = nat    # poison propagates
                        ready[dest] = cycle + 1
                    else:
                        addr = int(a)
                        value = mem_get(addr)
                        if value is None or (
                                injector is not None
                                and injector.poison_load("ld.s", addr)):
                            regs[dest] = nat    # deferred fault
                            n_defer += 1
                        else:
                            regs[dest] = value
                        if instr[5]:
                            ready[dest] = cycle + cache_load(addr, True)
                        else:
                            line = addr // line_cells
                            l1e = l1_sets.get(line % l1_nsets)
                            if l1e is not None and line in l1e:
                                l1e.move_to_end(line)
                                cache.l1_hits += 1
                                ready[dest] = cycle + l1_latency
                            else:
                                ready[dest] = cycle + cache_load(
                                    addr, False)
                    from_load[dest] = True
                    n_spec += 1
                elif code == _LDR:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    a = regs[src]
                    if a is nat:
                        raise MachineError(
                            "ld.r address is NaT (recovery block did not "
                            "replay the address chain)")
                    addr = int(a)
                    dest = instr[3]
                    # replay never faults: an unmapped cell reads as the
                    # architectural zero the seed's ld.s delivered
                    regs[dest] = mem_get(addr, 0)
                    if instr[5]:
                        ready[dest] = cycle + cache_load(addr, True)
                    else:
                        line = addr // line_cells
                        l1e = l1_sets.get(line % l1_nsets)
                        if l1e is not None and line in l1e:
                            l1e.move_to_end(line)
                            cache.l1_hits += 1
                            ready[dest] = cycle + l1_latency
                        else:
                            ready[dest] = cycle + cache_load(addr, False)
                    from_load[dest] = True
                    n_replay += 1
                elif code == _CHK:
                    src = instr[3]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    n_speccheck += 1
                    if regs[src] is nat:
                        # deferred fault caught: enter the recovery block
                        n_recover += 1
                        block_index, taken = instr[5], instr[7]
                    else:
                        block_index, taken = instr[4], instr[6]
                    if taken:
                        n_taken += 1
                        cycle += 1 + branch_penalty
                        slots = 0
                        ports = 0
                    else:
                        n_fall += 1
                    n_instr += instr[8]
                    break
                elif code == _LEA:
                    if slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    regs[dest] = global_addr[instr[4]] if instr[5] \
                        else addr_of[instr[4]]
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _UN:
                    src = instr[5]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    a = regs[src]
                    regs[dest] = nat if a is nat else instr[4](a)
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _CALL:
                    t = cycle
                    binding = False
                    for src in instr[1]:
                        r = ready[src]
                        if r > t:
                            t = r
                            binding = from_load[src]
                    if t > cycle:
                        if binding:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    callee = funcs_get(instr[4])
                    if callee is None:
                        raise MachineError(f"call to unknown function "
                                           f"{instr[4]!r}")
                    # bill this block's instructions up to and including
                    # the call (instr[5] is its position + 1); the block
                    # terminator then adds the whole block length, so
                    # the negative remainder cancels exactly
                    fs.instructions += n_instr + instr[5]
                    n_instr = -instr[5]
                    self.cycle = cycle
                    self.slots = slots
                    self.ports = ports
                    self.fuel = fuel
                    result = self._call(callee,
                                        [regs[s] for s in instr[1]])
                    cycle = self.cycle
                    slots = self.slots
                    ports = self.ports
                    fuel = self.fuel
                    dest = instr[3]
                    if dest is not None:
                        if result is None:
                            raise MachineError(
                                f"void result of {instr[4]} used")
                        regs[dest] = result
                        ready[dest] = cycle
                        from_load[dest] = False
                    entered_at = cycle  # callee cycles are its own
                elif code == _RET:
                    src = instr[3]
                    if src is not None:
                        t = ready[src]
                        if t > cycle:
                            if from_load[src]:
                                da_cycles += t - cycle
                            cycle = t
                            slots = 1
                            ports = 0
                        elif slots >= issue_width:
                            cycle += 1
                            slots = 1
                            ports = 0
                        else:
                            slots += 1
                        retval: Optional[Value] = regs[src]
                    else:
                        if slots >= issue_width:
                            cycle += 1
                            slots = 1
                            ports = 0
                        else:
                            slots += 1
                        retval = None
                    n_instr += instr[4]
                    fs_cycles += cycle - entered_at
                    cycle += self.call_overhead
                    self.cycle = cycle
                    self.slots = slots
                    self.ports = ports
                    self.fuel = fuel
                    # flush the buffered counters to the per-function
                    # slice only; the whole-run totals are the exact sum
                    # of the slices, recovered once in run()
                    fs.instructions += n_instr
                    stats.data_access_cycles += da_cycles
                    fs.cycles += fs_cycles
                    if n_taken:
                        fs.taken_branches += n_taken
                    if n_fall:
                        fs.fallthroughs += n_fall
                    if n_plain:
                        fs.plain_loads += n_plain
                    if n_store:
                        fs.stores += n_store
                    if n_checkload:
                        fs.check_loads += n_checkload
                    if n_checkmiss:
                        fs.check_misses += n_checkmiss
                    if n_adv:
                        fs.advanced_loads += n_adv
                    if n_spec:
                        fs.spec_loads += n_spec
                    if n_replay:
                        fs.replay_loads += n_replay
                    if n_defer:
                        fs.deferred_faults += n_defer
                    if n_speccheck:
                        fs.spec_checks += n_speccheck
                    if n_recover:
                        fs.spec_recoveries += n_recover
                    return retval
                elif code == _ALLOC:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[src]
                    if a is nat:
                        raise MachineError(
                            "alloc size is NaT (unchecked speculative "
                            "value)")
                    dest = instr[3]
                    regs[dest] = self._allocate(int(a))
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _PRINT:
                    t = cycle
                    binding = False
                    for src in instr[1]:
                        r = ready[src]
                        if r > t:
                            t = r
                            binding = from_load[src]
                    if t > cycle:
                        if binding:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    parts = []
                    for src in instr[1]:
                        value = regs[src]
                        if value is nat:
                            raise MachineError(
                                "print consumed NaT (unchecked "
                                "speculative value reached output)")
                        parts.append(f"{value:.6g}"
                                     if isinstance(value, float)
                                     else str(value))
                    self.output.append(" ".join(parts))
                else:   # _INPUT / _INPUTF
                    if slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    value = self._next_input()
                    regs[dest] = float(value) if code == _INPUTF \
                        else int(value)
                    ready[dest] = cycle + 1
                    from_load[dest] = False
            else:
                raise MachineError(f"{fn.name}: block without terminator")
            fs_cycles += cycle - entered_at


#: The selectable dispatch implementations (docs/performance.md).
ENGINES = ("predecode", "trace", "classic")


def run_program(program: MProgram, inputs: Sequence[Value] = (),
                fuel: int = 200_000_000, *,
                issue_width: int = 4, mem_ports: int = 2,
                branch_penalty: int = 1, call_overhead: int = 2,
                alat: Optional[ALAT] = None,
                cache: Optional[DataCache] = None,
                check_hit_latency: int = 0,
                check_latency: Optional[int] = None,
                check_issue_free: bool = False,
                mem_latency: Optional[int] = None,
                injector=None,
                engine: str = "predecode",
                machine_overrides: Optional[dict] = None
                ) -> Tuple[MachineStats, List[str]]:
    """Simulate ``program`` on the IA-64-flavoured machine.

    Returns ``(MachineStats, output lines)``.  ``inputs`` feeds the
    ``input()``/``inputf()`` intrinsics; ``fuel`` bounds executed basic
    blocks.  The keyword knobs (see docs/machine_model.md) configure the
    machine; ``machine_overrides`` may carry the same knobs as a dict
    (they win over the direct keywords).  ``check_latency`` is accepted
    as an alias of ``check_hit_latency``; ``mem_latency`` overrides the
    cache's memory latency without replacing its geometry.

    ``engine`` selects the dispatch implementation: ``"predecode"``
    (the default — translation-time operand pre-decoding,
    docs/performance.md), ``"trace"`` (the hot-trace JIT layered on
    predecode: hot paths compile into fused closures,
    :mod:`repro.target.machine_trace`) or ``"classic"`` (the frozen
    pre-PR interpretive loop, kept as the wall-clock baseline the perf
    benchmark measures against).  All three produce identical output
    and identical architectural :class:`MachineStats` on every run;
    the trace engine additionally reports its dispatch-machinery
    counters (``traces_compiled``/``trace_hits``/``side_exits``/
    ``trace_dyn_instr``), which the other engines leave at zero.

    The passed ``alat``/``cache`` objects are treated as *configuration*:
    the run clones them cold rather than mutating them, so one object can
    parameterize many runs.  ``injector`` (a
    :class:`repro.hazards.Injector`) is cloned the same way and gets to
    perturb the run: poison speculative loads, force ALAT evictions and
    flush the cache after stores — never affecting a correct program's
    output, only its cycle count (docs/recovery.md).
    """
    if machine_overrides:
        return run_program(program, inputs, fuel,
                           **{**dict(issue_width=issue_width,
                                     mem_ports=mem_ports,
                                     branch_penalty=branch_penalty,
                                     call_overhead=call_overhead,
                                     alat=alat, cache=cache,
                                     check_hit_latency=check_hit_latency,
                                     check_latency=check_latency,
                                     check_issue_free=check_issue_free,
                                     mem_latency=mem_latency,
                                     injector=injector, engine=engine),
                              **machine_overrides})
    if check_latency is not None:
        check_hit_latency = check_latency
    if engine not in ENGINES:
        raise MachineError(f"unknown engine {engine!r} "
                           f"(expected one of {ENGINES})")
    alat = alat.clone() if alat is not None else ALAT()
    cache = cache.clone(mem_latency) if cache is not None \
        else DataCache(**({} if mem_latency is None
                          else {"mem_latency": mem_latency}))
    if injector is not None:
        injector = injector.clone()
    if engine == "classic":
        from .machine_classic import _ClassicMachine

        machine_cls = _ClassicMachine
    elif engine == "trace":
        from .machine_trace import _TraceMachine

        machine_cls = _TraceMachine
    else:
        machine_cls = _Machine
    machine = machine_cls(program, inputs, fuel, issue_width, mem_ports,
                          branch_penalty, call_overhead, alat, cache,
                          check_hit_latency, check_issue_free, injector)
    return machine.run()
