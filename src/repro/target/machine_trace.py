"""The *trace* execution engine: a hot-trace JIT for the simulator.

The predecode engine (:mod:`repro.target.machine`) pays one Python-level
dispatch — loop step, opcode test chain, payload tuple indexing — per
dynamic instruction.  This engine removes that cost on the paths that
dominate every campaign and benchmark, the way dynamic binary
translators (Dynamo, trace caches) do:

* **Warm-up profiling.**  Execution starts in a verbatim copy of the
  predecode dispatch loop.  Every block that could legally join a trace
  (anything without a ``call``/``ret``) carries an arrival counter in
  ``_TFunc.tr_tbl``; loop heads and entry blocks of hot callees cross
  :data:`HOT_THRESHOLD` quickly.
* **Trace recording.**  When a head turns hot, the interpreter keeps
  executing but records the block path actually taken — the
  most-recently-executed-tail flavour of mutual-most-likely successor
  selection — until the path revisits a recorded block (a loop closed),
  reaches an ineligible or already-compiled block, or hits
  :data:`TRACE_MAX_BLOCKS`.
* **Trace compilation.**  The recorded path is compiled into **one
  fused Python closure**: real generated source, ``compile()``-d and
  ``exec``-d once.  Operand register numbers, immediates, latencies,
  machine geometry (issue width, ports, penalties, cache shape) and
  global addresses are all baked in as literals; ALU lambdas are
  inlined as expressions.  Scoreboard state and every
  :class:`~repro.target.stats.MachineStats` counter live in closure
  locals and are applied once, at the trace boundary.
* **Deoptimization.**  Conditional branches and ``chk.s`` checks guard
  the recorded direction; the untaken arm returns the full
  architectural state (next block, cycle/slots/ports, fuel, counter
  deltas) and the generic predecode loop resumes exactly where the
  classic engine would be — ALAT, NaT poison, cache and injector
  perturbations all flow through the *same* calls in the same order,
  which is why the engine stays bit-identical to ``machine_classic``
  (pinned by tests/target/test_trace_engine.py, the fuzz corpus and
  the fault-injection campaign).

Traces live in ``_TFunc.tr_tbl`` — a per-translated-function table
built fresh for every run, so there is nothing to invalidate: programs
are immutable after codegen and a new run gets a new table.  Generated
*code objects* are memoized per ``MProgram`` (a
``WeakKeyDictionary``), so a campaign that simulates the same program
hundreds of times compiles each trace's source once and only re-binds
the per-run environment.

Dispatch-machinery counters (``traces_compiled``, ``trace_hits``,
``side_exits``, ``trace_dyn_instr``) are reported on
:class:`MachineStats` but excluded from its :meth:`arch_dict` — they
describe this engine, not the simulated architecture.

The hot threshold is tunable via the ``REPRO_TRACE_HOT`` environment
variable (docs/performance.md).
"""

from __future__ import annotations

import math
import os
import re
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from ..profiling.interp import c_div, c_rem
from .engine_common import (_ADD, _ALLOC, _BIN, _BIN_FN, _BR, _CALL,
                            _CHK, _CMPLT, _INPUT, _INPUTF, _JMP, _LD,
                            _LDA, _LDC, _LDR, _LDS, _LEA, _MOV, _MOVI,
                            _NO_FRAME_ADDRS, _PRINT, _REM, _RET, _ST,
                            _UN, _UN_FN, NAT, MachineError,
                            MachineFuelExhausted, Value, _TFunc)
from .machine import _Machine

#: arrivals at a block before it is considered a hot trace head
HOT_THRESHOLD = int(os.environ.get("REPRO_TRACE_HOT", "16"))

#: recording stops after this many blocks (bounds generated-code size)
TRACE_MAX_BLOCKS = 64

#: a non-looping trace shorter than this many instructions is not worth
#: the dispatch round-trip; its head is marked never-trace instead
MIN_TRACE_INSTRS = 4

#: generated code objects memoized per program: source compilation is
#: the expensive step, and a campaign re-simulates the same immutable
#: MProgram hundreds of times.  Keyed by the environment literals baked
#: into the source, so a different machine geometry regenerates.
_CODE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: ALU lambdas inlined as expressions at trace-compile time ("div"
#: stays a call: C semantics live in c_div/c_rem)
_BIN_EXPR = {
    _BIN_FN["sub"]: "({a} - {b})",
    _BIN_FN["mul"]: "({a} * {b})",
    _BIN_FN["div"]: "c_div({a}, {b})",
    _BIN_FN["cmp.le"]: "int({a} <= {b})",
    _BIN_FN["cmp.gt"]: "int({a} > {b})",
    _BIN_FN["cmp.ge"]: "int({a} >= {b})",
    _BIN_FN["cmp.eq"]: "int({a} == {b})",
    _BIN_FN["cmp.ne"]: "int({a} != {b})",
    _BIN_FN["and"]: "({a} & {b})",
    _BIN_FN["or"]: "({a} | {b})",
    _BIN_FN["xor"]: "({a} ^ {b})",
    _BIN_FN["shl"]: "({a} << {b})",
    _BIN_FN["shr"]: "({a} >> {b})",
}

_UN_EXPR = {
    _UN_FN["neg"]: "(-{a})",
    _UN_FN["not"]: "int(not {a})",
    _UN_FN["bnot"]: "(~int({a}))",
    _UN_FN["cvt.int"]: "int({a})",
    _UN_FN["cvt.float"]: "float({a})",
}

#: the counter slots every trace returns, in tuple order (after
#: next_block/cycle/slots/ports/fuel, before the exit kind).  ``n_cx``
#: is the cycle span the dispatch loop must *exclude* from the caller's
#: fs.cycles: inlined-call spans, which the interpreter's
#: ``entered_at = cycle`` reset after a call would never attribute
_COUNTERS = ("n_i", "da", "n_pl", "n_st", "n_cl", "n_cm", "n_ad",
             "n_sp", "n_rp", "n_df", "n_sk", "n_rc", "n_tk", "n_fa",
             "n_cx")

_RET_TUPLE = "cycle, slots, ports, fuel, " + ", ".join(_COUNTERS)

#: exit kinds in the closure's final tuple slot
_EXIT_NORMAL = 0        # the recorded path left the trace
_EXIT_SIDE = 1          # a guard failed: deoptimize to the interpreter
_EXIT_FUEL = 2          # fuel would expire at next_block: let the
#                         interpreter's own decrement raise exactly

#: opcodes a leaf callee may contain and still be inlined into a
#: caller's trace.  ALAT-keyed ops (ld.a/ld.s/ld.r/ld.c) are out — they
#: reference the callee's frame serial — as is anything branching
#: (the inlined path must be the only path) or frame-relative
_INLINE_OK = frozenset((_ADD, _CMPLT, _BIN, _REM, _MOV, _MOVI, _LD,
                        _ST, _LEA, _UN, _ALLOC, _PRINT, _INPUT,
                        _INPUTF))
_INLINE_MAX_BLOCKS = 8
_INLINE_MAX_INSTRS = 48

#: register-array references in callee-rendered lines (always literal
#: indices) are renamed to per-site locals; per-function counter bumps
#: on a branch-free path are compile-time constants, stripped and
#: flushed straight to the callee's FnStats slice
_RX_REG = re.compile(r"\bregs\[(\d+)\]")
_RX_RDY = re.compile(r"\bready\[(\d+)\]")
_RX_FL = re.compile(r"\bfrom_load\[(\d+)\]")
_RX_CN = re.compile(r"^\s*n_([a-z]{1,2}) \+= (\d+)$")
_FS_FIELD = {"i": "instructions", "pl": "plain_loads", "st": "stores",
             "cl": "check_loads", "cm": "check_misses",
             "ad": "advanced_loads", "sp": "spec_loads",
             "rp": "replay_loads", "df": "deferred_faults",
             "sk": "spec_checks", "rc": "spec_recoveries",
             "tk": "taken_branches", "fa": "fallthroughs"}


class _TraceWriter:
    """Generates the fused closure's source for one recorded path.

    Beyond flattening dispatch, the writer runs two abstract
    interpretations over the recorded instructions and specializes the
    emitted code with what they prove:

    * **Symbolic scoreboard.**  For each register it tracks the
      relation between ``ready[r]`` and ``cycle`` — ``EXACT k``
      (``ready[r] == cycle + k``, established by the write
      ``ready[r] = cycle + latency`` and maintained across known cycle
      advances) or ``at-most-0`` (``ready[r] <= cycle``, established by
      any issue that stalled on ``r``; monotone under cycle growth).
      A consumer whose sources are all provably ready emits no stall
      test at all, and a def-use chain with a provable stall emits the
      literal ``cycle += k`` the dynamic test would have computed.
      ``slots``/``ports`` are tracked the same way, so runs of
      provably-ready instructions decay to bare ``slots += 1``
      accounting with the issue-width rollover decided at compile time.
    * **NaT proofs.**  A register is proven non-NaT by instructions
      that cannot produce poison (``movi``, ``lea``, ``alloc``,
      ``input``, any load that faults rather than defers) or by
      surviving an instruction that raises on poison (store address,
      branch condition, ...).  Proven registers skip the poison
      check/propagate branches entirely; only ``ld.s``/``ld.a``
      results and values entering the trace from outside stay dynamic.

    Entry state comes from the interpreter and is arbitrary, so a
    straight-line trace proves everything from its own instructions.
    **Loop traces are peeled**: the body is emitted once from the
    unknown entry state (the peel), the abstract state at its back
    edge seeds a fixpoint (re-running the transfer function and
    joining until stable), and the steady-state body inside
    ``while True:`` is compiled from the fixpoint — so the code the
    loop actually spins in knows every latency, slot and NaT proof the
    first iteration established.  Redundant architectural-array writes
    (``from_load``/``ready`` stores whose value provably already
    holds) are elided; the arrays are exact again at every exit.
    """

    def __init__(self, machine: "_TraceMachine", fn: _TFunc) -> None:
        self.m = machine
        self.fn = fn
        self.lines: List[str] = []
        self.used = set()       # environment names the source references
        self.consts: List[object] = []   # per-site objects (symbols)
        self.iw = machine.issue_width
        self.mp = machine.mem_ports
        self.bp = machine.branch_penalty
        self.co = machine.call_overhead
        self.chl = machine.check_hit_latency
        self.cif = machine.check_issue_free
        cache = machine.cache
        self.lc = cache.line_cells
        self.l1n = cache._l1.nsets
        self.l1l = cache.l1_latency
        self.l2n = cache._l2.nsets
        self.aln = machine.alat.nsets
        self.injected = machine.injector is not None
        # abstract state (reset per trace; see class docstring)
        self.rs: Dict[int, tuple] = {}   # reg -> ("e", k) | ("a0",)
        self.fl: Dict[int, bool] = {}    # reg -> known from_load flag
        self.nonnat = set()              # regs proven non-NaT
        #: reg -> source regs: dest is NaT *iff* one of them is (exact
        #: poison propagation), so a later proof flows backwards
        self.natdep: Dict[int, tuple] = {}
        self.sk: Optional[int] = None    # slots, when statically known
        self.pk: Optional[int] = None    # ports, when statically known
        # leaf-call inlining (see inline_call): per-site serial, the
        # known-cycle-delta accumulator active while a callee body is
        # being emitted, the renaming flag, and the FnStats slices the
        # closure preamble must bind
        self.site = 0
        self.cdk: Optional[int] = None
        self.rename: Optional[int] = None
        self.callee_fs: List[str] = []

    # ---- low-level emission -------------------------------------------
    def w(self, ind: int, text: str) -> None:
        self.lines.append("    " * ind + text)

    def const(self, obj: object) -> str:
        for i, existing in enumerate(self.consts):
            if existing is obj:
                return f"k{i}"
        self.consts.append(obj)
        return f"k{len(self.consts) - 1}"

    def ret(self, target: object, kind: int) -> str:
        return f"return ({target}, {_RET_TUPLE}, {kind})"

    # ---- abstract-state transitions -----------------------------------
    def adv_known(self, d: int) -> None:
        """cycle advanced by exactly ``d`` (caller emitted it)."""
        if d:
            for r, st in self.rs.items():
                if st[0] == "e":
                    self.rs[r] = ("e", st[1] - d)
            if self.cdk is not None:
                self.cdk += d

    def adv_unknown(self) -> None:
        """cycle advanced by an unknown amount >= 0."""
        for r, st in list(self.rs.items()):
            if st[0] == "e":
                if st[1] <= 0:
                    self.rs[r] = ("a0",)
                else:
                    del self.rs[r]
        self.cdk = None

    def put_fl(self, ind: int, dest: int, flag: bool) -> None:
        """``from_load[dest] = flag`` — elided when the array provably
        already holds ``flag``."""
        if self.fl.get(dest) is not flag:
            self.w(ind, f"from_load[{dest}] = {flag}")

    def put_ready(self, ind: int, dest: int, lat: int) -> None:
        """``ready[dest] = cycle + lat`` — elided when the scoreboard
        array provably already holds exactly that value."""
        if self.rs.get(dest) != ("e", lat):
            self.w(ind, f"ready[{dest}] = cycle + {lat}" if lat
                   else f"ready[{dest}] = cycle")

    def set_dest(self, dest: int, lat: Optional[int],
                 from_load: bool, nonnat: bool,
                 dep: tuple = ()) -> None:
        """Record the scoreboard effect of writing ``dest``.  ``dep``
        names the sources whose poison the write propagates exactly
        (``dest`` is NaT iff one of them is)."""
        if lat is None:
            self.rs.pop(dest, None)
        else:
            self.rs[dest] = ("e", lat)
        self.fl[dest] = from_load
        if nonnat:
            self.nonnat.add(dest)
        else:
            self.nonnat.discard(dest)
        # the old value of dest dies: so do poison links through it
        self.natdep.pop(dest, None)
        for d, srcs in list(self.natdep.items()):
            if dest in srcs:
                del self.natdep[d]
        if dep and not nonnat:
            self.natdep[dest] = dep

    def prove(self, src: int) -> None:
        """Mark ``src`` non-NaT and flow the proof backwards through
        exact poison-propagation links."""
        stack = [src]
        while stack:
            r = stack.pop()
            if r not in self.nonnat:
                self.nonnat.add(r)
                stack.extend(self.natdep.get(r, ()))

    def stall_of(self, s: int):
        """``None`` unknown, ``0`` provably ready, ``k > 0`` provably
        stalls exactly k cycles."""
        st = self.rs.get(s)
        if st is None:
            return None
        if st[0] == "a0" or st[1] <= 0:
            return 0
        return st[1]

    # ---- state snapshots (loop fixpoint) -------------------------------
    def clear_state(self) -> None:
        self.rs = {}
        self.fl = {}
        self.nonnat = set()
        self.natdep = {}
        self.sk = None
        self.pk = None

    def snapshot(self) -> tuple:
        return (dict(self.rs), dict(self.fl), set(self.nonnat),
                dict(self.natdep), self.sk, self.pk)

    def restore(self, state: tuple) -> None:
        rs, fl, nonnat, natdep, sk, pk = state
        self.rs = dict(rs)
        self.fl = dict(fl)
        self.nonnat = set(nonnat)
        self.natdep = dict(natdep)
        self.sk = sk
        self.pk = pk

    @staticmethod
    def merge(sa: tuple, sb: tuple) -> tuple:
        """The join: keep only facts both states prove.  Two exact-but-
        different offsets survive as ``at-most-0`` when both are."""
        rs = {}
        for r, st in sa[0].items():
            st2 = sb[0].get(r)
            if st2 is None:
                continue
            if st == st2:
                rs[r] = st
            elif ((st[0] == "a0" or st[1] <= 0)
                    and (st2[0] == "a0" or st2[1] <= 0)):
                rs[r] = ("a0",)
        fl = {r: v for r, v in sa[1].items() if sb[1].get(r) is v}
        dep = {r: v for r, v in sa[3].items() if sb[3].get(r) == v}
        return (rs, fl, sa[2] & sb[2], dep,
                sa[4] if sa[4] == sb[4] else None,
                sa[5] if sa[5] == sb[5] else None)

    @staticmethod
    def state_key(state: tuple) -> tuple:
        return (tuple(sorted(state[0].items())),
                tuple(sorted(state[1].items())),
                tuple(sorted(state[2])),
                tuple(sorted(state[3].items())), state[4], state[5])

    # ---- stall/issue emission -----------------------------------------
    def issue(self, ind: int, srcs: Sequence[int], mem: bool) -> None:
        """The fused stall+issue stage for one instruction, specialized
        as far as the symbolic scoreboard allows."""
        ks = [self.stall_of(s) for s in srcs]
        if any(k is None for k in ks):
            # provably-ready sources can never attain the dynamic max
            # (their ready <= cycle < any stalling source), so the
            # emitted stall test only scans the unknown ones — unless a
            # source provably stalls, which re-enters the full scan to
            # keep the binding order exact
            if max((k for k in ks if k is not None), default=0) == 0:
                srcs = [s for s, k in zip(srcs, ks) if k is None]
            self.issue_generic(ind, srcs, mem)
            return
        K = max(ks, default=0)
        if K == 0:
            self.rollover(ind, mem)
            return
        # provable stall: the dynamic max/test collapses to a constant
        # cycle bump.  Binding = first source attaining the max (the
        # dispatch loop replaces only on strictly-greater).
        binding = next(s for s, k in zip(srcs, ks) if k == K)
        fb = self.fl.get(binding)
        if fb is True:
            self.w(ind, f"da += {K}")
        elif fb is None:
            self.w(ind, f"if from_load[{binding}]:")
            self.w(ind + 1, f"da += {K}")
        self.w(ind, f"cycle += {K}")
        self.w(ind, "slots = 1")
        self.w(ind, f"ports = {1 if mem else 0}")
        self.adv_known(K)
        self.sk = 1
        self.pk = 1 if mem else 0

    def rollover(self, ind: int, mem: bool) -> None:
        """Slot/port accounting when no source can stall."""
        w = self.w
        if not mem:
            if self.sk is not None:
                if self.sk >= self.iw:
                    w(ind, "cycle += 1")
                    w(ind, "slots = 1")
                    w(ind, "ports = 0")
                    self.adv_known(1)
                    self.sk = 1
                    self.pk = 0
                else:
                    w(ind, "slots += 1")
                    self.sk += 1
            else:
                w(ind, f"if slots >= {self.iw}:")
                w(ind + 1, "cycle += 1")
                w(ind + 1, "slots = 1")
                w(ind + 1, "ports = 0")
                w(ind, "else:")
                w(ind + 1, "slots += 1")
                self.adv_unknown()
                if self.pk != 0:
                    self.pk = None
        else:
            if self.sk is not None and self.pk is not None:
                if self.sk >= self.iw or self.pk >= self.mp:
                    w(ind, "cycle += 1")
                    w(ind, "slots = 1")
                    w(ind, "ports = 1")
                    self.adv_known(1)
                    self.sk = 1
                    self.pk = 1
                else:
                    w(ind, "slots += 1")
                    w(ind, "ports += 1")
                    self.sk += 1
                    self.pk += 1
            else:
                w(ind, f"if slots >= {self.iw} or ports >= {self.mp}:")
                w(ind + 1, "cycle += 1")
                w(ind + 1, "slots = 1")
                w(ind + 1, "ports = 1")
                w(ind, "else:")
                w(ind + 1, "slots += 1")
                w(ind + 1, "ports += 1")
                self.adv_unknown()
                self.sk = None
                self.pk = None

    def issue_generic(self, ind: int, srcs: Sequence[int],
                      mem: bool) -> None:
        """The full dynamic stall+issue block (sources unknown)."""
        w = self.w
        p = 1 if mem else 0
        srcs = list(srcs)
        if len(srcs) == 1:
            src = srcs[0]
            w(ind, f"t = ready[{src}]")
            w(ind, "if t > cycle:")
            f = self.fl.get(src)
            if f is True:
                w(ind + 1, "da += t - cycle")
            elif f is None:
                w(ind + 1, f"if from_load[{src}]:")
                w(ind + 2, "da += t - cycle")
            w(ind + 1, "cycle = t")
            w(ind + 1, "slots = 1")
            w(ind + 1, f"ports = {p}")
        elif len(srcs) == 2:
            sa, sb = srcs
            fa, fb = self.fl.get(sa), self.fl.get(sb)
            # binding only matters for da attribution: skip tracking
            # when both flags agree statically.  Inside an inlined
            # callee the binding's *flag value* is tracked instead of
            # its register number — the renamer only rewrites literal
            # array indices
            track = not (fa is fb and fa is not None)
            byval = self.rename is not None
            w(ind, f"t = ready[{sa}]")
            if track:
                w(ind, f"_bf = from_load[{sa}]" if byval else f"_b = {sa}")
            w(ind, f"r = ready[{sb}]")
            w(ind, "if r > t:")
            w(ind + 1, "t = r")
            if track:
                w(ind + 1,
                  f"_bf = from_load[{sb}]" if byval else f"_b = {sb}")
            w(ind, "if t > cycle:")
            if track:
                w(ind + 1, "if _bf:" if byval else "if from_load[_b]:")
                w(ind + 2, "da += t - cycle")
            elif fa is True:
                w(ind + 1, "da += t - cycle")
            w(ind + 1, "cycle = t")
            w(ind + 1, "slots = 1")
            w(ind + 1, f"ports = {p}")
        else:           # print: max over an unrolled source list
            w(ind, "t = cycle")
            w(ind, "_bl = False")
            for s in srcs:
                w(ind, f"r = ready[{s}]")
                w(ind, "if r > t:")
                w(ind + 1, "t = r")
                w(ind + 1, f"_bl = from_load[{s}]")
            w(ind, "if t > cycle:")
            w(ind + 1, "if _bl:")
            w(ind + 2, "da += t - cycle")
            w(ind + 1, "cycle = t")
            w(ind + 1, "slots = 1")
            w(ind + 1, f"ports = {p}")
        if mem:
            w(ind, f"elif slots >= {self.iw} or ports >= {self.mp}:")
        else:
            w(ind, f"elif slots >= {self.iw}:")
        w(ind + 1, "cycle += 1")
        w(ind + 1, "slots = 1")
        w(ind + 1, f"ports = {p}")
        w(ind, "else:")
        w(ind + 1, "slots += 1")
        if mem:
            w(ind + 1, "ports += 1")
        # after any issue, every stall source is at-most-0 (we waited)
        self.adv_unknown()
        for s in srcs:
            self.rs[s] = ("a0",)
        self.sk = None
        if mem or self.pk != 0:
            self.pk = None

    # ---- memory-latency completion ------------------------------------
    def load_ready(self, ind: int, dest: int, fp: bool) -> None:
        """``ready[dest]`` from the cache — the inlined L1-hit fast
        path of the predecode engine, or the full call for floats."""
        w = self.w
        self.used.add("cache_load")
        if fp:
            w(ind, f"ready[{dest}] = cycle + cache_load(addr, True)")
            return
        self.used.update(("l1_sets", "cache"))
        w(ind, f"line = addr // {self.lc}")
        w(ind, f"l1e = l1_sets.get(line % {self.l1n})")
        w(ind, "if l1e is not None and line in l1e:")
        w(ind + 1, "l1e.move_to_end(line)")
        w(ind + 1, "cache.l1_hits += 1")
        w(ind + 1, f"ready[{dest}] = cycle + {self.l1l}")
        w(ind, "else:")
        w(ind + 1, f"ready[{dest}] = cycle + cache_load(addr, False)")

    # ---- straight-line instructions -----------------------------------
    def alu_result(self, ind: int, dest: int, sa: int, sb: int,
                   expr: str, lat: int, exact: bool = True) -> None:
        """Result write for a two-source ALU op: one line when both
        inputs are proven clean, the poison-propagation split
        otherwise.  ``exact`` means the clean expression can never
        itself produce NaT (true for every builtin op), so the poison
        link is exact and proofs flow backwards through it."""
        w = self.w
        if sa in self.nonnat and sb in self.nonnat:
            w(ind, f"regs[{dest}] = "
                   + expr.format(a=f"regs[{sa}]", b=f"regs[{sb}]"))
            clean = True
        else:
            self.used.add("nat")
            w(ind, f"a = regs[{sa}]")
            w(ind, f"b = regs[{sb}]")
            w(ind, "if a is nat or b is nat:")
            w(ind + 1, f"regs[{dest}] = nat")
            w(ind, "else:")
            w(ind + 1, f"regs[{dest}] = " + expr.format(a="a", b="b"))
            clean = False
        self.put_ready(ind, dest, lat)
        self.put_fl(ind, dest, False)
        self.set_dest(dest, lat, False, clean,
                      (sa, sb) if exact else ())

    def nat_guard(self, ind: int, src: int, message: str) -> None:
        """Raise on poison unless ``src`` is already proven clean;
        either way ``src`` (and whatever fed it) is clean afterwards."""
        if src not in self.nonnat:
            self.used.update(("nat", "MachineError"))
            self.w(ind, f"if regs[{src}] is nat:")
            self.w(ind + 1, "raise MachineError(")
            self.w(ind + 2, f"{message!r})")
            self.prove(src)

    def emit_instr(self, ind: int, instr: tuple) -> None:
        w = self.w
        code = instr[0]
        if code == _ADD or code == _CMPLT:
            dest, sa, sb = instr[3], instr[4], instr[5]
            self.issue(ind, (sa, sb), False)
            expr = "({a} + {b})" if code == _ADD else "int({a} < {b})"
            self.alu_result(ind, dest, sa, sb, expr, 1)
        elif code == _BIN:
            dest, fn, sa, sb, lat = (instr[3], instr[4], instr[5],
                                     instr[6], instr[7])
            self.issue(ind, (sa, sb), False)
            if fn is _BIN_FN["div"]:
                # C-truncated division: floor-divide plus a one-step
                # correction when the signs differ and a remainder
                # exists; floats and b == 0 keep c_div's exact
                # behaviour (including its InterpError)
                self.used.add("c_div")
                clean = sa in self.nonnat and sb in self.nonnat
                w(ind, f"a = regs[{sa}]")
                w(ind, f"b = regs[{sb}]")
                if not clean:
                    self.used.add("nat")
                    w(ind, "if a is nat or b is nat:")
                    w(ind + 1, f"regs[{dest}] = nat")
                    w(ind, "elif type(a) is int and type(b) is int"
                           " and b:")
                else:
                    w(ind, "if type(a) is int and type(b) is int"
                           " and b:")
                w(ind + 1, "q = a // b")
                w(ind + 1, "if q < 0 and q * b != a:")
                w(ind + 2, "q += 1")
                w(ind + 1, f"regs[{dest}] = q")
                w(ind, "else:")
                w(ind + 1, f"regs[{dest}] = c_div(a, b)")
                self.put_ready(ind, dest, lat)
                self.put_fl(ind, dest, False)
                self.set_dest(dest, lat, False, clean, (sa, sb))
                return
            expr = _BIN_EXPR.get(fn)
            exact = expr is not None
            if expr is None:        # an embedder-registered op
                expr = self.const(fn) + "({a}, {b})"
            self.alu_result(ind, dest, sa, sb, expr, lat, exact)
        elif code == _REM:
            dest, sa, sb, lat = instr[3], instr[4], instr[5], instr[6]
            self.issue(ind, (sa, sb), False)
            self.used.add("c_rem")
            clean = sa in self.nonnat and sb in self.nonnat
            w(ind, f"a = regs[{sa}]")
            w(ind, f"b = regs[{sb}]")
            if not clean:
                self.used.add("nat")
                w(ind, "if a is nat or b is nat:")
                w(ind + 1, f"regs[{dest}] = nat")
                w(ind, "elif type(a) is int and type(b) is int and b:")
            else:
                w(ind, "if type(a) is int and type(b) is int and b:")
            w(ind + 1, "r = a % b")
            w(ind + 1, "if r and (r < 0) != (a < 0):")
            w(ind + 2, "r -= b")
            w(ind + 1, f"regs[{dest}] = r")
            w(ind, "else:")
            w(ind + 1, f"regs[{dest}] = c_rem(a, b)")
            self.put_ready(ind, dest, lat)
            self.put_fl(ind, dest, False)
            self.set_dest(dest, lat, False, clean, (sa, sb))
        elif code == _MOV:
            dest, src = instr[3], instr[4]
            self.issue(ind, (src,), False)
            w(ind, f"regs[{dest}] = regs[{src}]")
            self.put_ready(ind, dest, 1)
            self.put_fl(ind, dest, False)
            self.set_dest(dest, 1, False, src in self.nonnat, (src,))
        elif code == _MOVI:
            dest = instr[3]
            self.rollover(ind, False)
            imm = instr[4]
            if isinstance(imm, int) or (isinstance(imm, float)
                                        and math.isfinite(imm)):
                w(ind, f"regs[{dest}] = {imm!r}")
            else:       # inf/nan/exotic: repr would not round-trip
                w(ind, f"regs[{dest}] = {self.const(imm)}")
            self.put_ready(ind, dest, 1)
            self.put_fl(ind, dest, False)
            self.set_dest(dest, 1, False, True)
        elif code == _LD:
            dest, src, fp = instr[3], instr[4], instr[5]
            self.issue(ind, (src,), True)
            self.used.add("memory")
            self.nat_guard(ind, src,
                           "load address is NaT (unchecked speculative "
                           "value reached a non-speculative load)")
            self.used.add("MachineError")
            w(ind, f"addr = int(regs[{src}])")
            w(ind, "try:")
            w(ind + 1, f"regs[{dest}] = memory[addr]")
            w(ind, "except KeyError:")
            w(ind + 1, "raise MachineError(")
            w(ind + 2, "f\"load from unallocated address {addr}\""
                       ") from None")
            self.load_ready(ind, dest, fp)
            self.put_fl(ind, dest, True)
            w(ind, "n_pl += 1")
            self.set_dest(dest, None, True, True)
        elif code == _ST:
            sa, sb, coerce, fp = instr[3], instr[4], instr[5], instr[6]
            self.issue(ind, (sa, sb), True)
            self.used.update(("MachineError", "memory", "al_sets",
                              "alat_invalidate"))
            if sa in self.nonnat and sb in self.nonnat:
                w(ind, f"value = regs[{sb}]")
            else:
                self.used.add("nat")
                w(ind, f"value = regs[{sb}]")
                w(ind, f"if regs[{sa}] is nat or value is nat:")
                w(ind + 1, "raise MachineError(")
                w(ind + 2, "\"store consumed NaT (unchecked speculative"
                           " \"")
                w(ind + 2, "\"value reached memory)\")")
                self.prove(sa)
                self.prove(sb)
            w(ind, f"addr = int(regs[{sa}])")
            w(ind, "if addr not in memory:")
            w(ind + 1, "raise MachineError(")
            w(ind + 2, "f\"store to unallocated address {addr}\")")
            if coerce:
                w(ind, "value = float(value)")
            w(ind, "memory[addr] = value")
            w(ind, f"if al_sets.get(addr % {self.aln}):")
            w(ind + 1, "alat_invalidate(addr)")
            if fp:
                self.used.add("cache_store")
                w(ind, "cache_store(addr, True)")
            else:
                self.used.update(("l1_sets", "l2_sets", "cache_store"))
                w(ind, f"line = addr // {self.lc}")
                w(ind, f"l2e = l2_sets.get(line % {self.l2n})")
                w(ind, f"l1e = l1_sets.get(line % {self.l1n})")
                w(ind, "if (l2e is not None and line in l2e")
                w(ind + 2, "and l1e is not None and line in l1e):")
                w(ind + 1, "l2e.move_to_end(line)")
                w(ind + 1, "l1e.move_to_end(line)")
                w(ind, "else:")
                w(ind + 1, "cache_store(addr, False)")
            w(ind, "n_st += 1")
            if self.injected:
                self.used.update(("after_store", "alat", "cache"))
                w(ind, "after_store(alat, cache)")
        elif code == _LDC:
            dest, src, fp = instr[3], instr[4], instr[5]
            self.used.update(("memory", "MachineError", "alat_check",
                              "alat_arm"))
            self.nat_guard(ind, src,
                           "check-load address is NaT (unchecked "
                           "speculative value)")
            w(ind, f"addr = int(regs[{src}])")
            w(ind, f"hit = alat_check({dest}, addr, frame)")
            w(ind, "if hit:")
            w(ind + 1, f"t = ready[{dest}]")
            w(ind + 1, f"_b = {dest}")
            w(ind, "else:")
            w(ind + 1, f"t = ready[{src}]")
            w(ind + 1, f"_b = {src}")
            w(ind + 1, f"r = ready[{dest}]")
            w(ind + 1, "if r > t:")
            w(ind + 2, "t = r")
            w(ind + 2, f"_b = {dest}")
            w(ind, "if t > cycle:")
            w(ind + 1, "if from_load[_b]:")
            w(ind + 2, "da += t - cycle")
            w(ind + 1, "cycle = t")
            w(ind + 1, "slots = 0")
            w(ind + 1, "ports = 0")
            if not self.cif:
                w(ind, f"if slots >= {self.iw} or ports >= {self.mp}:")
                w(ind + 1, "cycle += 1")
                w(ind + 1, "slots = 1")
                w(ind + 1, "ports = 1")
                w(ind, "else:")
                w(ind + 1, "slots += 1")
                w(ind + 1, "ports += 1")
            w(ind, "n_cl += 1")
            w(ind, "if hit:")
            self.put_ready(ind + 1, dest, self.chl)
            self.put_fl(ind + 1, dest, False)
            w(ind, "else:")
            w(ind + 1, "try:")
            w(ind + 2, f"regs[{dest}] = memory[addr]")
            w(ind + 1, "except KeyError:")
            w(ind + 2, "raise MachineError(")
            w(ind + 3, "f\"check load from unallocated address "
                       "{addr}\") from None")
            w(ind + 1, f"alat_arm({dest}, addr, frame)")
            self.load_ready(ind + 1, dest, fp)
            self.put_fl(ind + 1, dest, True)
            w(ind + 1, "n_cm += 1")
            self.adv_unknown()
            self.rs.pop(dest, None)
            self.fl.pop(dest, None)
            # conservatively NOT proven: an ALAT hit keeps the current
            # register value, whatever it is
            self.nonnat.discard(dest)
            self.natdep.pop(dest, None)
            for d, srcs in list(self.natdep.items()):
                if dest in srcs:
                    del self.natdep[d]
            self.sk = None
            self.pk = None
        elif code == _LDA:
            dest, src, fp = instr[3], instr[4], instr[5]
            self.issue(ind, (src,), True)
            self.used.update(("mem_get", "alat_arm", "alat_disarm"))
            if src in self.nonnat:
                w(ind, f"addr = int(regs[{src}])")
                w(ind, "value = mem_get(addr)")
                w(ind, "if value is None:")
                self.used.add("nat")
                w(ind + 1, f"regs[{dest}] = nat")
                w(ind + 1, f"alat_disarm({dest}, frame)")
                w(ind + 1, "n_df += 1")
                w(ind, "else:")
                w(ind + 1, f"regs[{dest}] = value")
                w(ind + 1, f"alat_arm({dest}, addr, frame)")
                self.load_ready(ind, dest, fp)
            else:
                self.used.add("nat")
                w(ind, f"a = regs[{src}]")
                w(ind, "if a is nat:")
                w(ind + 1, f"regs[{dest}] = nat")
                w(ind + 1, f"alat_disarm({dest}, frame)")
                w(ind + 1, f"ready[{dest}] = cycle + 1")
                w(ind, "else:")
                w(ind + 1, "addr = int(a)")
                w(ind + 1, "value = mem_get(addr)")
                w(ind + 1, "if value is None:")
                w(ind + 2, f"regs[{dest}] = nat")
                w(ind + 2, f"alat_disarm({dest}, frame)")
                w(ind + 2, "n_df += 1")
                w(ind + 1, "else:")
                w(ind + 2, f"regs[{dest}] = value")
                w(ind + 2, f"alat_arm({dest}, addr, frame)")
                self.load_ready(ind + 1, dest, fp)
            self.put_fl(ind, dest, True)
            w(ind, "n_ad += 1")
            self.set_dest(dest, None, True, False)
        elif code == _LDS:
            dest, src, fp = instr[3], instr[4], instr[5]
            self.issue(ind, (src,), True)
            self.used.update(("nat", "mem_get"))
            if self.injected:
                self.used.add("poison_load")
                deferred = ("if value is None or poison_load"
                            "(\"ld.s\", addr):")
            else:
                deferred = "if value is None:"
            if src in self.nonnat:
                w(ind, f"addr = int(regs[{src}])")
                w(ind, "value = mem_get(addr)")
                w(ind, deferred)
                w(ind + 1, f"regs[{dest}] = nat")
                w(ind + 1, "n_df += 1")
                w(ind, "else:")
                w(ind + 1, f"regs[{dest}] = value")
                self.load_ready(ind, dest, fp)
            else:
                w(ind, f"a = regs[{src}]")
                w(ind, "if a is nat:")
                w(ind + 1, f"regs[{dest}] = nat")
                w(ind + 1, f"ready[{dest}] = cycle + 1")
                w(ind, "else:")
                w(ind + 1, "addr = int(a)")
                w(ind + 1, "value = mem_get(addr)")
                w(ind + 1, deferred)
                w(ind + 2, f"regs[{dest}] = nat")
                w(ind + 2, "n_df += 1")
                w(ind + 1, "else:")
                w(ind + 2, f"regs[{dest}] = value")
                self.load_ready(ind + 1, dest, fp)
            self.put_fl(ind, dest, True)
            w(ind, "n_sp += 1")
            self.set_dest(dest, None, True, False)
        elif code == _LDR:
            dest, src, fp = instr[3], instr[4], instr[5]
            self.issue(ind, (src,), True)
            self.used.add("mem_get")
            self.nat_guard(ind, src,
                           "ld.r address is NaT (recovery block did not "
                           "replay the address chain)")
            w(ind, f"addr = int(regs[{src}])")
            w(ind, f"regs[{dest}] = mem_get(addr, 0)")
            self.load_ready(ind, dest, fp)
            self.put_fl(ind, dest, True)
            w(ind, "n_rp += 1")
            self.set_dest(dest, None, True, True)
        elif code == _LEA:
            dest, sym = instr[3], instr[4]
            self.rollover(ind, False)
            if instr[5]:        # global: the address is a run constant
                w(ind, f"regs[{dest}] = {self.m._global_addr[sym]}")
            else:
                w(ind, f"regs[{dest}] = addr_of[{self.const(sym)}]")
            self.put_ready(ind, dest, 1)
            self.put_fl(ind, dest, False)
            self.set_dest(dest, 1, False, True)
        elif code == _UN:
            dest, fn, src = instr[3], instr[4], instr[5]
            self.issue(ind, (src,), False)
            expr = _UN_EXPR.get(fn)
            exact = expr is not None
            if expr is None:
                expr = self.const(fn) + "({a})"
            if src in self.nonnat:
                w(ind, f"regs[{dest}] = "
                       + expr.format(a=f"regs[{src}]"))
                clean = True
            else:
                self.used.add("nat")
                w(ind, f"a = regs[{src}]")
                w(ind, f"regs[{dest}] = nat if a is nat else "
                       + expr.format(a="a"))
                clean = False
            self.put_ready(ind, dest, 1)
            self.put_fl(ind, dest, False)
            self.set_dest(dest, 1, False, clean,
                          (src,) if exact else ())
        elif code == _ALLOC:
            dest, src = instr[3], instr[4]
            self.issue(ind, (src,), False)
            self.used.add("allocate")
            self.nat_guard(ind, src,
                           "alloc size is NaT (unchecked speculative "
                           "value)")
            w(ind, f"regs[{dest}] = allocate(int(regs[{src}]))")
            self.put_ready(ind, dest, 1)
            self.put_fl(ind, dest, False)
            self.set_dest(dest, 1, False, True)
        elif code == _PRINT:
            srcs = instr[1]
            self.issue(ind, srcs, False)
            self.used.add("out_append")
            for s in srcs:
                self.nat_guard(ind, s,
                               "print consumed NaT (unchecked "
                               "speculative value reached output)")
            if len(srcs) == 1:
                w(ind, f"value = regs[{srcs[0]}]")
                w(ind, "out_append(f\"{value:.6g}\""
                       " if isinstance(value, float) else str(value))")
            else:
                w(ind, "parts = []")
                for s in srcs:
                    w(ind, f"value = regs[{s}]")
                    w(ind, "parts.append(f\"{value:.6g}\""
                           " if isinstance(value, float)"
                           " else str(value))")
                w(ind, "out_append(\" \".join(parts))")
        elif code == _INPUT or code == _INPUTF:
            dest = instr[3]
            self.rollover(ind, False)
            self.used.add("next_input")
            cvt = "float" if code == _INPUTF else "int"
            w(ind, f"regs[{dest}] = {cvt}(next_input())")
            self.put_ready(ind, dest, 1)
            self.put_fl(ind, dest, False)
            self.set_dest(dest, 1, False, True)
        else:       # _CALL / _RET can never be recorded into a trace
            raise MachineError(
                f"opcode {code} is not traceable (recorder bug)")

    # ---- leaf-call inlining -------------------------------------------
    def inline_call(self, ind: int, instr: tuple,
                    close_cx: bool) -> None:
        """Expand a call to a branch-free leaf callee in place.

        The callee's registers become per-site locals (its frame dies
        inside the trace), the scoreboard stays in the shared
        ``cycle``/``slots``/``ports`` locals exactly as the
        interpreter's nested ``_call`` would leave them, and the
        callee's per-function counters — compile-time constants on a
        branch-free path — flush straight to its FnStats slice.  The
        enclosing block's fuel guard reserves the path's fuel up
        front, so the exhaustion raise can never fire mid-callee.
        ``close_cx`` marks the block's last call: the span from the
        block-start anchor to here is the portion the interpreter's
        ``entered_at`` reset never attributes to the caller
        (returned as ``n_cx`` and subtracted by the dispatch hook)."""
        w = self.w
        srcs = instr[1]
        dest = instr[3]
        callee, path = self.m._inline_of(instr[4])
        self.issue(ind, srcs, False)
        k = self.site
        self.site += 1
        self.used.add("m")
        w(ind, "m._frame_serial += 1")
        # arguments copy into the fresh frame before the context switch
        for p, s in zip(callee.param_regs, srcs):
            w(ind, f"_c{k}r{p} = regs[{s}]")
        param_clean = {p for p, s in zip(callee.param_regs, srcs)
                       if s in self.nonnat}
        caller = self.snapshot()
        nregs = callee.nregs
        # entry state the interpreter builds: every value 0 (non-NaT),
        # ready at cycle 0, not from a load; parameters inherit only
        # what the caller proved about the argument
        self.rs = {r: ("a0",) for r in range(nregs)}
        self.fl = {r: False for r in range(nregs)}
        self.nonnat = ((set(range(nregs)) - set(callee.param_regs))
                       | param_clean)
        self.natdep = {}
        self.cdk = 0
        self.rename = k
        mark = len(self.lines)
        if self.co:
            w(ind, f"cycle += {self.co}")
            self.adv_known(self.co)
        w(ind, f"_ct{k} = cycle")
        w(ind, f"fuel -= {len(path)}")
        rsrc = None
        for bi in path:
            block = callee.blocks[bi]
            for ins in block[:-1]:
                self.emit_instr(ind, ins)
            t = block[-1]
            if t[0] == _JMP:
                self.rollover(ind, False)
                if t[4]:
                    w(ind, "n_tk += 1")
                    w(ind, f"cycle += {1 + self.bp}")
                    w(ind, "slots = 0")
                    w(ind, "ports = 0")
                    self.adv_known(1 + self.bp)
                    self.sk = 0
                    self.pk = 0
                else:
                    w(ind, "n_fa += 1")
                w(ind, f"n_i += {t[5]}")
            else:       # _RET ends the path
                rsrc = t[3]
                if rsrc is not None:
                    self.issue(ind, (rsrc,), False)
                    if dest is not None:
                        w(ind, f"_rv{k} = regs[{rsrc}]")
                else:
                    self.rollover(ind, False)
                w(ind, f"n_i += {t[4]}")
        # ---- rename the callee-rendered segment ------------------
        seg = self.lines[mark:]
        del self.lines[mark:]
        totals: Dict[str, int] = {}
        kept: List[str] = []
        for line in seg:
            mm = _RX_CN.match(line)
            if mm and mm.group(1) != "da":
                totals[mm.group(1)] = (totals.get(mm.group(1), 0)
                                       + int(mm.group(2)))
            else:
                kept.append(line)
        seg = [
            _RX_FL.sub(lambda m: f"_c{k}f{m.group(1)}",
                       _RX_RDY.sub(lambda m: f"_c{k}t{m.group(1)}",
                                   _RX_REG.sub(
                                       lambda m: f"_c{k}r{m.group(1)}",
                                       line)))
            for line in kept]
        for line in seg:
            if ("regs[" in line or "ready[" in line
                    or "from_load[" in line or "addr_of" in line
                    or re.search(r"\bframe\b", line)
                    or re.search(r"\bn_[a-z]{1,2} \+=", line)):
                raise MachineError(
                    f"un-renamable callee line in {callee.name}: "
                    f"{line.strip()!r} (writer bug)")
        # locals read before their first write hold the frame's entry
        # values (0 / 0 / False)
        local = re.compile(rf"_c{k}([rtf])(\d+)")
        assign = re.compile(rf"\s*(_c{k}[rtf]\d+) = (.*)$")
        defined = {f"_c{k}r{p}" for p in callee.param_regs}
        inits: List[str] = []
        for line in seg:
            am = assign.match(line)
            scan = am.group(2) if am else line
            for km, num in local.findall(scan):
                name = f"_c{k}{km}{num}"
                if name not in defined:
                    defined.add(name)
                    inits.append("    " * ind + name + " = "
                                 + ("False" if km == "f" else "0"))
            if am:
                defined.add(am.group(1))
        self.lines.extend(inits + seg)
        # ---- flush the callee's constant counters ----------------
        name = callee.name
        if name in self.callee_fs:
            fsj = self.callee_fs.index(name)
        else:
            fsj = len(self.callee_fs)
            self.callee_fs.append(name)
        for c in sorted(totals):
            w(ind, f"_cfs{fsj}.{_FS_FIELD[c]} += {totals[c]}")
        w(ind, f"_cfs{fsj}.cycles += cycle - _ct{k}")
        if self.co:
            w(ind, f"cycle += {self.co}")
            self.adv_known(self.co)
        if close_cx:
            w(ind, "n_cx += cycle - _ba")
        # ---- back to the caller ----------------------------------
        exit_sk, exit_pk = self.sk, self.pk
        ret_clean = rsrc is not None and rsrc in self.nonnat
        cdk = self.cdk
        self.cdk = None
        self.rename = None
        self.restore(caller)
        if cdk is None:
            self.adv_unknown()
        else:
            self.adv_known(cdk)
        self.sk = exit_sk
        self.pk = exit_pk
        if dest is not None:
            w(ind, f"regs[{dest}] = _rv{k}")
            self.put_ready(ind, dest, 0)
            self.put_fl(ind, dest, False)
            self.set_dest(dest, 0, False, ret_clean)

    # ---- terminators ---------------------------------------------------
    def emit_arm(self, ind: int, target: int, taken: bool, ninstr: int,
                 succ: int, last: bool, loop_head: Optional[int],
                 peel: bool) -> bool:
        """One branch arm: penalty accounting, then continue in-trace
        (fall through / loop back) or leave (normal or side exit).
        Returns True when execution proceeds into the code emitted
        next (so the caller applies this arm's state effects): a
        mid-trace fall-through, a steady-loop ``continue``, or the
        peel's back-edge arm falling through into ``while True:``."""
        w = self.w
        if taken:
            w(ind, "n_tk += 1")
            w(ind, f"cycle += {1 + self.bp}")
            w(ind, "slots = 0")
            w(ind, "ports = 0")
        else:
            w(ind, "n_fa += 1")
        w(ind, f"n_i += {ninstr}")
        if target != succ:
            w(ind, self.ret(target, _EXIT_SIDE))
            return False
        if last:
            if loop_head is not None and target == loop_head:
                if not peel:
                    w(ind, "continue")
                # peel: fall through into the steady-state loop
                return True
            w(ind, self.ret(target, _EXIT_NORMAL))
            return False
        return True     # recorded successor mid-trace: fall through

    def arm_effects(self, taken: bool) -> None:
        """Apply the continuing arm's scoreboard effects to the
        abstract state (penalty is a known cycle advance)."""
        if taken:
            self.adv_known(1 + self.bp)
            self.sk = 0
            self.pk = 0

    def join_arms(self, a_cont: bool, a_taken: bool,
                  b_cont: bool, b_taken: bool) -> None:
        """Fold the continuing arm's effects into the abstract state;
        when *both* arms reach the next emitted code (two arms with the
        same target), keep only what both agree on."""
        if a_cont and b_cont:
            if a_taken == b_taken:
                self.arm_effects(a_taken)
            else:
                base = self.snapshot()
                self.arm_effects(a_taken)
                sa = self.snapshot()
                self.restore(base)
                self.arm_effects(b_taken)
                self.restore(self.merge(sa, self.snapshot()))
        elif a_cont:
            self.arm_effects(a_taken)
        elif b_cont:
            self.arm_effects(b_taken)

    def emit_terminator(self, ind: int, instr: tuple, succ: int,
                        last: bool, loop_head: Optional[int],
                        peel: bool) -> None:
        w = self.w
        code = instr[0]
        if code == _JMP:
            self.rollover(ind, False)
            if self.emit_arm(ind, instr[3], instr[4], instr[5],
                             succ, last, loop_head, peel):
                self.arm_effects(instr[4])
        elif code == _BR:
            src = instr[3]
            self.issue(ind, (src,), False)
            self.nat_guard(ind, src,
                           "branch condition is NaT (unchecked "
                           "speculative value reached control flow)")
            w(ind, f"if regs[{src}]:")
            then_cont = self.emit_arm(ind + 1, instr[4], instr[6],
                                      instr[8], succ, last, loop_head,
                                      peel)
            w(ind, "else:")
            else_cont = self.emit_arm(ind + 1, instr[5], instr[7],
                                      instr[8], succ, last, loop_head,
                                      peel)
            self.join_arms(then_cont, instr[6], else_cont, instr[7])
        elif code == _CHK:
            src = instr[3]
            self.issue(ind, (src,), False)
            w(ind, "n_sk += 1")
            if src in self.nonnat and instr[4] == succ:
                # provably clean: the check can only fall through to
                # the continuation arm — no test, no side exit
                if self.emit_arm(ind, instr[4], instr[6], instr[8],
                                 succ, last, loop_head, peel):
                    self.arm_effects(instr[6])
            else:
                self.used.add("nat")
                w(ind, f"if regs[{src}] is nat:")
                w(ind + 1, "n_rc += 1")
                rec_cont = self.emit_arm(ind + 1, instr[5], instr[7],
                                         instr[8], succ, last,
                                         loop_head, peel)
                w(ind, "else:")
                cont_cont = self.emit_arm(ind + 1, instr[4], instr[6],
                                          instr[8], succ, last,
                                          loop_head, peel)
                self.join_arms(rec_cont, instr[7], cont_cont, instr[6])
                if cont_cont and not rec_cont:
                    # only the survived-the-check arm continues
                    self.prove(src)
        else:
            raise MachineError(
                f"opcode {code} cannot terminate a trace block")

    # ---- whole-trace assembly -----------------------------------------
    def emit_body(self, ind: int, seq: List[int], exit_block: int,
                  loop_head: Optional[int], peel: bool = False) -> None:
        """One copy of the recorded path, emitted from the current
        abstract state (which it advances to the path's exit state)."""
        for pos, bi in enumerate(seq):
            last = pos == len(seq) - 1
            succ = exit_block if last else seq[pos + 1]
            self.w(ind, f"# ---- block {bi}{' (peel)' if peel else ''}"
                        " ----")
            block = self.fn.blocks[bi]
            calls = [i for i, ins in enumerate(block)
                     if ins[0] == _CALL]
            # reserve the inlined paths' fuel up front: the guard may
            # deoptimize a touch early (the interpreter then just runs
            # the tail), but the exhaustion raise can never fire
            # inside an inlined callee
            margin = sum(len(self.m._inline_of(block[i][4])[1])
                         for i in calls)
            self.w(ind, f"if fuel <= {1 + margin}:")
            self.w(ind + 1, self.ret(bi, _EXIT_FUEL))
            self.w(ind, "fuel -= 1")
            if calls:
                self.w(ind, "_ba = cycle")
            for i, instr in enumerate(block[:-1]):
                if instr[0] == _CALL:
                    self.inline_call(ind, instr,
                                     close_cx=(i == calls[-1]))
                else:
                    self.emit_instr(ind, instr)
            self.emit_terminator(ind, block[-1], succ, last, loop_head,
                                 peel)

    def build(self, seq: List[int], exit_block: int) -> str:
        """The generated source for the recorded path ``seq`` whose
        recording stopped on arrival at ``exit_block``."""
        loop_head = seq[0] if exit_block == seq[0] else None
        if loop_head is None:
            # straight-line trace: every path returns; entry state is
            # whatever the interpreter had, so prove nothing
            body: List[str] = []
            self.lines = body
            self.clear_state()
            self.emit_body(1, seq, exit_block, None)
        else:
            # loop trace: peel one iteration from the unknown entry
            # state, then run the transfer function to a fixpoint over
            # the back edge and compile the steady-state body from it
            self.lines = []
            self.clear_state()
            self.emit_body(2, seq, exit_block, loop_head)
            first = self.snapshot()     # peel's back-edge state
            steady = first
            for _ in range(6):
                self.lines = []
                self.restore(steady)
                self.emit_body(2, seq, exit_block, loop_head)
                joined = self.merge(first, self.snapshot())
                if self.state_key(joined) == self.state_key(steady):
                    break
                steady = joined
            else:       # no convergence: steady body proves nothing
                steady = ({}, {}, set(), {}, None, None)
            peel_body: List[str] = []
            self.lines = peel_body
            self.clear_state()
            self.emit_body(1, seq, exit_block, loop_head, peel=True)
            loop_body: List[str] = []
            self.lines = loop_body
            self.restore(steady)
            self.emit_body(2, seq, exit_block, loop_head)
            body = peel_body + ["    while True:"] + loop_body
        header = ["def _trace(regs, ready, from_load, addr_of, frame,"
                  " cycle, slots, ports, fuel):"]
        for name in sorted(self.used):
            header.append(f"    {name} = _g_{name}")
        for i in range(len(self.consts)):
            header.append(f"    k{i} = _g_k{i}")
        for j in range(len(self.callee_fs)):
            header.append(f"    _cfs{j} = _g_cfs{j}")
        for name in _COUNTERS:
            header.append(f"    {name} = 0")
        return "\n".join(header + body) + "\n"


class _TraceMachine(_Machine):
    """The trace engine: the predecode machine plus warm-up profiling,
    trace recording and fused-closure dispatch (module docstring)."""

    def __init__(self, program, inputs, fuel, issue_width, mem_ports,
                 branch_penalty, call_overhead, alat, cache,
                 check_hit_latency, check_issue_free,
                 injector=None) -> None:
        super().__init__(program, inputs, fuel, issue_width, mem_ports,
                         branch_penalty, call_overhead, alat, cache,
                         check_hit_latency, check_issue_free, injector)
        self._program = program
        self.hot_threshold = HOT_THRESHOLD
        code_cache = _CODE_CACHE.get(program)
        if code_cache is None:
            code_cache = _CODE_CACHE[program] = {}
        self._code_cache = code_cache
        self._env_key = (issue_width, mem_ports, branch_penalty,
                         call_overhead, check_hit_latency,
                         check_issue_free, cache.line_cells,
                         cache._l1.nsets, cache.l1_latency,
                         cache._l2.nsets, alat.nsets,
                         injector is not None)
        self._inline_cache: Dict[str, Optional[tuple]] = {}

    # ---- leaf-callee analysis -----------------------------------------
    def _inline_of(self, name: str) -> Optional[tuple]:
        """``(callee, path)`` when calls to ``name`` can be expanded
        inline in a trace: a known, frame-allocation-free function
        whose entry reaches ``ret`` through unconditional jumps only
        (a single static path, so no side exit can strand execution
        inside a frame the interpreter cannot rebuild), using only
        frame-independent opcodes.  ``None`` otherwise; memoized."""
        try:
            return self._inline_cache[name]
        except KeyError:
            pass
        funcs_get = self._env[13]
        fn = funcs_get(name)
        info = None
        if fn is not None and not fn.frame_allocs:
            path: List[int] = []
            bi, total = 0, 0
            seen = set()
            while True:
                if (bi in seen or len(path) >= _INLINE_MAX_BLOCKS):
                    path = None
                    break
                seen.add(bi)
                path.append(bi)
                block = fn.blocks[bi]
                total += len(block)
                if total > _INLINE_MAX_INSTRS or not block:
                    path = None
                    break
                ok = True
                for ins in block[:-1]:
                    if ins[0] not in _INLINE_OK or (
                            ins[0] == _LEA and not ins[5]):
                        ok = False
                        break
                if not ok:
                    path = None
                    break
                t = block[-1]
                if t[0] == _RET:
                    break
                if t[0] == _JMP:
                    bi = t[3]
                    continue
                path = None
                break
            if path is not None:
                info = (fn, path)
        self._inline_cache[name] = info
        return info

    # ---- trace management ---------------------------------------------
    def _init_traces(self, fn: _TFunc) -> List[Optional[int]]:
        """Build the per-block table on a function's first call: ``0``
        (an arrival counter) for every block that may join a trace,
        ``None`` for blocks that never can.  Returns need the
        interpreter's frame machinery; calls do too — unless every
        call in the block targets an inlinable leaf
        (:meth:`_inline_of`) with matching arity and a compatible
        return, in which case the block stays traceable and the
        writer expands the callee in place."""
        tbl: List[Optional[int]] = []
        for block in fn.blocks:
            ok = True
            for instr in block:
                code = instr[0]
                if code == _RET:
                    ok = False
                    break
                if code == _CALL:
                    info = self._inline_of(instr[4])
                    if info is None:
                        ok = False
                        break
                    callee, path = info
                    ret = callee.blocks[path[-1]][-1]
                    if (len(instr[1]) != len(callee.param_regs)
                            or (instr[3] is not None
                                and ret[3] is None)):
                        ok = False
                        break
            tbl.append(0 if ok else None)
        fn.tr_tbl = tbl
        fn.tr_elig = sum(1 for e in tbl if e is not None)
        fn.tr_fail = 0
        return tbl

    def _trace_globals(self, consts: List[object],
                       callee_fs: Sequence[str] = ()) -> Dict[str, object]:
        """The execution environment the generated source binds in its
        preamble — per-run objects, never baked into (cached) source."""
        env = {
            "_g_m": self,
            "_g_nat": NAT,
            "_g_MachineError": MachineError,
            "_g_memory": self.memory,
            "_g_mem_get": self.memory.get,
            "_g_alat": self.alat,
            "_g_cache": self.cache,
            "_g_alat_check": self.alat.check,
            "_g_alat_arm": self.alat.arm,
            "_g_alat_invalidate": self.alat.invalidate,
            "_g_alat_disarm": self.alat.disarm,
            "_g_cache_load": self.cache.load,
            "_g_cache_store": self.cache.store,
            "_g_l1_sets": self.cache._l1.sets,
            "_g_l2_sets": self.cache._l2.sets,
            "_g_al_sets": self.alat._sets,
            "_g_allocate": self._allocate,
            "_g_next_input": self._next_input,
            "_g_out_append": self.output.append,
            "_g_c_rem": c_rem,
            "_g_c_div": c_div,
        }
        if self.injector is not None:
            env["_g_after_store"] = self.injector.after_store
            env["_g_poison_load"] = self.injector.poison_load
        for i, obj in enumerate(consts):
            env[f"_g_k{i}"] = obj
        for j, name in enumerate(callee_fs):
            env[f"_g_cfs{j}"] = self.stats.fn(name)
        return env

    def _install_trace(self, fn: _TFunc, seq: List[int],
                       exit_block: int) -> None:
        """Compile the recorded path into a fused closure and publish
        it at the trace head.  Non-looping scraps below
        :data:`MIN_TRACE_INSTRS` are not worth the dispatch round-trip;
        their head is retired instead (counted in ``tr_fail``).

        Codegen is the expensive step, so the per-program cache stores
        the compiled code object (plus the per-site constants its
        preamble binds): a campaign re-running the same program only
        pays ``exec`` + environment binding after the first run."""
        head = seq[0]
        if exit_block != head:
            total = sum(len(fn.blocks[bi]) for bi in seq)
            if total < MIN_TRACE_INSTRS:
                fn.tr_tbl[head] = None
                fn.tr_fail += 1
                return
        key = (fn.name, tuple(seq), exit_block, self._env_key)
        cached = self._code_cache.get(key)
        if cached is None:
            writer = _TraceWriter(self, fn)
            source = writer.build(seq, exit_block)
            code = compile(source, f"<trace {fn.name}:{head}>", "exec")
            cached = self._code_cache[key] = (code, writer.consts,
                                              writer.callee_fs)
        namespace = self._trace_globals(cached[1], cached[2])
        exec(cached[0], namespace)
        fn.tr_tbl[head] = namespace["_trace"]
        self.stats.traces_compiled += 1

    # ---- the dispatch loop --------------------------------------------
    #
    # A verbatim copy of the predecode engine's ``_Machine._call`` with
    # one insertion at the top of the per-block loop: the trace hook
    # (count / record / dispatch).  Everything below the hook must stay
    # line-for-line identical to machine.py — a behavioural fix to one
    # loop must land in both (the engine bit-identity tests will catch
    # a divergence, but keep them in sync by construction).
    def _call(self, fn: _TFunc, args: List[Value]) -> Optional[Value]:
        if len(args) != len(fn.param_regs):
            raise MachineError(f"{fn.name}: arity mismatch")
        self._frame_serial += 1
        frame = self._frame_serial
        regs: List[Value] = [0] * fn.nregs
        ready = [0] * fn.nregs
        from_load = [False] * fn.nregs
        for reg, value in zip(fn.param_regs, args):
            regs[reg] = value
        if fn.frame_allocs:
            addr_of: Dict[object, int] = {}
            for sym, cells in fn.frame_allocs:
                addr_of[sym] = self._allocate(cells)
        else:
            addr_of = _NO_FRAME_ADDRS

        (stats, memory, mem_get, alat, alat_peek, alat_check, alat_arm,
         alat_invalidate, alat_disarm, cache, cache_load, cache_store,
         injector, funcs_get, global_addr, issue_width, mem_ports,
         branch_penalty, check_hit_latency, check_issue_free, line_cells,
         l1_sets, l1_nsets, l1_latency, l2_sets, l2_nsets, al_sets,
         al_nsets) = self._env
        fs = fn.fs
        if fs is None:
            fs = fn.fs = stats.fn(fn.name)
        tr_tbl = fn.tr_tbl
        if tr_tbl is None:
            tr_tbl = self._init_traces(fn)
        recording: Optional[List[int]] = None
        rset = None
        hot = self.hot_threshold
        n_th = 0        # buffered stats.trace_hits
        n_sx = 0        # buffered stats.side_exits
        n_td = 0        # buffered stats.trace_dyn_instr
        self.cycle += self.call_overhead
        nat = NAT
        blocks = fn.blocks
        block_index = 0
        cycle = self.cycle
        slots = self.slots
        ports = self.ports
        fuel = self.fuel
        n_instr = 0
        da_cycles = 0
        fs_cycles = 0
        n_plain = n_store = n_checkload = n_checkmiss = 0
        n_adv = n_spec = n_replay = n_defer = 0
        n_speccheck = n_recover = n_taken = n_fall = 0
        while True:
            # ---- trace hook (the only delta vs machine.py) ----------
            tr = tr_tbl[block_index]
            if recording is not None:
                if (tr is None or tr.__class__ is not int
                        or block_index in rset
                        or len(rset) >= TRACE_MAX_BLOCKS):
                    self._install_trace(fn, recording, block_index)
                    recording = None
                    rset = None
                    tr = tr_tbl[block_index]
                else:
                    recording.append(block_index)
                    rset.add(block_index)
            if tr is not None:
                if tr.__class__ is int:
                    if tr < hot:
                        tr_tbl[block_index] = tr + 1
                    elif recording is None:
                        recording = [block_index]
                        rset = {block_index}
                        tr_tbl[block_index] = 0
                else:
                    c0 = cycle
                    (block_index, cycle, slots, ports, fuel, d_i, d_da,
                     d_pl, d_st, d_cl, d_cm, d_ad, d_sp, d_rp, d_df,
                     d_sk, d_rc, d_tk, d_fa, d_cx, exit_kind) = tr(
                        regs, ready, from_load, addr_of, frame,
                        cycle, slots, ports, fuel)
                    fs_cycles += cycle - c0 - d_cx
                    n_instr += d_i
                    da_cycles += d_da
                    n_plain += d_pl
                    n_store += d_st
                    n_checkload += d_cl
                    n_checkmiss += d_cm
                    n_adv += d_ad
                    n_spec += d_sp
                    n_replay += d_rp
                    n_defer += d_df
                    n_speccheck += d_sk
                    n_recover += d_rc
                    n_taken += d_tk
                    n_fall += d_fa
                    n_th += 1
                    n_td += d_i
                    if exit_kind == _EXIT_NORMAL:
                        continue
                    if exit_kind == _EXIT_SIDE:
                        n_sx += 1
                        continue
                    # _EXIT_FUEL: fall through so the interpreter's own
                    # decrement performs the exact classic raise
            # ---- end trace hook; below matches machine.py -----------
            fuel -= 1
            if fuel <= 0:
                fs.instructions += n_instr
                raise MachineFuelExhausted(
                    fn.name, f"#{block_index}",
                    sum(f.instructions for f in stats.fn_stats.values()))
            entered_at = cycle
            for instr in blocks[block_index]:
                code = instr[0]
                if code == _ADD:
                    sa = instr[4]
                    sb = instr[5]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[sa]
                    b = regs[sb]
                    dest = instr[3]
                    if a is nat or b is nat:
                        regs[dest] = nat
                    else:
                        regs[dest] = a + b
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _BIN:
                    sa = instr[5]
                    sb = instr[6]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[sa]
                    b = regs[sb]
                    dest = instr[3]
                    if a is nat or b is nat:
                        regs[dest] = nat
                    else:
                        regs[dest] = instr[4](a, b)
                    ready[dest] = cycle + instr[7]
                    from_load[dest] = False
                elif code == _CMPLT:
                    sa = instr[4]
                    sb = instr[5]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[sa]
                    b = regs[sb]
                    dest = instr[3]
                    if a is nat or b is nat:
                        regs[dest] = nat
                    else:
                        regs[dest] = int(a < b)
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _MOV:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    regs[dest] = regs[src]
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _MOVI:
                    if slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    regs[dest] = instr[4]
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _LD:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    a = regs[src]
                    if a is nat:
                        raise MachineError(
                            "load address is NaT (unchecked speculative "
                            "value reached a non-speculative load)")
                    addr = int(a)
                    dest = instr[3]
                    try:
                        regs[dest] = memory[addr]
                    except KeyError:
                        raise MachineError(
                            f"load from unallocated address {addr}"
                        ) from None
                    if instr[5]:
                        ready[dest] = cycle + cache_load(addr, True)
                    else:
                        line = addr // line_cells
                        l1e = l1_sets.get(line % l1_nsets)
                        if l1e is not None and line in l1e:
                            l1e.move_to_end(line)
                            cache.l1_hits += 1
                            ready[dest] = cycle + l1_latency
                        else:
                            ready[dest] = cycle + cache_load(addr, False)
                    from_load[dest] = True
                    n_plain += 1
                elif code == _BR:
                    src = instr[3]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    cond = regs[src]
                    if cond is nat:
                        raise MachineError(
                            "branch condition is NaT (unchecked "
                            "speculative value reached control flow)")
                    if cond:
                        block_index, taken = instr[4], instr[6]
                    else:
                        block_index, taken = instr[5], instr[7]
                    if taken:
                        n_taken += 1
                        cycle += 1 + branch_penalty
                        slots = 0
                        ports = 0
                    else:
                        n_fall += 1
                    n_instr += instr[8]
                    break
                elif code == _JMP:
                    if slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    block_index = instr[3]
                    if instr[4]:
                        n_taken += 1
                        cycle += 1 + branch_penalty
                        slots = 0
                        ports = 0
                    else:
                        n_fall += 1
                    n_instr += instr[5]
                    break
                elif code == _ST:
                    sa = instr[3]
                    sb = instr[4]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    a = regs[sa]
                    value = regs[sb]
                    if a is nat or value is nat:
                        raise MachineError(
                            "store consumed NaT (unchecked speculative "
                            "value reached memory)")
                    addr = int(a)
                    if addr not in memory:
                        raise MachineError(
                            f"store to unallocated address {addr}")
                    if instr[5]:
                        value = float(value)
                    memory[addr] = value
                    if al_sets.get(addr % al_nsets):
                        alat_invalidate(addr)
                    if instr[6]:
                        cache_store(addr, True)
                    else:
                        line = addr // line_cells
                        l2e = l2_sets.get(line % l2_nsets)
                        l1e = l1_sets.get(line % l1_nsets)
                        if (l2e is not None and line in l2e
                                and l1e is not None and line in l1e):
                            l2e.move_to_end(line)
                            l1e.move_to_end(line)
                        else:
                            cache_store(addr, False)
                    n_store += 1
                    if injector is not None:
                        injector.after_store(alat, cache)
                elif code == _REM:
                    sa = instr[4]
                    sb = instr[5]
                    t = ready[sa]
                    binding = sa
                    r = ready[sb]
                    if r > t:
                        t = r
                        binding = sb
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[sa]
                    b = regs[sb]
                    dest = instr[3]
                    if a is nat or b is nat:
                        regs[dest] = nat
                    elif type(a) is int and type(b) is int and b:
                        q = abs(a) // abs(b)
                        regs[dest] = a - (q if (a >= 0) == (b >= 0)
                                          else -q) * b
                    else:
                        regs[dest] = c_rem(a, b)
                    ready[dest] = cycle + instr[6]
                    from_load[dest] = False
                elif code == _LDC:
                    dest = instr[3]
                    a = regs[instr[4]]
                    if a is nat:
                        raise MachineError(
                            "check-load address is NaT (unchecked "
                            "speculative value)")
                    addr = int(a)
                    hit = alat_check(dest, addr, frame)
                    if hit:
                        t = ready[dest]
                        binding = dest
                    else:
                        src = instr[4]
                        t = ready[src]
                        binding = src
                        r = ready[dest]
                        if r > t:
                            t = r
                            binding = dest
                    if t > cycle:
                        if from_load[binding]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 0
                        ports = 0
                    if not check_issue_free:
                        if slots >= issue_width or ports >= mem_ports:
                            cycle += 1
                            slots = 1
                            ports = 1
                        else:
                            slots += 1
                            ports += 1
                    n_checkload += 1
                    if hit:
                        ready[dest] = cycle + check_hit_latency
                        from_load[dest] = False
                    else:
                        try:
                            regs[dest] = memory[addr]
                        except KeyError:
                            raise MachineError(
                                f"check load from unallocated address "
                                f"{addr}") from None
                        alat_arm(dest, addr, frame)
                        if instr[5]:
                            ready[dest] = cycle + cache_load(addr, True)
                        else:
                            line = addr // line_cells
                            l1e = l1_sets.get(line % l1_nsets)
                            if l1e is not None and line in l1e:
                                l1e.move_to_end(line)
                                cache.l1_hits += 1
                                ready[dest] = cycle + l1_latency
                            else:
                                ready[dest] = cycle + cache_load(
                                    addr, False)
                        from_load[dest] = True
                        n_checkmiss += 1
                elif code == _LDA:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    dest = instr[3]
                    a = regs[src]
                    if a is nat:
                        regs[dest] = nat
                        alat_disarm(dest, frame)
                        ready[dest] = cycle + 1
                    else:
                        addr = int(a)
                        value = mem_get(addr)
                        if value is None:
                            regs[dest] = nat
                            alat_disarm(dest, frame)
                            n_defer += 1
                        else:
                            regs[dest] = value
                            alat_arm(dest, addr, frame)
                        if instr[5]:
                            ready[dest] = cycle + cache_load(addr, True)
                        else:
                            line = addr // line_cells
                            l1e = l1_sets.get(line % l1_nsets)
                            if l1e is not None and line in l1e:
                                l1e.move_to_end(line)
                                cache.l1_hits += 1
                                ready[dest] = cycle + l1_latency
                            else:
                                ready[dest] = cycle + cache_load(
                                    addr, False)
                    from_load[dest] = True
                    n_adv += 1
                elif code == _LDS:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    dest = instr[3]
                    a = regs[src]
                    if a is nat:
                        regs[dest] = nat
                        ready[dest] = cycle + 1
                    else:
                        addr = int(a)
                        value = mem_get(addr)
                        if value is None or (
                                injector is not None
                                and injector.poison_load("ld.s", addr)):
                            regs[dest] = nat
                            n_defer += 1
                        else:
                            regs[dest] = value
                        if instr[5]:
                            ready[dest] = cycle + cache_load(addr, True)
                        else:
                            line = addr // line_cells
                            l1e = l1_sets.get(line % l1_nsets)
                            if l1e is not None and line in l1e:
                                l1e.move_to_end(line)
                                cache.l1_hits += 1
                                ready[dest] = cycle + l1_latency
                            else:
                                ready[dest] = cycle + cache_load(
                                    addr, False)
                    from_load[dest] = True
                    n_spec += 1
                elif code == _LDR:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 1
                    elif slots >= issue_width or ports >= mem_ports:
                        cycle += 1
                        slots = 1
                        ports = 1
                    else:
                        slots += 1
                        ports += 1
                    a = regs[src]
                    if a is nat:
                        raise MachineError(
                            "ld.r address is NaT (recovery block did not "
                            "replay the address chain)")
                    addr = int(a)
                    dest = instr[3]
                    regs[dest] = mem_get(addr, 0)
                    if instr[5]:
                        ready[dest] = cycle + cache_load(addr, True)
                    else:
                        line = addr // line_cells
                        l1e = l1_sets.get(line % l1_nsets)
                        if l1e is not None and line in l1e:
                            l1e.move_to_end(line)
                            cache.l1_hits += 1
                            ready[dest] = cycle + l1_latency
                        else:
                            ready[dest] = cycle + cache_load(addr, False)
                    from_load[dest] = True
                    n_replay += 1
                elif code == _CHK:
                    src = instr[3]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    n_speccheck += 1
                    if regs[src] is nat:
                        n_recover += 1
                        block_index, taken = instr[5], instr[7]
                    else:
                        block_index, taken = instr[4], instr[6]
                    if taken:
                        n_taken += 1
                        cycle += 1 + branch_penalty
                        slots = 0
                        ports = 0
                    else:
                        n_fall += 1
                    n_instr += instr[8]
                    break
                elif code == _LEA:
                    if slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    regs[dest] = global_addr[instr[4]] if instr[5] \
                        else addr_of[instr[4]]
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _UN:
                    src = instr[5]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    a = regs[src]
                    regs[dest] = nat if a is nat else instr[4](a)
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _CALL:
                    t = cycle
                    binding = False
                    for src in instr[1]:
                        r = ready[src]
                        if r > t:
                            t = r
                            binding = from_load[src]
                    if t > cycle:
                        if binding:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    callee = funcs_get(instr[4])
                    if callee is None:
                        raise MachineError(f"call to unknown function "
                                           f"{instr[4]!r}")
                    fs.instructions += n_instr + instr[5]
                    n_instr = -instr[5]
                    self.cycle = cycle
                    self.slots = slots
                    self.ports = ports
                    self.fuel = fuel
                    result = self._call(callee,
                                        [regs[s] for s in instr[1]])
                    cycle = self.cycle
                    slots = self.slots
                    ports = self.ports
                    fuel = self.fuel
                    dest = instr[3]
                    if dest is not None:
                        if result is None:
                            raise MachineError(
                                f"void result of {instr[4]} used")
                        regs[dest] = result
                        ready[dest] = cycle
                        from_load[dest] = False
                    entered_at = cycle
                elif code == _RET:
                    src = instr[3]
                    if src is not None:
                        t = ready[src]
                        if t > cycle:
                            if from_load[src]:
                                da_cycles += t - cycle
                            cycle = t
                            slots = 1
                            ports = 0
                        elif slots >= issue_width:
                            cycle += 1
                            slots = 1
                            ports = 0
                        else:
                            slots += 1
                        retval: Optional[Value] = regs[src]
                    else:
                        if slots >= issue_width:
                            cycle += 1
                            slots = 1
                            ports = 0
                        else:
                            slots += 1
                        retval = None
                    n_instr += instr[4]
                    fs_cycles += cycle - entered_at
                    cycle += self.call_overhead
                    self.cycle = cycle
                    self.slots = slots
                    self.ports = ports
                    self.fuel = fuel
                    fs.instructions += n_instr
                    stats.data_access_cycles += da_cycles
                    fs.cycles += fs_cycles
                    if n_taken:
                        fs.taken_branches += n_taken
                    if n_fall:
                        fs.fallthroughs += n_fall
                    if n_plain:
                        fs.plain_loads += n_plain
                    if n_store:
                        fs.stores += n_store
                    if n_checkload:
                        fs.check_loads += n_checkload
                    if n_checkmiss:
                        fs.check_misses += n_checkmiss
                    if n_adv:
                        fs.advanced_loads += n_adv
                    if n_spec:
                        fs.spec_loads += n_spec
                    if n_replay:
                        fs.replay_loads += n_replay
                    if n_defer:
                        fs.deferred_faults += n_defer
                    if n_speccheck:
                        fs.spec_checks += n_speccheck
                    if n_recover:
                        fs.spec_recoveries += n_recover
                    # trace-engine counters: whole-run, engine-only —
                    # they never enter the per-function slices
                    if n_th:
                        stats.trace_hits += n_th
                        stats.trace_dyn_instr += n_td
                    if n_sx:
                        stats.side_exits += n_sx
                    return retval
                elif code == _ALLOC:
                    src = instr[4]
                    t = ready[src]
                    if t > cycle:
                        if from_load[src]:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    a = regs[src]
                    if a is nat:
                        raise MachineError(
                            "alloc size is NaT (unchecked speculative "
                            "value)")
                    dest = instr[3]
                    regs[dest] = self._allocate(int(a))
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _PRINT:
                    t = cycle
                    binding = False
                    for src in instr[1]:
                        r = ready[src]
                        if r > t:
                            t = r
                            binding = from_load[src]
                    if t > cycle:
                        if binding:
                            da_cycles += t - cycle
                        cycle = t
                        slots = 1
                        ports = 0
                    elif slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    parts = []
                    for src in instr[1]:
                        value = regs[src]
                        if value is nat:
                            raise MachineError(
                                "print consumed NaT (unchecked "
                                "speculative value reached output)")
                        parts.append(f"{value:.6g}"
                                     if isinstance(value, float)
                                     else str(value))
                    self.output.append(" ".join(parts))
                else:   # _INPUT / _INPUTF
                    if slots >= issue_width:
                        cycle += 1
                        slots = 1
                        ports = 0
                    else:
                        slots += 1
                    dest = instr[3]
                    value = self._next_input()
                    regs[dest] = float(value) if code == _INPUTF \
                        else int(value)
                    ready[dest] = cycle + 1
                    from_load[dest] = False
            else:
                raise MachineError(f"{fn.name}: block without terminator")
            fs_cycles += cycle - entered_at
