"""Machine counters — the reproduction of the paper's pfmon measurement
surface (see the counters reference table in docs/machine_model.md).

The load accounting splits three ways and the distinction carries every
figure:

* ``loads_retired`` (= ``total_loads``) — all retired load instructions,
  whatever their flavour: the denominator of Figure 11's check ratio.
* ``memory_loads`` — loads that actually went to the memory pipeline:
  plain + advanced + control-speculative loads, plus *failed* checks
  (a check hit never accesses memory).  Figure 10's load reduction is
  computed over these.
* ``redundant_loads`` — loads the speculation eliminated (check hits),
  with ``reuse_fraction`` relating them to all retired loads — the
  machine-level counterpart of Figure 12's load-reuse potential.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FnStats:
    """Per-function slice of the counters (§5.1's smvp numbers are
    per-procedure)."""

    name: str = ""
    instructions: int = 0
    cycles: int = 0
    plain_loads: int = 0
    advanced_loads: int = 0
    spec_loads: int = 0
    check_loads: int = 0
    check_misses: int = 0
    stores: int = 0
    deferred_faults: int = 0
    spec_checks: int = 0
    spec_recoveries: int = 0
    replay_loads: int = 0
    taken_branches: int = 0
    fallthroughs: int = 0

    @property
    def loads_retired(self) -> int:
        return (self.plain_loads + self.advanced_loads + self.spec_loads
                + self.check_loads + self.replay_loads)

    @property
    def memory_loads(self) -> int:
        return (self.plain_loads + self.advanced_loads + self.spec_loads
                + self.check_misses + self.replay_loads)


@dataclass
class MachineStats:
    """Whole-run counters reported by :func:`repro.target.run_program`."""

    cycles: int = 0
    instructions: int = 0
    plain_loads: int = 0
    advanced_loads: int = 0
    spec_loads: int = 0
    check_loads: int = 0
    check_misses: int = 0
    stores: int = 0
    #: stall cycles whose binding producer was a load (Figure 10's
    #: "data access" series)
    data_access_cycles: int = 0
    #: ``ld.s``/``ld.a`` that hit an unmapped (or injector-poisoned)
    #: address and delivered NaT instead of faulting
    deferred_faults: int = 0
    #: executed ``chk.s`` instructions
    spec_checks: int = 0
    #: ``chk.s`` that caught a NaT and entered a recovery block
    spec_recoveries: int = 0
    #: retired ``ld.r`` replay loads (recovery-block re-executions)
    replay_loads: int = 0
    #: control transfers that left the fall-through path (each pays
    #: ``branch_penalty``; the hot-path layout pass minimizes these)
    taken_branches: int = 0
    #: control transfers to the lexically-next block (penalty-free)
    fallthroughs: int = 0
    # ---- trace-engine counters (docs/performance.md) -------------------
    # Populated only by ``run_program(engine="trace")``; always zero
    # under the classic and predecode engines.  They describe the
    # *dispatch machinery*, never the simulated architecture, so they
    # are excluded from :meth:`arch_dict` (the cross-engine
    # bit-identity surface).
    #: hot traces compiled into fused closures this run
    traces_compiled: int = 0
    #: trace-cache dispatches (one fused call, possibly many blocks)
    trace_hits: int = 0
    #: deoptimizing exits through a non-recorded branch arm
    side_exits: int = 0
    #: dynamic instructions retired inside compiled traces
    trace_dyn_instr: int = 0
    fn_stats: Dict[str, FnStats] = field(default_factory=dict)

    # ---- derived counters ----------------------------------------------
    @property
    def loads_retired(self) -> int:
        return (self.plain_loads + self.advanced_loads + self.spec_loads
                + self.check_loads + self.replay_loads)

    @property
    def total_loads(self) -> int:
        """All retired load instructions (alias of ``loads_retired``)."""
        return self.loads_retired

    @property
    def memory_loads(self) -> int:
        """Loads that reached the memory pipeline (check hits excluded)."""
        return (self.plain_loads + self.advanced_loads + self.spec_loads
                + self.check_misses + self.replay_loads)

    @property
    def redundant_loads(self) -> int:
        """Loads eliminated by speculation: checks that hit the ALAT."""
        return self.check_loads - self.check_misses

    @property
    def reuse_fraction(self) -> float:
        """Fraction of retired loads satisfied without touching memory."""
        if self.loads_retired == 0:
            return 0.0
        return self.redundant_loads / self.loads_retired

    @property
    def check_ratio(self) -> float:
        """Dynamic check loads over retired loads (Figure 11, top)."""
        if self.loads_retired == 0:
            return 0.0
        return self.check_loads / self.loads_retired

    @property
    def misspeculation_ratio(self) -> float:
        """Failed checks over executed checks (Figure 11, bottom)."""
        if self.check_loads == 0:
            return 0.0
        return self.check_misses / self.check_loads

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly counters (the CLI's ``--json`` payload)."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "plain_loads": self.plain_loads,
            "advanced_loads": self.advanced_loads,
            "spec_loads": self.spec_loads,
            "check_loads": self.check_loads,
            "check_misses": self.check_misses,
            "stores": self.stores,
            "loads_retired": self.loads_retired,
            "memory_loads": self.memory_loads,
            "redundant_loads": self.redundant_loads,
            "reuse_fraction": self.reuse_fraction,
            "check_ratio": self.check_ratio,
            "misspeculation_ratio": self.misspeculation_ratio,
            "data_access_cycles": self.data_access_cycles,
            "deferred_faults": self.deferred_faults,
            "spec_checks": self.spec_checks,
            "spec_recoveries": self.spec_recoveries,
            "replay_loads": self.replay_loads,
            "taken_branches": self.taken_branches,
            "fallthroughs": self.fallthroughs,
            "traces_compiled": self.traces_compiled,
            "trace_hits": self.trace_hits,
            "side_exits": self.side_exits,
            "trace_dyn_instr": self.trace_dyn_instr,
        }

    #: ``to_dict`` keys that describe engine machinery, not architecture
    ENGINE_KEYS = ("traces_compiled", "trace_hits", "side_exits",
                   "trace_dyn_instr")

    def arch_dict(self) -> Dict[str, object]:
        """Architecturally-visible counters only: ``to_dict`` minus the
        trace-engine dispatch counters.  Two engines simulating the same
        program must agree on this dict bit-for-bit, whatever their
        dispatch strategy."""
        d = self.to_dict()
        for key in self.ENGINE_KEYS:
            del d[key]
        return d

    def engine_dict(self) -> Dict[str, int]:
        """The dispatch-machinery counters alone (all zero except under
        ``engine="trace"``) — the complement of :meth:`arch_dict`."""
        return {key: getattr(self, key) for key in self.ENGINE_KEYS}

    def fn(self, name: str) -> FnStats:
        """The (created-on-demand) per-function slice for ``name``."""
        stats = self.fn_stats.get(name)
        if stats is None:
            stats = self.fn_stats[name] = FnStats(name=name)
        return stats
