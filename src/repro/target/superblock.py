"""Profile-guided superblock formation and hot-path code layout
(docs/scheduling.md).

The classic trace-scheduling pipeline over the machine CFG, driven by
the :class:`~repro.profiling.EdgeProfile` the pass manager collected on
the train run:

* :class:`MachineProfile` — maps the IR-level edge profile onto the
  machine CFG.  Out-of-SSA rebuilt every block, so the mapping is by
  *name*: head blocks carry their IR block's name verbatim; codegen's
  ``chk.s`` continuations (``X.c1``) and recovery blocks (``X.r1``)
  and this module's tail duplicates (``X.d1``) derive their counts
  from their base block; critical-edge split blocks (``split_A_B``)
  were created *after* the train run, so their weight and the branch
  probabilities of edges into them are recovered by looking through
  their ``jmp`` to the IR successor the profiled edge reached.
  Without a usable profile (``--sched superblock`` on an unprofiled
  build, or a function the train input never entered) the profile
  degrades to a static one: unit block weights, ``jmp`` edges certain,
  ``br`` edges even, recovery edges never — enough to straighten
  ``jmp`` chains and keep recovery code out of line.

* :func:`form_superblocks` — grow traces along mutual-most-likely hot
  edges from heavy seed blocks.  A hot successor with side entrances
  would end the trace; within ``tail_budget`` duplicated instructions
  per function it is *tail-duplicated* instead (a fresh copy reached
  only from the trace, the original keeping every other predecessor),
  so the superblock stays single-entry and keeps growing.  Blocks
  ending in ``chk.s`` are never duplicated (their recovery/continuation
  pairing must stay unique) and the entry block never joins another
  trace.

* :func:`schedule_superblocks` — each trace is one scheduling region
  for :func:`repro.target.scheduler.schedule_trace`: profile-weighted
  priorities, speculative loads hoisting above side exits.

* :func:`layout_function` — place traces so hot successors fall
  through: the entry trace first, then greedily the unplaced trace
  headed by the most probable successor of the trace just placed,
  heaviest-first when the chain breaks.  Since a branch to the
  lexically-next block is free and anything else pays
  ``branch_penalty`` (docs/machine_model.md), "flipping a branch
  sense" needs no instruction rewriting here — both ``br`` targets are
  explicit, so placement alone decides which way falls through.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .codegen import compute_max_live
from .isa import MBlock, MFunction, MInstr
from .scheduler import compute_live_in, schedule_trace

#: minimum branch probability for a trace to keep growing along an edge
TRACE_MIN_PROB = 0.6

#: default per-function budget of tail-duplicated instructions
TAIL_DUP_BUDGET = 24

_SYNTH_SUFFIX = re.compile(r"\.[crd]\d+$")
_RECOVERY_PART = re.compile(r"\.r\d+(\.|$)")


def _base_name(name: str) -> str:
    """Strip codegen/duplication suffixes (``.c1``/``.r1``/``.d1``,
    possibly nested) down to the originating block's name."""
    while True:
        stripped = _SYNTH_SUFFIX.sub("", name)
        if stripped == name:
            return name
        name = stripped


def _is_recovery(name: str) -> bool:
    return _RECOVERY_PART.search(name) is not None


def _is_split(name: str) -> bool:
    return name.startswith("split_")


class MachineProfile:
    """Block weights and branch probabilities for one machine function,
    inferred from the IR-level edge profile by block name (static
    fallback when no usable profile exists — see module docstring)."""

    def __init__(self, mfn: MFunction, edge_profile=None) -> None:
        self.mfn = mfn
        profiled = (edge_profile is not None
                    and edge_profile.has_function(mfn.name))
        self._static = not profiled
        self._profile = edge_profile if profiled else None
        self._weight: Dict[int, float] = {}
        self._probs: Dict[int, List[Tuple[MBlock, float]]] = {}
        self._resolve_cache: Dict[int, str] = {}
        self._preds: Dict[int, List[MBlock]] = {
            id(block): [] for block in mfn.blocks}
        for block in mfn.blocks:
            term = block.terminator
            if term is None:
                continue
            for target in term.targets:
                self._preds[id(target)].append(block)
        for block in mfn.blocks:
            self._probs[id(block)] = self._succ_probs(block)
        # split blocks first (their weight feeds their continuations)
        for block in mfn.blocks:
            if _is_split(_base_name(block.name)):
                self._weight[id(block)] = self._split_weight(block)
        for block in mfn.blocks:
            self._weight.setdefault(id(block), self._block_weight(block))

    # ---- name resolution ------------------------------------------------
    def _resolved_name(self, block: MBlock) -> str:
        """The IR-named block an edge *into* ``block`` reaches: split
        blocks (created after the train run) are looked through along
        their ``jmp`` chain to the profiled successor."""
        cached = self._resolve_cache.get(id(block))
        if cached is not None:
            return cached
        seen = set()
        cur = block
        while (_is_split(cur.name) and id(cur) not in seen
               and cur.terminator is not None
               and cur.terminator.op == "jmp"):
            seen.add(id(cur))
            cur = cur.terminator.targets[0]
        name = _base_name(cur.name)
        self._resolve_cache[id(block)] = name
        return name

    # ---- weights --------------------------------------------------------
    def _block_weight(self, block: MBlock) -> float:
        name = block.name
        if _is_recovery(name):
            return 0.0
        base = _base_name(name)
        if _is_split(base):
            # continuation/duplicate of a split block: find the split
            # head among this function's blocks and share its weight
            for other in self.mfn.blocks:
                if other.name == base:
                    return self._weight.get(id(other), 0.0)
            return 0.0
        if self._static:
            return 1.0
        return float(self._profile.block_by_name(self.mfn.name, base))

    def _split_weight(self, block: MBlock) -> float:
        if self._static:
            return 1.0
        total = 0.0
        target = self._resolved_name(block)
        for pred in self._preds[id(block)]:
            src = _base_name(pred.name)
            if _is_split(src):
                continue
            total += self._profile.edge_by_name(self.mfn.name, src, target)
        return total

    def weight(self, block: MBlock) -> float:
        w = self._weight.get(id(block))
        if w is None:       # a block created after construction (dup)
            w = self._block_weight(block)
            self._weight[id(block)] = w
        return w

    # ---- branch probabilities -------------------------------------------
    def _succ_probs(self, block: MBlock) -> List[Tuple[MBlock, float]]:
        term = block.terminator
        if term is None or term.op == "ret":
            return []
        if term.op == "jmp":
            return [(term.targets[0], 1.0)]
        if term.op == "chk.s":
            # deferred faults are rare: the continuation is the trace
            return [(term.targets[0], 1.0), (term.targets[1], 0.0)]
        # br: normalize the profiled IR edge counts of the two targets
        targets = list(term.targets)
        src = _base_name(block.name)
        counts = [0.0] * len(targets)
        if not self._static and not _is_split(src):
            for i, target in enumerate(targets):
                counts[i] = self._profile.edge_by_name(
                    self.mfn.name, src, self._resolved_name(target))
        total = sum(counts)
        if total <= 0:
            even = 1.0 / len(targets)
            return [(t, even) for t in targets]
        return [(t, c / total) for t, c in zip(targets, counts)]

    def succ_probs(self, block: MBlock) -> List[Tuple[MBlock, float]]:
        probs = self._probs.get(id(block))
        if probs is None:   # a block created after construction (dup)
            probs = self._succ_probs(block)
            self._probs[id(block)] = probs
        return probs

    def prob(self, block: MBlock, target: MBlock) -> float:
        for t, p in self.succ_probs(block):
            if t is target:
                return p
        return 0.0

    def edge_weight(self, src: MBlock, dst: MBlock) -> float:
        return self.weight(src) * self.prob(src, dst)

    def preds(self, block: MBlock) -> List[MBlock]:
        return self._preds.get(id(block), [])

    def register_duplicate(self, dup: MBlock, original: MBlock,
                           weight: float) -> None:
        """Teach the profile about a tail duplicate: it inherits the
        original's successor probabilities and carries the weight of
        the one trace edge that reaches it."""
        self._weight[id(dup)] = weight
        self._weight[id(original)] = max(
            self.weight(original) - weight, 0.0)
        self._probs[id(dup)] = list(self.succ_probs(original))
        self._preds.setdefault(id(dup), [])
        for target, _ in self._probs[id(dup)]:
            self._preds[id(target)].append(dup)


@dataclass
class Trace:
    """One superblock: blocks in execution order plus their profile
    weights (the scheduler's priority scale)."""

    blocks: List[MBlock]
    weights: List[float] = field(default_factory=list)


def _duplicate_block(mfn: MFunction, block: MBlock, serial: int) -> MBlock:
    dup = MBlock(f"{block.name}.d{serial}")
    for instr in block.instrs:
        dup.append(MInstr(instr.op, instr.dest, instr.srcs, instr.imm,
                          instr.sym, instr.callee, instr.targets,
                          instr.fp, instr.coerce))
    mfn.blocks.append(dup)
    return dup


def _retarget(term: MInstr, old: MBlock, new: MBlock) -> None:
    term.targets = tuple(new if t is old else t for t in term.targets)


def form_superblocks(mfn: MFunction, edge_profile=None,
                     tail_budget: int = TAIL_DUP_BUDGET,
                     min_prob: float = TRACE_MIN_PROB) -> List[Trace]:
    """Partition ``mfn``'s blocks into traces grown along
    mutual-most-likely hot edges, tail-duplicating side-entranced hot
    successors within ``tail_budget`` duplicated instructions.  Every
    block lands in exactly one trace (cold blocks as singletons); the
    entry block heads the first trace."""
    mp = MachineProfile(mfn, edge_profile)
    entry = mfn.blocks[0]
    assigned = set()
    budget = max(0, int(tail_budget))
    dup_serial = 0
    traces: List[Trace] = []

    def grow(seed: MBlock) -> Trace:
        nonlocal budget, dup_serial
        blocks = [seed]
        weights = [mp.weight(seed)]
        assigned.add(id(seed))
        cur = seed
        while True:
            probs = mp.succ_probs(cur)
            if not probs:
                break
            target, p = max(probs, key=lambda tp: tp[1])
            if p < min_prob or target is entry or id(target) in assigned:
                break
            # mutual-most-likely: cur must be target's heaviest way in
            w_in = mp.edge_weight(cur, target)
            if any(mp.edge_weight(q, target) > w_in
                   for q in mp.preds(target) if q is not cur):
                break
            side_entrances = [q for q in mp.preds(target) if q is not cur]
            term = cur.instrs[-1] if cur.instrs else None
            if (term is not None and term.op == "chk.s"
                    and target is term.targets[0]):
                # the recovery block's jump back into the continuation
                # is a rejoin, not a side entrance: hoisting above the
                # chk.s already accounts for the replayed path
                # (scheduler.may_hoist_above), so the trace may carry on
                rec = term.targets[1]
                side_entrances = [q for q in side_entrances if q is not rec]
            if side_entrances:
                if (target.terminator is not None
                        and target.terminator.op == "chk.s"):
                    break       # chk.s pairing must stay unique
                if len(target.instrs) > budget:
                    break
                budget -= len(target.instrs)
                dup_serial += 1
                dup = _duplicate_block(mfn, target, dup_serial)
                _retarget(cur.instrs[-1], target, dup)
                mp.register_duplicate(dup, target, w_in)
                assigned.add(id(dup))
                blocks.append(dup)
                weights.append(w_in)
                cur = dup
            else:
                assigned.add(id(target))
                blocks.append(target)
                weights.append(mp.weight(target))
                cur = target
        return Trace(blocks, weights)

    block_index = {id(b): i for i, b in enumerate(mfn.blocks)}
    seeds = [entry] + sorted(
        (b for b in mfn.blocks if b is not entry),
        key=lambda b: (-mp.weight(b), block_index[id(b)]))
    for seed in seeds:
        if id(seed) not in assigned:
            traces.append(grow(seed))
    # duplicates created while growing are appended to mfn.blocks and
    # always assigned to a trace on creation, so every block is covered
    return traces


def schedule_superblocks(mfn: MFunction, traces: Sequence[Trace]) -> None:
    """Run the profile-weighted trace scheduler over every trace.
    Liveness is recomputed before each multi-block trace because
    earlier traces' code motion may have changed it."""
    for trace in traces:
        if sum(len(b.instrs) for b in trace.blocks) <= 1:
            continue
        live_in = compute_live_in(mfn)
        schedule_trace(trace.blocks, trace.weights, live_in)


def layout_function(mfn: MFunction, traces: Sequence[Trace],
                    edge_profile=None) -> None:
    """Reorder ``mfn.blocks`` so hot successors fall through: the entry
    trace first, then chained by the most probable successor edge of
    the trace just placed, heaviest-head-first when the chain breaks.
    Cold singletons (recovery blocks) sink to the end.  Finishes by
    refreshing ``max_live`` (duplication and cross-block motion may
    have changed it)."""
    if not traces:
        return
    mp = MachineProfile(mfn, edge_profile)
    order_index = {id(t): i for i, t in enumerate(traces)}
    head_of = {id(t.blocks[0]): t for t in traces}
    unplaced = dict(order_index)      # id(trace) -> original index
    placed: List[Trace] = []

    def place(trace: Trace) -> None:
        placed.append(trace)
        del unplaced[id(trace)]

    place(traces[0])                  # the entry trace stays first
    while unplaced:
        nxt: Optional[Trace] = None
        tail = placed[-1].blocks[-1]
        for target, _ in sorted(mp.succ_probs(tail),
                                key=lambda tp: -tp[1]):
            t = head_of.get(id(target))
            if t is not None and id(t) in unplaced:
                nxt = t
                break
        if nxt is None:               # chain broke: heaviest head next
            nxt = min(
                (t for t in traces if id(t) in unplaced),
                key=lambda t: (-mp.weight(t.blocks[0]),
                               order_index[id(t)]))
        place(nxt)
    mfn.blocks = [block for trace in placed for block in trace.blocks]
    mfn.max_live = compute_max_live(mfn)
