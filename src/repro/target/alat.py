"""The Advanced Load Address Table (ALAT).

The hardware structure behind IA-64 data speculation (docs/machine_model.md):
``ld.a`` allocates an entry recording *(target register, address)*;
every ``st`` searches the table and invalidates entries whose address
matches; ``ld.c`` succeeds iff its register's entry survived with the
same address.  The table is small and set-associative, so *capacity
evictions* make even correct speculation occasionally fail — a
second-order cost the paper's mis-speculation ratios include.

Entries are additionally keyed by an activation serial (``frame``): the
simulator's virtual registers are per-activation, so without the serial
a recursive call could hit an entry its caller armed in the *same*
register number — a false hit the real (physical-register) hardware
cannot have.

Model invariant (property-tested in ``tests/target``): **a check hit
implies no store wrote the armed address since the entry was armed.**
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

_Key = Tuple[int, int]  # (activation serial, virtual register)


class ALAT:
    """A ``entries``-entry, ``ways``-way set-associative ALAT, hashed on
    address, LRU within each set."""

    def __init__(self, entries: int = 32, ways: int = 2) -> None:
        if entries <= 0 or ways <= 0 or entries % ways:
            raise ValueError("entries must be a positive multiple of ways")
        self.entries = entries
        self.ways = ways
        self.nsets = entries // ways
        # set index -> OrderedDict[(frame, reg) -> armed address],
        # least-recently-used first
        self._sets: Dict[int, "OrderedDict[_Key, int]"] = {}
        # reverse index so re-arming a register drops its stale entry
        # even when the new address hashes to a different set
        self._home: Dict[_Key, int] = {}

    # ---- lifecycle ------------------------------------------------------
    def clone(self) -> "ALAT":
        """A fresh, empty ALAT with the same geometry (``run_program``
        never mutates the instance it was handed)."""
        return ALAT(self.entries, self.ways)

    def reset(self) -> None:
        self._sets.clear()
        self._home.clear()

    def __len__(self) -> int:
        return len(self._home)

    # ---- operations -----------------------------------------------------
    def arm(self, reg: int, addr: int, frame: int = 0) -> None:
        """``ld.a``: allocate an entry for ``reg`` at ``addr``, evicting
        the set's LRU entry if the set is full."""
        key = (frame, reg)
        old = self._home.pop(key, None)
        if old is not None:
            self._sets[old].pop(key, None)
        index = addr % self.nsets
        entries = self._sets.get(index)
        if entries is None:
            entries = self._sets[index] = OrderedDict()
        entries[key] = addr
        self._home[key] = index
        if len(entries) > self.ways:
            victim, _ = entries.popitem(last=False)
            del self._home[victim]

    def check(self, reg: int, addr: int, frame: int = 0) -> bool:
        """``ld.c``: True iff ``reg``'s entry survived and still names
        ``addr``.  A hit refreshes the entry's LRU position."""
        key = (frame, reg)
        index = self._home.get(key)
        if index is None:
            return False
        entries = self._sets[index]
        if entries[key] != addr:
            return False
        entries.move_to_end(key)
        return True

    def peek(self, reg: int, addr: int, frame: int = 0) -> bool:
        """Like :meth:`check` but with no LRU refresh (dispatch peek)."""
        key = (frame, reg)
        index = self._home.get(key)
        return index is not None and self._sets[index][key] == addr

    def disarm(self, reg: int, frame: int = 0) -> None:
        """``ld.a`` that *deferred* (NaT): the register no longer holds a
        checkable value, so any stale entry from an earlier arm must go —
        otherwise the following ``ld.c`` would hit and let NaT leak."""
        key = (frame, reg)
        index = self._home.pop(key, None)
        if index is not None:
            self._sets[index].pop(key, None)

    def evict_one(self, rng) -> bool:
        """Forced capacity eviction (fault injection): drop one armed
        entry chosen by ``rng``.  Returns True iff an entry was dropped.
        Deterministic for a given rng state: candidates are visited in
        sorted-key order, so the choice depends only on table contents
        and the rng stream."""
        if not self._home:
            return False
        key = rng.choice(sorted(self._home))
        index = self._home.pop(key)
        self._sets[index].pop(key, None)
        return True

    def invalidate(self, addr: int) -> int:
        """``st``: drop every entry armed at ``addr``.  Returns how many
        entries were invalidated."""
        entries = self._sets.get(addr % self.nsets)
        if not entries:
            return 0
        victims = None  # stores rarely match: skip the alloc when none do
        for key, armed in entries.items():
            if armed == addr:
                if victims is None:
                    victims = [key]
                else:
                    victims.append(key)
        if victims is None:
            return 0
        for key in victims:
            del entries[key]
            del self._home[key]
        return len(victims)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ALAT {self.entries}x{self.ways}-way, {len(self)} armed>"
