"""Structural sanity checks over generated machine code.

``verify_program`` runs after codegen (and after scheduling) in the
pipeline driver; it catches malformed programs before they reach the
simulator, where the same defects would surface as confusing runtime
faults.  Raises :class:`~repro.target.MachineError`.
"""

from __future__ import annotations

from .isa import (ALU_OPS, EFFECT_OPS, LOAD_OPS, TERMINATOR_OPS, MFunction,
                  MProgram)
from .machine import MachineError

_NEEDS_DEST = LOAD_OPS | ALU_OPS | {"movi", "mov", "lea", "input", "inputf",
                                    "alloc"}
_KNOWN_OPS = (_NEEDS_DEST | TERMINATOR_OPS | EFFECT_OPS | {"st"})


def _fail(fn: MFunction, where: str, message: str) -> None:
    raise MachineError(f"{fn.name}/{where}: {message}")


def verify_function(fn: MFunction, program: MProgram) -> None:
    if not fn.blocks:
        raise MachineError(f"{fn.name}: no blocks")
    own_blocks = {id(b) for b in fn.blocks}
    for reg in fn.param_regs:
        if not 0 <= reg < fn.nregs:
            raise MachineError(f"{fn.name}: parameter register r{reg} out "
                               f"of range (nregs={fn.nregs})")
    for block in fn.blocks:
        if not block.instrs:
            _fail(fn, block.name, "empty block")
        for pos, instr in enumerate(block.instrs):
            last = pos == len(block.instrs) - 1
            if instr.op not in _KNOWN_OPS:
                _fail(fn, block.name, f"unknown opcode {instr.op!r}")
            if instr.is_terminator != last:
                _fail(fn, block.name,
                      f"{instr.op} {'missing' if last else 'mid-block'}"
                      " terminator")
            if instr.op in _NEEDS_DEST and instr.dest is None:
                _fail(fn, block.name, f"{instr.op} without destination")
            if instr.op == "st" and (instr.dest is not None
                                     or len(instr.srcs) != 2):
                _fail(fn, block.name, "malformed store")
            if instr.op == "chk.s" and (instr.dest is not None
                                        or len(instr.srcs) != 1):
                _fail(fn, block.name, "malformed chk.s")
            if instr.op == "lea" and instr.sym is None:
                _fail(fn, block.name, "lea without symbol")
            for reg in instr.srcs + ((instr.dest,)
                                     if instr.dest is not None else ()):
                if not 0 <= reg < fn.nregs:
                    _fail(fn, block.name,
                          f"register r{reg} out of range "
                          f"(nregs={fn.nregs})")
            expected = {"jmp": 1, "br": 2, "ret": 0,
                        "chk.s": 2}.get(instr.op)
            if expected is not None and len(instr.targets) != expected:
                _fail(fn, block.name, f"{instr.op} with "
                                      f"{len(instr.targets)} targets")
            for target in instr.targets:
                if id(target) not in own_blocks:
                    _fail(fn, block.name,
                          f"branch to foreign block {target.name}")
            if instr.op == "call":
                callee = program.functions.get(instr.callee)
                if callee is None:
                    _fail(fn, block.name,
                          f"call to unknown function {instr.callee!r}")
                elif len(instr.srcs) != len(callee.param_regs):
                    _fail(fn, block.name,
                          f"call to {instr.callee} with {len(instr.srcs)} "
                          f"args (expects {len(callee.param_regs)})")


def verify_program(program: MProgram) -> MProgram:
    """Check every function; raises :class:`MachineError` on the first
    defect.  Returns ``program`` for chaining."""
    if "main" not in program.functions:
        raise MachineError("program has no main()")
    if program.functions["main"].param_regs:
        raise MachineError("main() must take no parameters")
    for fn in program.functions.values():
        verify_function(fn, program)
    return program
