"""Latency-aware list scheduling of machine code (docs/machine_model.md
and docs/scheduling.md).

Two scheduling modes share one dependence-DAG construction:

* **Block scheduling** (:func:`schedule_function`, the default) —
  every block is rescheduled independently: build the dependence DAG,
  then greedily issue the ready instruction with the greatest
  critical-path height (longest latency-weighted path to the end of
  the block), breaking ties by original order so scheduling is
  deterministic and a no-op on already-optimal code.

* **Trace scheduling** (:func:`schedule_trace`, used by
  :mod:`repro.target.superblock`) — a whole profile-formed trace is
  scheduled as one region.  The dependence rules run over the
  concatenated instruction sequence, terminators join the DAG (each
  block's instructions precede its own terminator; terminators stay
  ordered), and a small set of side-effect-free ops — crucially the
  speculative loads ``ld.s``/``ld.a``, whose deferred-fault/ALAT
  semantics make early execution safe — may hoist above earlier side
  exits when the hoist is invisible off-trace (see
  :func:`may_hoist_above`).  Priority becomes expected cycles saved:
  static height scaled by the home block's profile weight relative to
  the trace entry, so a long chain on the hot path outranks an equally
  long chain that is only reached after a cold side exit.

Ordering rules, from strongest to weakest:

* the terminator stays last — and ``chk.s`` *is* a terminator, so a
  speculation check can never drift past the stores, effects or
  branches it guards: everything it must precede lives in later
  blocks, and the ``ld.s`` it checks is pinned before it by the RAW
  dependence on the checked register;
* effect instructions (``call``/``print``/``input``/``alloc``) keep
  their relative order and never cross a memory access (calls may read
  and write memory);
* stores stay ordered with each other and **no load moves across a
  store in either direction**.  This subsumes the ALAT rule the model
  documents: hoisting an ``ld.c`` above a store could let the check hit
  an entry the store was about to invalidate — a missed mis-speculation,
  i.e. a miscompile, not a slowdown;
* register dependences: RAW, WAR and WAW (virtual registers are not
  renamed, and ``ld.c`` *reads* its own destination).
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Sequence, Tuple

from .isa import EFFECT_OPS, MBlock, MFunction, MInstr, MProgram

#: static latency estimates used for priority (not for correctness)
_HEIGHT = {"ld": 6, "ld.a": 6, "ld.s": 6, "ld.c": 1, "ld.r": 6,
           "mul": 3, "div": 12, "rem": 12}

#: Ops a trace scheduler may move above a side exit.  All are free of
#: stores, effects and Python-level faults: the speculative loads
#: deliver NaT instead of faulting (and ``ld.a``'s early ALAT arm is
#: benign — a hit still implies the register equals memory), and the
#: ALU subset excludes ``div``/``rem``/``shl``/``shr``/``bnot``/
#: ``cvt.*``, whose host-level exceptions (divide by zero, negative
#: shift, overflow) must not fire on a path that never executed them.
HOISTABLE_OPS = frozenset({
    "ld.s", "ld.a", "movi", "mov", "lea",
    "add", "sub", "mul", "neg", "not",
    "cmp.lt", "cmp.le", "cmp.gt", "cmp.ge", "cmp.eq", "cmp.ne",
    "and", "or", "xor",
})


def _dependence_edges(body: Sequence[MInstr]
                      ) -> Tuple[List[List[int]], List[int]]:
    """The data/memory/effect dependence edges over ``body`` (any
    straight-line instruction sequence): returns ``(succs, npreds)``."""
    n = len(body)
    succs: List[List[int]] = [[] for _ in range(n)]
    npreds = [0] * n

    def edge(a: int, b: int) -> None:
        succs[a].append(b)
        npreds[b] += 1

    last_def: Dict[int, int] = {}
    last_uses: Dict[int, List[int]] = {}
    last_store = -1
    last_effect = -1
    # every load since the last store/effect barrier: the next barrier
    # needs an edge from each of them, not just the most recent one (a
    # load blocked behind a long-latency chain must still not sink past
    # a later store)
    pending_loads: List[int] = []
    for i, instr in enumerate(body):
        for reg in instr.uses:                       # RAW
            if reg in last_def:
                edge(last_def[reg], i)
            last_uses.setdefault(reg, []).append(i)
        if instr.dest is not None:
            if instr.dest in last_def:               # WAW
                edge(last_def[instr.dest], i)
            for use in last_uses.get(instr.dest, ()):  # WAR
                if use != i:
                    edge(use, i)
            last_def[instr.dest] = i
            last_uses[instr.dest] = []
        if instr.op == "st":
            if last_store >= 0:    # stores stay ordered with each other
                edge(last_store, i)
            for load in pending_loads:  # no load sinks below a store
                edge(load, i)
            if last_effect >= 0:
                edge(last_effect, i)
            last_store = i
            pending_loads = []
        elif instr.is_load:
            if last_store >= 0:    # a load never hoists above a store
                edge(last_store, i)
            if last_effect >= 0:
                edge(last_effect, i)
            pending_loads.append(i)
        elif instr.op in EFFECT_OPS:
            if last_store >= 0:    # calls may read and write memory
                edge(last_store, i)
            for load in pending_loads:
                edge(load, i)
            if last_effect >= 0:
                edge(last_effect, i)
            last_effect = i
            pending_loads = []
    return succs, npreds


def _list_schedule(body: Sequence[MInstr], succs: List[List[int]],
                   npreds: List[int],
                   priority: Sequence[float]) -> List[MInstr]:
    """Greedy list scheduling: highest priority first, stable on ties
    (priority is negated into a min-heap keyed ``(-priority, index)``)."""
    n = len(body)
    ready = [(-priority[i], i) for i in range(n) if npreds[i] == 0]
    heapq.heapify(ready)
    order: List[MInstr] = []
    while ready:
        _, i = heapq.heappop(ready)
        order.append(body[i])
        for s in succs[i]:
            npreds[s] -= 1
            if npreds[s] == 0:
                heapq.heappush(ready, (-priority[s], s))
    assert len(order) == n, "dependence cycle in region (scheduler bug)"
    return order


def _heights(body: Sequence[MInstr],
             succs: List[List[int]]) -> List[int]:
    """Critical-path height of each instruction: the longest
    latency-weighted dependence path to the end of the region."""
    n = len(body)
    height = [0] * n
    for i in range(n - 1, -1, -1):
        below = max((height[s] for s in succs[i]), default=0)
        height[i] = below + _HEIGHT.get(body[i].op, 1)
    return height


# ---------------------------------------------------------------------------
# Block scheduling (the default `--sched block` mode)
# ---------------------------------------------------------------------------


def _schedule_block(block: MBlock) -> None:
    instrs = block.instrs
    # The skip condition is about the *schedulable body*: the terminator
    # (when present) is pinned last and does not participate, so a block
    # needs at least two non-terminator instructions to have anything to
    # reorder.  (An unterminated two-instruction block has a two-deep
    # body and *is* scheduled.)
    term = instrs[-1] if instrs and instrs[-1].is_terminator else None
    body = instrs[:-1] if term is not None else list(instrs)
    if len(body) <= 1:
        return

    succs, npreds = _dependence_edges(body)
    height = _heights(body, succs)
    order = _list_schedule(body, succs, npreds, height)
    block.instrs = order + ([term] if term is not None else [])


def schedule_function(fn: MFunction) -> None:
    """Reschedule every block of ``fn`` in place."""
    for block in fn.blocks:
        _schedule_block(block)


def schedule_program(program: MProgram) -> MProgram:
    """Reschedule every function in place; returns ``program``."""
    for fn in program.functions.values():
        schedule_function(fn)
    return program


# ---------------------------------------------------------------------------
# Trace scheduling (the `--sched superblock` mode; see superblock.py)
# ---------------------------------------------------------------------------


def _recovery_summary(rec: MBlock) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """``(defs, uses)`` register sets of a ``chk.s`` recovery block."""
    defs = frozenset(i.dest for i in rec.instrs if i.dest is not None)
    uses = frozenset(r for i in rec.instrs for r in i.uses)
    return defs, uses


def may_hoist_above(instr: MInstr, pred: MBlock, entered: MBlock,
                    live_in: Dict[int, FrozenSet[int]]) -> bool:
    """May ``instr`` (from a block after ``pred`` on the trace) move
    above ``pred``'s terminator?  ``entered`` is the trace block the
    terminator continues into; every *other* target is a side exit the
    hoisted instruction must be invisible on:

    * a ``br`` side exit must not observe the early definition —
      ``instr.dest`` may not be live into the exit target;
    * a ``chk.s``'s recovery block replays the speculative assign, so
      additionally the hoisted instruction may neither read nor write
      any register the replay defines (else the replayed path computes
      with, or clobbers, the wrong values), nor write anything the
      replay reads (the address chain it re-executes).

    Data, memory and effect ordering is *not* checked here — the trace
    DAG's dependence edges already enforce it; this predicate only
    answers the control-flow question.
    """
    if instr.op not in HOISTABLE_OPS:
        return False
    term = pred.instrs[-1] if pred.instrs else None
    if term is None or not term.is_terminator:
        return False
    if term.op == "jmp":
        return True            # unconditional: no side exit to protect
    if term.op == "ret":
        return False           # nothing may cross a return
    dest = instr.dest
    if term.op == "chk.s":
        rec = term.targets[1]
        if rec is entered:     # tracing into recovery: treat as opaque
            return False
        rec_defs, rec_uses = _recovery_summary(rec)
        if dest in rec_defs or dest in rec_uses:
            return False
        if any(r in rec_defs for r in instr.uses):
            return False
        return dest not in live_in.get(id(rec), frozenset())
    # br: every non-trace target is a side exit
    for target in term.targets:
        if target is entered:
            continue
        if dest in live_in.get(id(target), frozenset()):
            return False
    return True


def compute_live_in(fn: MFunction) -> Dict[int, FrozenSet[int]]:
    """Per-block live-in register sets (backward liveness over the
    machine CFG), keyed by ``id(block)`` — the side-exit visibility
    oracle for :func:`may_hoist_above`."""
    blocks = fn.blocks
    index = {id(block): i for i, block in enumerate(blocks)}
    succs: List[List[int]] = []
    for block in blocks:
        term = block.terminator
        succs.append([index[id(t)] for t in term.targets] if term else [])
    live_in: List[FrozenSet[int]] = [frozenset()] * len(blocks)
    changed = True
    while changed:
        changed = False
        for i in range(len(blocks) - 1, -1, -1):
            live = set()
            for s in succs[i]:
                live |= live_in[s]
            for instr in reversed(blocks[i].instrs):
                if instr.dest is not None:
                    live.discard(instr.dest)
                live.update(instr.uses)
            frozen = frozenset(live)
            if frozen != live_in[i]:
                live_in[i] = frozen
                changed = True
    return {id(block): live_in[i] for i, block in enumerate(blocks)}


def schedule_trace(blocks: Sequence[MBlock], weights: Sequence[float],
                   live_in: Dict[int, FrozenSet[int]]) -> None:
    """Schedule one trace as a single region, in place.

    The trace's instructions (terminators included) form one DAG: data/
    memory/effect edges from :func:`_dependence_edges` over the
    concatenated sequence, plus structural edges keeping every
    instruction before its own block's terminator, terminators in trace
    order, and non-hoistable instructions below the previous
    terminator.  A hoistable instruction's structural predecessor is
    the terminator of the highest block it may legally rise to
    (:func:`may_hoist_above`, checked for every crossed exit).

    Priority is expected cycles saved: critical-path height scaled by
    the home block's profile weight relative to the trace entry, so
    hot-path chains win the issue slots that cold post-exit chains
    would otherwise take.  The scheduled sequence is partitioned back
    at the terminators, so block identities (and every branch target in
    the rest of the function) survive untouched.
    """
    if not blocks:
        return
    nodes: List[MInstr] = []
    node_block: List[int] = []
    for bi, block in enumerate(blocks):
        for instr in block.instrs:
            nodes.append(instr)
            node_block.append(bi)
    if len(nodes) <= 1:
        return
    succs, npreds = _dependence_edges(nodes)

    def edge(a: int, b: int) -> None:
        succs[a].append(b)
        npreds[b] += 1

    term_node = [-1] * len(blocks)
    for i, instr in enumerate(nodes):
        if instr.is_terminator:
            term_node[node_block[i]] = i
    if any(t < 0 for t in term_node):
        # a malformed (unterminated) block: fall back to block-local
        # scheduling, which has no cross-block motion to get wrong
        for block in blocks:
            _schedule_block(block)
        return

    for i, instr in enumerate(nodes):
        bi = node_block[i]
        if i == term_node[bi]:
            if bi > 0:            # terminators stay in trace order
                edge(term_node[bi - 1], i)
            continue
        edge(i, term_node[bi])    # never sink below the own terminator
        k = bi
        while k > 0 and may_hoist_above(instr, blocks[k - 1], blocks[k],
                                        live_in):
            k -= 1
        if k > 0:                 # pinned below terminator k-1
            edge(term_node[k - 1], i)

    height = _heights(nodes, succs)
    w_entry = max(float(weights[0]), 1.0) if weights else 1.0
    priority = [0.0] * len(nodes)
    for i in range(len(nodes)):
        w = float(weights[node_block[i]]) if weights else 1.0
        frac = min(max(w / w_entry, 0.01), 1.0)
        priority[i] = height[i] * frac
    order = _list_schedule(nodes, succs, npreds, priority)

    out: List[List[MInstr]] = [[] for _ in blocks]
    cur = 0
    for instr in order:
        out[cur].append(instr)
        if instr.is_terminator:
            cur += 1
    assert cur == len(blocks), "trace partition lost a terminator"
    for bi, block in enumerate(blocks):
        block.instrs = out[bi]
