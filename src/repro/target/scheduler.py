"""Latency-aware list scheduling of machine code (docs/machine_model.md).

Each block is rescheduled independently: build the dependence DAG, then
greedily issue the ready instruction with the greatest critical-path
height (longest latency-weighted path to the end of the block), breaking
ties by original order so scheduling is deterministic and a no-op on
already-optimal code.

Ordering rules, from strongest to weakest:

* the terminator stays last — and ``chk.s`` *is* a terminator, so a
  speculation check can never drift past the stores, effects or
  branches it guards: everything it must precede lives in later
  blocks, and the ``ld.s`` it checks is pinned before it by the RAW
  dependence on the checked register;
* effect instructions (``call``/``print``/``input``/``alloc``) keep
  their relative order and never cross a memory access (calls may read
  and write memory);
* stores stay ordered with each other and **no load moves across a
  store in either direction**.  This subsumes the ALAT rule the model
  documents: hoisting an ``ld.c`` above a store could let the check hit
  an entry the store was about to invalidate — a missed mis-speculation,
  i.e. a miscompile, not a slowdown;
* register dependences: RAW, WAR and WAW (virtual registers are not
  renamed, and ``ld.c`` *reads* its own destination).
"""

from __future__ import annotations

from typing import Dict, List

from .isa import EFFECT_OPS, MBlock, MFunction, MInstr, MProgram

#: static latency estimates used for priority (not for correctness)
_HEIGHT = {"ld": 6, "ld.a": 6, "ld.s": 6, "ld.c": 1, "ld.r": 6,
           "mul": 3, "div": 12, "rem": 12}


def _schedule_block(block: MBlock) -> None:
    instrs = block.instrs
    if len(instrs) <= 2:
        return
    term = instrs[-1] if instrs[-1].is_terminator else None
    body = instrs[:-1] if term is not None else list(instrs)
    n = len(body)
    if n <= 1:
        return

    succs: List[List[int]] = [[] for _ in range(n)]
    npreds = [0] * n

    def edge(a: int, b: int) -> None:
        succs[a].append(b)
        npreds[b] += 1

    last_def: Dict[int, int] = {}
    last_uses: Dict[int, List[int]] = {}
    last_store = -1
    last_effect = -1
    # every load since the last store/effect barrier: the next barrier
    # needs an edge from each of them, not just the most recent one (a
    # load blocked behind a long-latency chain must still not sink past
    # a later store)
    pending_loads: List[int] = []
    for i, instr in enumerate(body):
        for reg in instr.uses:                       # RAW
            if reg in last_def:
                edge(last_def[reg], i)
            last_uses.setdefault(reg, []).append(i)
        if instr.dest is not None:
            if instr.dest in last_def:               # WAW
                edge(last_def[instr.dest], i)
            for use in last_uses.get(instr.dest, ()):  # WAR
                if use != i:
                    edge(use, i)
            last_def[instr.dest] = i
            last_uses[instr.dest] = []
        if instr.op == "st":
            if last_store >= 0:    # stores stay ordered with each other
                edge(last_store, i)
            for load in pending_loads:  # no load sinks below a store
                edge(load, i)
            if last_effect >= 0:
                edge(last_effect, i)
            last_store = i
            pending_loads = []
        elif instr.is_load:
            if last_store >= 0:    # a load never hoists above a store
                edge(last_store, i)
            if last_effect >= 0:
                edge(last_effect, i)
            pending_loads.append(i)
        elif instr.op in EFFECT_OPS:
            if last_store >= 0:    # calls may read and write memory
                edge(last_store, i)
            for load in pending_loads:
                edge(load, i)
            if last_effect >= 0:
                edge(last_effect, i)
            last_effect = i
            pending_loads = []

    height = [0] * n
    for i in range(n - 1, -1, -1):
        below = max((height[s] for s in succs[i]), default=0)
        height[i] = below + _HEIGHT.get(body[i].op, 1)

    # greedy list scheduling: highest critical path first, stable on ties
    import heapq

    ready = [(-height[i], i) for i in range(n) if npreds[i] == 0]
    heapq.heapify(ready)
    order: List[MInstr] = []
    while ready:
        _, i = heapq.heappop(ready)
        order.append(body[i])
        for s in succs[i]:
            npreds[s] -= 1
            if npreds[s] == 0:
                heapq.heappush(ready, (-height[s], s))
    assert len(order) == n, "dependence cycle in block (scheduler bug)"
    block.instrs = order + ([term] if term is not None else [])


def schedule_function(fn: MFunction) -> None:
    """Reschedule every block of ``fn`` in place."""
    for block in fn.blocks:
        _schedule_block(block)


def schedule_program(program: MProgram) -> MProgram:
    """Reschedule every function in place; returns ``program``."""
    for fn in program.functions.values():
        schedule_function(fn)
    return program
