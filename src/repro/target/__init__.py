"""``repro.target`` — the IA-64-flavoured machine model.

The measurement half of the reproduction (docs/machine_model.md,
docs/target_api.md, docs/recovery.md): a virtual-register ISA with the
five load flavours (``ld``/``ld.a``/``ld.s``/``ld.c``/``ld.r``) and the
``chk.s`` misspeculation check, code generation from the optimized IR
(including per-``ld.s`` recovery blocks), the ALAT and the two-level
data cache, an in-order scoreboard simulator with NaT deferred-fault
semantics reporting the paper's counters, and a latency-aware list
scheduler.

Typical use::

    from repro.target import compile_module, run_program, schedule_program

    program = compile_module(optimized_module)
    schedule_program(program)
    stats, output = run_program(program, inputs=[...])
"""

from .alat import ALAT
from .cache import DataCache
from .codegen import compile_function, compile_module, compute_max_live
from .isa import (ALU_OPS, EFFECT_OPS, LOAD_OPS, TERMINATOR_OPS, MBlock,
                  MFunction, MInstr, MProgram)
from .machine import (ENGINES, NAT, MachineError, MachineFuelExhausted,
                      run_program)
from .scheduler import (HOISTABLE_OPS, compute_live_in, may_hoist_above,
                        schedule_function, schedule_program, schedule_trace)
from .stats import FnStats, MachineStats
from .superblock import (MachineProfile, Trace, form_superblocks,
                         layout_function, schedule_superblocks)
from .verify import verify_function, verify_program

__all__ = [
    "ALAT", "ALU_OPS", "DataCache", "EFFECT_OPS", "ENGINES", "FnStats",
    "HOISTABLE_OPS", "LOAD_OPS", "MBlock", "MFunction", "MInstr",
    "MProgram", "MachineError", "MachineFuelExhausted", "MachineProfile",
    "MachineStats", "NAT", "TERMINATOR_OPS", "Trace",
    "compile_function", "compile_module", "compute_live_in",
    "compute_max_live", "form_superblocks", "layout_function",
    "may_hoist_above", "run_program", "schedule_function",
    "schedule_program", "schedule_superblocks", "schedule_trace",
    "verify_function", "verify_program",
]
