"""The two-level data cache (docs/machine_model.md §"Memory hierarchy").

Cell-granular lines, LRU within each set.  The one Itanium-specific wrinkle
is carried over from the paper's §5.2: **floating-point loads bypass L1**
and are served from L2 at best (9 cycles on the paper's machine vs. 2 for
an integer L1 hit) — which is precisely why speculative register promotion
pays so well on the FP benchmarks: every promoted FP load saves ≥ the L2
latency, not just an L1 hit.

Stores allocate (so a hot structure becomes resident either way) but do
not stall the pipeline; only load latencies feed the scoreboard.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict


class _Level:
    """One set-associative level: set index -> OrderedDict of resident
    line numbers (LRU first)."""

    __slots__ = ("nsets", "ways", "sets")

    def __init__(self, lines: int, ways: int) -> None:
        if lines <= 0 or ways <= 0 or lines % ways:
            raise ValueError("lines must be a positive multiple of ways")
        self.nsets = lines // ways
        self.ways = ways
        self.sets: Dict[int, "OrderedDict[int, None]"] = {}

    def lookup(self, line: int) -> bool:
        entries = self.sets.get(line % self.nsets)
        if entries is None or line not in entries:
            return False
        entries.move_to_end(line)
        return True

    def fill(self, line: int) -> None:
        index = line % self.nsets
        entries = self.sets.get(index)
        if entries is None:
            entries = self.sets[index] = OrderedDict()
        entries[line] = None
        entries.move_to_end(line)
        if len(entries) > self.ways:
            entries.popitem(last=False)

    def clear(self) -> None:
        self.sets.clear()


class DataCache:
    """Two-level LRU data cache in cell units."""

    def __init__(self, l1_lines: int = 128, l2_lines: int = 1024,
                 ways: int = 4, line_cells: int = 8,
                 l1_latency: int = 2, l2_latency: int = 9,
                 mem_latency: int = 60) -> None:
        self.l1_lines = l1_lines
        self.l2_lines = l2_lines
        self.ways = ways
        self.line_cells = line_cells
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.mem_latency = mem_latency
        self._l1 = _Level(l1_lines, ways)
        self._l2 = _Level(l2_lines, ways)
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    # ---- lifecycle ------------------------------------------------------
    def clone(self, mem_latency: int = None) -> "DataCache":
        """A fresh, cold cache with the same geometry; ``mem_latency``
        optionally overridden (the ablation knob)."""
        return DataCache(self.l1_lines, self.l2_lines, self.ways,
                         self.line_cells, self.l1_latency, self.l2_latency,
                         self.mem_latency if mem_latency is None
                         else mem_latency)

    def reset(self) -> None:
        self._l1.clear()
        self._l2.clear()
        self.l1_hits = self.l2_hits = self.misses = 0

    def flush(self) -> None:
        """Drop all residency but keep the hit/miss counters (fault
        injection: a flush makes later loads slower, never wrong)."""
        self._l1.clear()
        self._l2.clear()

    # ---- accesses -------------------------------------------------------
    #
    # The two methods below are the simulator's per-memory-op hot path,
    # so the per-level probes are inlined rather than routed through
    # ``_Level.lookup``/``fill`` — the residency updates, LRU order and
    # hit/miss counters are identical, only the call overhead is gone.

    def load(self, addr: int, fp: bool = False) -> int:
        """Access latency of a load at ``addr``; updates residency."""
        line = addr // self.line_cells
        l1 = self._l1
        if not fp:
            l1e = l1.sets.get(line % l1.nsets)
            if l1e is not None and line in l1e:
                l1e.move_to_end(line)
                self.l1_hits += 1
                return self.l1_latency
        l2 = self._l2
        index = line % l2.nsets
        l2e = l2.sets.get(index)
        if l2e is not None and line in l2e:
            l2e.move_to_end(line)
            self.l2_hits += 1
            if not fp:
                if l1e is None:
                    l1e = l1.sets[line % l1.nsets] = OrderedDict()
                l1e[line] = None
                if len(l1e) > l1.ways:
                    l1e.popitem(last=False)
            return self.l2_latency
        self.misses += 1
        if l2e is None:
            l2e = l2.sets[index] = OrderedDict()
        l2e[line] = None
        if len(l2e) > l2.ways:
            l2e.popitem(last=False)
        if not fp:
            if l1e is None:
                l1e = l1.sets[line % l1.nsets] = OrderedDict()
            l1e[line] = None
            if len(l1e) > l1.ways:
                l1e.popitem(last=False)
        return self.mem_latency

    def store(self, addr: int, fp: bool = False) -> None:
        """Write-allocate: make the line resident (no pipeline stall)."""
        line = addr // self.line_cells
        l2 = self._l2
        index = line % l2.nsets
        entries = l2.sets.get(index)
        if entries is not None and line in entries:
            entries.move_to_end(line)
        else:
            if entries is None:
                entries = l2.sets[index] = OrderedDict()
            entries[line] = None
            if len(entries) > l2.ways:
                entries.popitem(last=False)
        if not fp:
            l1 = self._l1
            index = line % l1.nsets
            entries = l1.sets.get(index)
            if entries is not None and line in entries:
                entries.move_to_end(line)
            else:
                if entries is None:
                    entries = l1.sets[index] = OrderedDict()
                entries[line] = None
                if len(entries) > l1.ways:
                    entries.popitem(last=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DataCache L1 {self.l1_lines} L2 {self.l2_lines} "
                f"hits {self.l1_hits}/{self.l2_hits} misses {self.misses}>")
