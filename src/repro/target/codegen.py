"""Code generation: optimized mid-level IR → :class:`MProgram`.

The translation is a straightforward tree walk — SSAPRE already did the
clever part — with two points of interest:

* **Speculative flavours.**  An :class:`~repro.ir.Assign` whose
  ``spec_kind`` is ``"advance"`` / ``"check"`` / ``"sload"`` and whose
  value is a bare memory read lowers to ``ld.a`` / ``ld.c`` / ``ld.s``
  targeting the symbol's home register; the dest register is the ALAT
  key, so the check finds the entry its advanced load armed (after
  out-of-SSA both sides of the pair collapse to one symbol, hence one
  register).  A flavoured assign whose value is a *compound* expression
  (a control-speculative insertion of a whole template) lowers its
  embedded loads as non-faulting ``ld.s`` — they execute on paths where
  the original program might not have reached them.

* **Misspeculation recovery.**  Every control-speculative assign
  (``sload``, and compound ``advance`` templates with embedded
  ``ld.s``) is followed by a ``chk.s`` on its result register: the
  emitting block is split, the check falls through to the continuation
  on a real value, and on NaT branches to an out-of-line recovery
  block that *replays the whole assign* with non-speculative ``ld.r``
  loads before jumping back to the continuation (docs/recovery.md).
  Bare ``ld.a`` advances need no ``chk.s``: their ``ld.c`` re-executes
  the load on an ALAT miss, which is already a full replay.

* **Storage classes.**  Register-candidate symbols live in virtual
  registers.  Globals and address-taken locals live in memory; their
  direct reads/writes become ``lea`` + ``ld``/``st`` — the load
  population register promotion shrinks.  Frame layout order mirrors
  the reference interpreter exactly, so concrete addresses (observable
  through pointer arithmetic) agree between the two executions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import (AddrOf, Assign, BasicBlock, Bin, CallStmt, CondBr, Const,
                  Expr, Function, Jump, Load, Module, PrintStmt, Return,
                  StorageKind, Store, Symbol, Un, VarRead)
from .isa import (BIN_OP_NAMES, LOAD_OPS, UN_OP_NAMES, MBlock, MFunction,
                  MInstr, MProgram)

_SPEC_LOAD_OP = {"advance": "ld.a", "check": "ld.c", "sload": "ld.s"}


def _is_memory_resident(sym: Symbol) -> bool:
    """Direct reads/writes of these symbols are memory accesses."""
    return (sym.kind is StorageKind.GLOBAL or sym.address_taken) \
        and not sym.is_virtual and not sym.is_array


class _FunctionCodegen:
    def __init__(self, fn: Function) -> None:
        self.fn = fn
        self.out = MFunction(fn.name)
        self._reg_of: Dict[Symbol, int] = {}
        self._nregs = 0
        self._block_map: Dict[BasicBlock, MBlock] = {}
        # layout segments per IR block (head + chk.s continuations) and
        # the out-of-line recovery blocks, appended after everything
        self._segments: Dict[BasicBlock, List[MBlock]] = {}
        self._segment_of: Optional[BasicBlock] = None
        self._recovery: List[MBlock] = []
        self._nsplits = 0

    # ---- registers ------------------------------------------------------
    def _fresh_reg(self) -> int:
        reg = self._nregs
        self._nregs += 1
        return reg

    def reg_of(self, sym: Symbol) -> int:
        reg = self._reg_of.get(sym)
        if reg is None:
            reg = self._fresh_reg()
            self._reg_of[sym] = reg
        return reg

    # ---- driver ---------------------------------------------------------
    def run(self) -> MFunction:
        fn, out = self.fn, self.out
        # Parameters arrive in registers, in order.
        for sym in fn.params:
            out.param_regs.append(self.reg_of(sym))
        # Frame layout: the reference interpreter's allocation order.
        for sym in fn.locals:
            if sym.is_array:
                out.frame_allocs.append((sym, sym.array_size))
            elif sym.address_taken:
                out.frame_allocs.append((sym, 1))
        spills: List[Symbol] = []
        for sym in fn.params:
            if sym.address_taken:
                out.frame_allocs.append((sym, 1))
                spills.append(sym)

        blocks = list(fn.blocks)
        if fn.entry in blocks:  # entry leads the layout
            blocks.remove(fn.entry)
            blocks.insert(0, fn.entry)
        for block in blocks:
            self._block_map[block] = MBlock(block.name)

        entry = self._block_map[fn.entry]
        # Address-taken parameters: spill the incoming register to the
        # frame slot the rest of the function addresses.
        for sym in spills:
            addr = entry.append(MInstr("lea", self._fresh_reg(), sym=sym))
            entry.append(MInstr("st", srcs=(addr.dest, self.reg_of(sym)),
                                fp=sym.ty.is_float))

        for block in blocks:
            self._lower_block(block, self._block_map[block])
        # Layout: each block's segments in flow order (chk.s falls
        # through to its continuation), recovery blocks out of line at
        # the end so the no-misspeculation path never pays for them.
        for block in blocks:
            out.blocks.extend(self._segments[block])
        out.blocks.extend(self._recovery)
        out.nregs = self._nregs
        out.max_live = compute_max_live(out)
        return out

    # ---- expressions ----------------------------------------------------
    def _emit_expr(self, out: MBlock, expr: Expr,
                   dest: Optional[int] = None,
                   nonfaulting: bool = False) -> int:
        """Emit code evaluating ``expr``; returns the result register.

        ``dest`` pins the result into a specific register.  With
        ``nonfaulting`` every embedded memory read becomes ``ld.s``
        (the expression was hoisted to a path that may not reach the
        original load)."""
        if isinstance(expr, Const):
            instr = MInstr("movi", dest if dest is not None
                           else self._fresh_reg(), imm=expr.value)
            out.append(instr)
            return instr.dest
        if isinstance(expr, VarRead):
            sym = expr.sym
            if sym.is_array:  # array decays to its base address
                instr = out.append(MInstr("lea", dest if dest is not None
                                          else self._fresh_reg(), sym=sym))
                return instr.dest
            if _is_memory_resident(sym):
                return self._emit_scalar_load(
                    out, sym, "ld.s" if nonfaulting else "ld", dest)
            reg = self.reg_of(sym)
            if dest is not None and dest != reg:
                out.append(MInstr("mov", dest, (reg,)))
                return dest
            return reg
        if isinstance(expr, AddrOf):
            instr = out.append(MInstr("lea", dest if dest is not None
                                      else self._fresh_reg(), sym=expr.sym))
            return instr.dest
        if isinstance(expr, Load):
            addr = self._emit_expr(out, expr.addr, nonfaulting=nonfaulting)
            instr = out.append(MInstr(
                "ld.s" if nonfaulting else "ld",
                dest if dest is not None else self._fresh_reg(),
                (addr,), fp=expr.value_ty.is_float))
            return instr.dest
        if isinstance(expr, Bin):
            left = self._emit_expr(out, expr.left, nonfaulting=nonfaulting)
            right = self._emit_expr(out, expr.right, nonfaulting=nonfaulting)
            instr = out.append(MInstr(
                BIN_OP_NAMES[expr.op],
                dest if dest is not None else self._fresh_reg(),
                (left, right)))
            return instr.dest
        if isinstance(expr, Un):
            operand = self._emit_expr(out, expr.operand,
                                      nonfaulting=nonfaulting)
            instr = out.append(MInstr(
                UN_OP_NAMES[expr.op],
                dest if dest is not None else self._fresh_reg(),
                (operand,)))
            return instr.dest
        raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _emit_scalar_load(self, out: MBlock, sym: Symbol, op: str,
                          dest: Optional[int]) -> int:
        addr = out.append(MInstr("lea", self._fresh_reg(), sym=sym))
        instr = out.append(MInstr(op, dest if dest is not None
                                  else self._fresh_reg(), (addr.dest,),
                                  fp=sym.ty.is_float))
        return instr.dest

    # ---- statements -----------------------------------------------------
    def _assign_to(self, out: MBlock, sym: Symbol, value_reg: int) -> None:
        """Store ``value_reg`` into ``sym``'s home (register or memory)."""
        if _is_memory_resident(sym):
            addr = out.append(MInstr("lea", self._fresh_reg(), sym=sym))
            out.append(MInstr("st", srcs=(addr.dest, value_reg),
                              fp=sym.ty.is_float))
        elif value_reg != self.reg_of(sym):
            out.append(MInstr("mov", self.reg_of(sym), (value_reg,)))

    def _lower_assign(self, out: MBlock, stmt: Assign) -> MBlock:
        """Lower one assign; returns the block subsequent code goes
        into (a new continuation when the assign grew a ``chk.s``)."""
        sym, value, kind = stmt.sym, stmt.value, stmt.spec_kind
        if kind in _SPEC_LOAD_OP and not _is_memory_resident(sym):
            op = _SPEC_LOAD_OP[kind]
            start = len(out.instrs)
            compound = False
            if isinstance(value, Load):
                addr = self._emit_expr(out, value.addr)
                out.append(MInstr(op, self.reg_of(sym), (addr,),
                                  fp=value.value_ty.is_float))
            elif isinstance(value, VarRead) \
                    and _is_memory_resident(value.sym):
                self._emit_scalar_load(out, value.sym, op, self.reg_of(sym))
            else:
                # Compound speculative template (control-speculative
                # insertion): no single load to flavour — evaluate it
                # with non-faulting embedded loads.
                self._emit_expr(out, value, dest=self.reg_of(sym),
                                nonfaulting=kind in ("sload", "advance"))
                compound = True
            if kind == "sload" or (kind == "advance" and compound):
                return self._emit_check(out, start, self.reg_of(sym))
            return out
        if _is_memory_resident(sym):
            reg = self._emit_expr(out, value)
            self._assign_to(out, sym, reg)
        else:
            self._emit_expr(out, value, dest=self.reg_of(sym))
        return out

    def _emit_check(self, out: MBlock, start: int, reg: int) -> MBlock:
        """Terminate ``out`` with ``chk.s reg`` and build the recovery
        block: a copy of the assign's span (``out.instrs[start:]``)
        with every load replayed as non-speculative ``ld.r``, jumping
        back to the continuation block this returns."""
        self._nsplits += 1
        cont = MBlock(f"{out.name}.c{self._nsplits}")
        rec = MBlock(f"{out.name}.r{self._nsplits}")
        for instr in out.instrs[start:]:
            rec.append(MInstr("ld.r" if instr.op in LOAD_OPS else instr.op,
                              instr.dest, instr.srcs, instr.imm, instr.sym,
                              instr.callee, instr.targets, instr.fp,
                              instr.coerce))
        rec.append(MInstr("jmp", targets=(cont,)))
        out.append(MInstr("chk.s", srcs=(reg,), targets=(cont, rec)))
        self._segments[self._segment_of].append(cont)
        self._recovery.append(rec)
        return cont

    def _lower_block(self, block: BasicBlock, out: MBlock) -> None:
        self._segments[block] = [out]
        self._segment_of = block
        for stmt in block.stmts:
            if isinstance(stmt, Assign):
                out = self._lower_assign(out, stmt)
            elif isinstance(stmt, Store):
                addr = self._emit_expr(out, stmt.addr)
                value = self._emit_expr(out, stmt.value)
                out.append(MInstr("st", srcs=(addr, value),
                                  fp=stmt.value_ty.is_float,
                                  coerce=stmt.value_ty.is_float))
            elif isinstance(stmt, CallStmt):
                self._lower_call(out, stmt)
            elif isinstance(stmt, PrintStmt):
                args = [self._emit_expr(out, a) for a in stmt.args]
                out.append(MInstr("print", srcs=args))
            else:  # pragma: no cover
                raise TypeError(f"unknown statement {stmt!r}")
        term = block.terminator
        assert term is not None, f"unterminated block {block.name}"
        if isinstance(term, Jump):
            out.append(MInstr("jmp", targets=(self._block_map[term.target],)))
        elif isinstance(term, CondBr):
            cond = self._emit_expr(out, term.cond)
            out.append(MInstr("br", srcs=(cond,),
                              targets=(self._block_map[term.then_block],
                                       self._block_map[term.else_block])))
        elif isinstance(term, Return):
            srcs = ()
            if term.value is not None:
                srcs = (self._emit_expr(out, term.value),)
            out.append(MInstr("ret", srcs=srcs))
        else:  # pragma: no cover
            raise TypeError(f"unknown terminator {term!r}")

    def _lower_call(self, out: MBlock, stmt: CallStmt) -> None:
        temp = None
        if stmt.dst is not None:
            temp = (self.reg_of(stmt.dst)
                    if not _is_memory_resident(stmt.dst)
                    else self._fresh_reg())
        if stmt.callee in ("input", "inputf"):
            # these always produce a value (a dest-less input still
            # consumes from the stream)
            out.append(MInstr(stmt.callee,
                              temp if temp is not None
                              else self._fresh_reg()))
        elif stmt.is_alloc:
            size = self._emit_expr(out, stmt.args[0])
            out.append(MInstr("alloc",
                              temp if temp is not None
                              else self._fresh_reg(), (size,)))
        else:
            args = [self._emit_expr(out, a) for a in stmt.args]
            out.append(MInstr("call", temp, args, callee=stmt.callee))
        if stmt.dst is not None and _is_memory_resident(stmt.dst):
            self._assign_to(out, stmt.dst, temp)


def compile_function(fn: Function) -> MFunction:
    """Compile one IR function to machine code."""
    return _FunctionCodegen(fn).run()


def compile_module(module: Module) -> MProgram:
    """Compile an optimized :class:`~repro.ir.Module` to a
    :class:`MProgram` ready for :func:`~repro.target.run_program`."""
    program = MProgram()
    for sym in module.globals:
        program.globals.append((sym, sym.array_size if sym.is_array else 1))
    for fn in module.functions.values():
        program.add_function(compile_function(fn))
    return program


def compute_max_live(fn: MFunction) -> int:
    """Static maximum of simultaneously-live virtual registers.

    Backward liveness over the machine CFG; the per-point peak is the
    §5.2 register-pressure proxy (what would drive Itanium's stacked
    register allocation)."""
    succs: Dict[int, List[int]] = {}
    index = {block: i for i, block in enumerate(fn.blocks)}
    for i, block in enumerate(fn.blocks):
        term = block.terminator
        succs[i] = [index[t] for t in term.targets] if term else []
    live_in: List[frozenset] = [frozenset()] * len(fn.blocks)
    live_out: List[set] = [set() for _ in fn.blocks]
    changed = True
    while changed:
        changed = False
        for i in range(len(fn.blocks) - 1, -1, -1):
            out_set = set()
            for s in succs[i]:
                out_set |= live_in[s]
            live_out[i] = out_set
            live = set(out_set)
            for instr in reversed(fn.blocks[i].instrs):
                if instr.dest is not None:
                    live.discard(instr.dest)
                live.update(instr.uses)
            frozen = frozenset(live)
            if frozen != live_in[i]:
                live_in[i] = frozen
                changed = True
    max_live = len(set(fn.param_regs))
    for i, block in enumerate(fn.blocks):
        live = set(live_out[i])
        max_live = max(max_live, len(live))
        for instr in reversed(block.instrs):
            if instr.dest is not None:
                live.discard(instr.dest)
            live.update(instr.uses)
            max_live = max(max_live, len(live))
    return max_live
