"""The frozen *classic-dispatch* simulator engine.

This module preserves the original interpretive dispatch loop of
:mod:`repro.target.machine` — the one that re-classifies every dynamic
instruction's operands in the scoreboard stage — as a wall-clock
baseline.  The live engine (``run_program``'s default) pre-decodes that
classification at translation time; ``run_program(...,
engine="classic")`` selects this one instead, and
``benchmarks/test_compiler_perf.py`` times the two against each other
to keep the dispatch speedup visible in ``BENCH_perf.json``.

Both engines are *semantically identical* — same outputs, same counters,
same cycles (property: tests/target/test_machine.py asserts full
``MachineStats`` equality across the workload suite).  Keep it that way:
a behavioural fix to one engine must land in both.  Do **not** optimize
this module; its slowness is the point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import StorageKind
from .machine import (NAT, _ALU_LATENCY, _BIN_FN, _UN_FN, MachineError,
                      MachineFuelExhausted, Value)
from .isa import MFunction
from .stats import MachineStats



# ---- opcode encoding (the classic numbering) --------------------------

(_MOVI, _MOV, _LEA, _LD, _LDA, _LDS, _LDC, _LDR, _ST, _BIN, _UN, _CALL,
 _INPUT, _INPUTF, _ALLOC, _PRINT, _JMP, _BR, _RET, _CHK) = range(20)

_LOAD_CODE = {"ld": _LD, "ld.a": _LDA, "ld.s": _LDS, "ld.c": _LDC,
              "ld.r": _LDR}


class _ClassicTFunc:
    """One translated function: blocks of instruction tuples."""

    __slots__ = ("name", "blocks", "nregs", "param_regs", "frame_allocs")

    def __init__(self, fn: MFunction) -> None:
        self.name = fn.name
        self.nregs = fn.nregs
        self.param_regs = fn.param_regs
        self.frame_allocs = fn.frame_allocs
        index = {id(block): i for i, block in enumerate(fn.blocks)}
        self.blocks: List[List[tuple]] = []
        for i, block in enumerate(fn.blocks):
            out: List[tuple] = []
            for instr in block.instrs:
                op = instr.op
                if op == "movi":
                    out.append((_MOVI, instr.dest, instr.imm))
                elif op == "mov":
                    out.append((_MOV, instr.dest, instr.srcs[0]))
                elif op == "lea":
                    out.append((_LEA, instr.dest, instr.sym,
                                instr.sym.kind is StorageKind.GLOBAL))
                elif op in _LOAD_CODE:
                    out.append((_LOAD_CODE[op], instr.dest, instr.srcs[0],
                                instr.fp))
                elif op == "st":
                    out.append((_ST, instr.srcs[0], instr.srcs[1],
                                instr.coerce, instr.fp))
                elif op in _BIN_FN:
                    out.append((_BIN, instr.dest, _BIN_FN[op],
                                instr.srcs[0], instr.srcs[1],
                                _ALU_LATENCY.get(op, 1)))
                elif op in _UN_FN:
                    out.append((_UN, instr.dest, _UN_FN[op], instr.srcs[0]))
                elif op == "call":
                    out.append((_CALL, instr.dest, instr.callee, instr.srcs))
                elif op == "input":
                    out.append((_INPUT, instr.dest))
                elif op == "inputf":
                    out.append((_INPUTF, instr.dest))
                elif op == "alloc":
                    out.append((_ALLOC, instr.dest, instr.srcs[0]))
                elif op == "print":
                    out.append((_PRINT, instr.srcs))
                elif op == "jmp":
                    target = index[id(instr.targets[0])]
                    out.append((_JMP, target, target != i + 1))
                elif op == "br":
                    then_i = index[id(instr.targets[0])]
                    else_i = index[id(instr.targets[1])]
                    out.append((_BR, instr.srcs[0], then_i, else_i,
                                then_i != i + 1, else_i != i + 1))
                elif op == "chk.s":
                    cont_i = index[id(instr.targets[0])]
                    rec_i = index[id(instr.targets[1])]
                    out.append((_CHK, instr.srcs[0], cont_i, rec_i,
                                cont_i != i + 1, rec_i != i + 1))
                elif op == "ret":
                    out.append((_RET, instr.srcs[0] if instr.srcs else None))
                else:
                    raise MachineError(f"unknown opcode {op!r}")
            self.blocks.append(out)


class _ClassicMachine:
    """One simulation run: memory + scoreboard + counters."""

    def __init__(self, program: MProgram, inputs: Sequence[Value],
                 fuel: int, issue_width: int, mem_ports: int,
                 branch_penalty: int, call_overhead: int,
                 alat: ALAT, cache: DataCache,
                 check_hit_latency: int, check_issue_free: bool,
                 injector=None) -> None:
        self.funcs = {name: _ClassicTFunc(fn)
                      for name, fn in program.functions.items()}
        self.inputs = list(inputs)
        self._input_pos = 0
        self.fuel = fuel
        self.issue_width = issue_width
        self.mem_ports = mem_ports
        self.branch_penalty = branch_penalty
        self.call_overhead = call_overhead
        self.alat = alat
        self.cache = cache
        self.check_hit_latency = check_hit_latency
        self.check_issue_free = check_issue_free
        self.injector = injector

        self.memory: Dict[int, Value] = {}
        self._next_addr = 16  # matches the interpreter: 0 stays null
        self._global_addr: Dict[object, int] = {}
        for sym, cells in program.globals:
            self._global_addr[sym] = self._allocate(cells)
        self.output: List[str] = []
        self.stats = MachineStats()
        self._frame_serial = 0

        # scoreboard
        self.cycle = 0
        self.slots = 0
        self.ports = 0

    # ---- memory ---------------------------------------------------------
    def _allocate(self, cells: int) -> int:
        base = self._next_addr
        span = cells if cells > 0 else 1
        self._next_addr += span + 1  # +1 guard cell, like the interpreter
        memory = self.memory
        for i in range(span):
            memory[base + i] = 0
        return base

    def _next_input(self) -> Value:
        if self._input_pos >= len(self.inputs):
            raise MachineError("input stream exhausted")
        value = self.inputs[self._input_pos]
        self._input_pos += 1
        return value

    # ---- running --------------------------------------------------------
    def run(self) -> Tuple[MachineStats, List[str]]:
        if "main" not in self.funcs:
            raise MachineError("program has no main()")
        self._call(self.funcs["main"], [])
        self.stats.cycles = self.cycle
        return self.stats, self.output

    def _call(self, fn: _ClassicTFunc, args: List[Value]) -> Optional[Value]:
        if len(args) != len(fn.param_regs):
            raise MachineError(f"{fn.name}: arity mismatch")
        self._frame_serial += 1
        frame = self._frame_serial
        regs: List[Value] = [0] * fn.nregs
        ready = [0] * fn.nregs          # cycle each register's value lands
        from_load = [False] * fn.nregs  # producer was a load (for Fig. 10)
        for reg, value in zip(fn.param_regs, args):
            regs[reg] = value
        addr_of: Dict[object, int] = {}
        for sym, cells in fn.frame_allocs:
            addr_of[sym] = self._allocate(cells)

        fs = self.stats.fn(fn.name)
        self.cycle += self.call_overhead
        stats = self.stats
        memory = self.memory
        alat = self.alat
        cache = self.cache
        injector = self.injector
        issue_width = self.issue_width
        mem_ports = self.mem_ports
        blocks = fn.blocks
        block_index = 0
        while True:
            self.fuel -= 1
            if self.fuel <= 0:
                raise MachineFuelExhausted(fn.name, f"#{block_index}",
                                           stats.instructions)
            entered_at = self.cycle
            next_block = -1
            retval: Optional[Value] = None
            returning = False
            for instr in blocks[block_index]:
                code = instr[0]

                # -- scoreboard: stall until operands are ready ----------
                cycle = self.cycle
                if code <= _LDR and code >= _LD:       # loads
                    if code == _LDC:
                        a = regs[instr[2]]
                        hit = a is not NAT and alat.peek(
                            instr[1], int(a), frame)
                        srcs = (instr[1],) if hit \
                            else (instr[2], instr[1])
                    else:
                        srcs = (instr[2],)
                elif code == _ST:
                    srcs = (instr[1], instr[2])
                elif code == _CHK:
                    srcs = (instr[1],)
                elif code == _BIN:
                    srcs = (instr[3], instr[4])
                elif code == _UN:
                    srcs = (instr[3],)
                elif code == _MOV:
                    srcs = (instr[2],)
                elif code == _CALL:
                    srcs = instr[3]
                elif code == _ALLOC:
                    srcs = (instr[2],)
                elif code == _PRINT:
                    srcs = instr[1]
                elif code == _BR:
                    srcs = (instr[1],)
                elif code == _RET:
                    srcs = (instr[1],) if instr[1] is not None else ()
                else:
                    srcs = ()
                binding_from_load = False
                t = cycle
                for src in srcs:
                    r = ready[src]
                    if r > t:
                        t = r
                        binding_from_load = from_load[src]
                if t > cycle:
                    if binding_from_load:
                        stats.data_access_cycles += t - cycle
                    cycle = t
                    self.slots = 0
                    self.ports = 0

                # -- issue: consume a slot (and a port for memory ops) ---
                free_check = self.check_issue_free and code == _LDC
                if not free_check:
                    if self.slots >= issue_width:
                        cycle += 1
                        self.slots = 0
                        self.ports = 0
                    if _LD <= code <= _ST and self.ports >= mem_ports:
                        cycle += 1
                        self.slots = 0
                        self.ports = 0
                    self.slots += 1
                    if _LD <= code <= _ST:
                        self.ports += 1
                self.cycle = cycle
                stats.instructions += 1
                fs.instructions += 1

                # -- execute ---------------------------------------------
                if code == _BIN:
                    dest = instr[1]
                    a = regs[instr[3]]
                    b = regs[instr[4]]
                    if a is NAT or b is NAT:
                        regs[dest] = NAT    # poison propagates
                    else:
                        regs[dest] = instr[2](a, b)
                    ready[dest] = cycle + instr[5]
                    from_load[dest] = False
                elif code == _MOVI:
                    dest = instr[1]
                    regs[dest] = instr[2]
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _MOV:
                    dest = instr[1]
                    regs[dest] = regs[instr[2]]
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _LEA:
                    dest = instr[1]
                    regs[dest] = self._global_addr[instr[2]] if instr[3] \
                        else addr_of[instr[2]]
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _LD:
                    dest = instr[1]
                    a = regs[instr[2]]
                    if a is NAT:
                        raise MachineError(
                            "load address is NaT (unchecked speculative "
                            "value reached a non-speculative load)")
                    addr = int(a)
                    try:
                        regs[dest] = memory[addr]
                    except KeyError:
                        raise MachineError(
                            f"load from unallocated address {addr}"
                        ) from None
                    ready[dest] = cycle + cache.load(addr, instr[3])
                    from_load[dest] = True
                    stats.plain_loads += 1
                    fs.plain_loads += 1
                elif code == _LDA:
                    dest = instr[1]
                    a = regs[instr[2]]
                    if a is NAT:
                        regs[dest] = NAT    # poison propagates, no arm
                        alat.disarm(dest, frame)
                        ready[dest] = cycle + 1
                    else:
                        addr = int(a)
                        value = memory.get(addr)
                        # no injector hook here: a real ld.a faults
                        # immediately (only ld.s defers), so its value may
                        # be consumed before any check — poisoning it would
                        # inject a wrong execution, not a misspeculation
                        if value is None:
                            regs[dest] = NAT    # deferred fault
                            alat.disarm(dest, frame)
                            stats.deferred_faults += 1
                            fs.deferred_faults += 1
                        else:
                            regs[dest] = value
                            alat.arm(dest, addr, frame)
                        ready[dest] = cycle + cache.load(addr, instr[3])
                    from_load[dest] = True
                    stats.advanced_loads += 1
                    fs.advanced_loads += 1
                elif code == _LDS:
                    dest = instr[1]
                    a = regs[instr[2]]
                    if a is NAT:
                        regs[dest] = NAT    # poison propagates
                        ready[dest] = cycle + 1
                    else:
                        addr = int(a)
                        value = memory.get(addr)
                        if value is None or (
                                injector is not None
                                and injector.poison_load("ld.s", addr)):
                            regs[dest] = NAT    # deferred fault
                            stats.deferred_faults += 1
                            fs.deferred_faults += 1
                        else:
                            regs[dest] = value
                        ready[dest] = cycle + cache.load(addr, instr[3])
                    from_load[dest] = True
                    stats.spec_loads += 1
                    fs.spec_loads += 1
                elif code == _LDR:
                    dest = instr[1]
                    a = regs[instr[2]]
                    if a is NAT:
                        raise MachineError(
                            "ld.r address is NaT (recovery block did not "
                            "replay the address chain)")
                    addr = int(a)
                    # replay never faults: an unmapped cell reads as the
                    # architectural zero the seed's ld.s delivered
                    regs[dest] = memory.get(addr, 0)
                    ready[dest] = cycle + cache.load(addr, instr[3])
                    from_load[dest] = True
                    stats.replay_loads += 1
                    fs.replay_loads += 1
                elif code == _LDC:
                    dest = instr[1]
                    a = regs[instr[2]]
                    if a is NAT:
                        raise MachineError(
                            "check-load address is NaT (unchecked "
                            "speculative value)")
                    addr = int(a)
                    stats.check_loads += 1
                    fs.check_loads += 1
                    if alat.check(dest, addr, frame):
                        # hit: the register value stands at ~zero cost
                        ready[dest] = cycle + self.check_hit_latency
                        from_load[dest] = False
                    else:
                        try:
                            regs[dest] = memory[addr]
                        except KeyError:
                            raise MachineError(
                                f"check load from unallocated address "
                                f"{addr}") from None
                        alat.arm(dest, addr, frame)
                        ready[dest] = cycle + cache.load(addr, instr[3])
                        from_load[dest] = True
                        stats.check_misses += 1
                        fs.check_misses += 1
                elif code == _ST:
                    a = regs[instr[1]]
                    value = regs[instr[2]]
                    if a is NAT or value is NAT:
                        raise MachineError(
                            "store consumed NaT (unchecked speculative "
                            "value reached memory)")
                    addr = int(a)
                    if addr not in memory:
                        raise MachineError(
                            f"store to unallocated address {addr}")
                    if instr[3]:
                        value = float(value)
                    memory[addr] = value
                    alat.invalidate(addr)
                    cache.store(addr, instr[4])
                    stats.stores += 1
                    fs.stores += 1
                    if injector is not None:
                        injector.after_store(alat, cache)
                elif code == _JMP:
                    next_block = instr[1]
                    if instr[2]:
                        stats.taken_branches += 1
                        fs.taken_branches += 1
                        self.cycle = cycle + 1 + self.branch_penalty
                        self.slots = 0
                        self.ports = 0
                    else:
                        stats.fallthroughs += 1
                        fs.fallthroughs += 1
                    break
                elif code == _BR:
                    cond = regs[instr[1]]
                    if cond is NAT:
                        raise MachineError(
                            "branch condition is NaT (unchecked "
                            "speculative value reached control flow)")
                    if cond:
                        next_block, taken = instr[2], instr[4]
                    else:
                        next_block, taken = instr[3], instr[5]
                    if taken:
                        stats.taken_branches += 1
                        fs.taken_branches += 1
                        self.cycle = cycle + 1 + self.branch_penalty
                        self.slots = 0
                        self.ports = 0
                    else:
                        stats.fallthroughs += 1
                        fs.fallthroughs += 1
                    break
                elif code == _CHK:
                    stats.spec_checks += 1
                    fs.spec_checks += 1
                    if regs[instr[1]] is NAT:
                        # deferred fault caught: enter the recovery block
                        stats.spec_recoveries += 1
                        fs.spec_recoveries += 1
                        next_block, taken = instr[3], instr[5]
                    else:
                        next_block, taken = instr[2], instr[4]
                    if taken:
                        stats.taken_branches += 1
                        fs.taken_branches += 1
                        self.cycle = cycle + 1 + self.branch_penalty
                        self.slots = 0
                        self.ports = 0
                    else:
                        stats.fallthroughs += 1
                        fs.fallthroughs += 1
                    break
                elif code == _RET:
                    if instr[1] is not None:
                        retval = regs[instr[1]]
                    returning = True
                    break
                elif code == _CALL:
                    callee = self.funcs.get(instr[2])
                    if callee is None:
                        raise MachineError(f"call to unknown function "
                                           f"{instr[2]!r}")
                    result = self._call(callee,
                                        [regs[s] for s in instr[3]])
                    fs = self.stats.fn(fn.name)
                    dest = instr[1]
                    if dest is not None:
                        if result is None:
                            raise MachineError(
                                f"void result of {instr[2]} used")
                        regs[dest] = result
                        ready[dest] = self.cycle
                        from_load[dest] = False
                    entered_at = self.cycle  # callee cycles are its own
                elif code == _UN:
                    dest = instr[1]
                    a = regs[instr[3]]
                    regs[dest] = NAT if a is NAT else instr[2](a)
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _INPUT or code == _INPUTF:
                    dest = instr[1]
                    value = self._next_input()
                    regs[dest] = float(value) if code == _INPUTF \
                        else int(value)
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _ALLOC:
                    dest = instr[1]
                    a = regs[instr[2]]
                    if a is NAT:
                        raise MachineError(
                            "alloc size is NaT (unchecked speculative "
                            "value)")
                    regs[dest] = self._allocate(int(a))
                    ready[dest] = cycle + 1
                    from_load[dest] = False
                elif code == _PRINT:
                    parts = []
                    for src in instr[1]:
                        value = regs[src]
                        if value is NAT:
                            raise MachineError(
                                "print consumed NaT (unchecked "
                                "speculative value reached output)")
                        parts.append(f"{value:.6g}"
                                     if isinstance(value, float)
                                     else str(value))
                    self.output.append(" ".join(parts))
            fs.cycles += self.cycle - entered_at
            if returning:
                self.cycle += self.call_overhead
                return retval
            if next_block < 0:
                raise MachineError(f"{fn.name}: block without terminator")
            block_index = next_block
