"""End-to-end pipeline: source → profiles → speculative SSA → SSAPRE →
machine code → simulation.

This is the reproduction of the paper's toolchain:

1. parse + lower the mini-C source (:mod:`repro.lang`);
2. **train run** — interpret on the train input, collecting the alias
   profile (§3.2.1) and edge profile when the configuration asks for them;
3. split critical edges, run Steensgaard + TBAA alias classes;
4. build the **speculative SSA form** per function, flags from the
   configuration's :class:`~repro.ssa.spec.SpecMode`;
5. run **speculative SSAPRE** (register promotion, expression PRE,
   strength reduction, LFTR, DCE);
6. leave SSA, generate IA-64-flavoured code;
7. **ref run** — simulate on the reference input with the ALAT + cache
   machine, collecting the paper's counters;
8. verify the simulated output against the reference interpreter running
   the *original* program on the same ref input (the correctness oracle).

**Fail-safe compilation** (docs/recovery.md): every optimizing stage
runs inside a guard that re-verifies its output — ``verify_ssa`` after
the SSAPRE passes, a trial lowering before out-of-SSA, machine-level
verification after codegen/scheduling.  On a verifier failure or pass
crash the driver records a :class:`Diagnostic` and retries the function
down the **fallback ladder** — fewer passes, then no speculation, then
the unoptimized original function — instead of raising.  The compiler
degrades; it does not die.  Pass ``failsafe=False`` to get the raising
behaviour back (the test suite uses it to keep compiler bugs loud).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis import AliasClassifier
from ..core import OptStats, SpecConfig, optimize_function
from ..errors import FuelExhausted
from ..ir import Module, split_module_critical_edges, verify_module
from ..lang import compile_source
from ..profiling import (AliasProfile, EdgeProfile, collect_alias_profile,
                         collect_edge_profile, run_module)
from ..ssa import (SpecMode, build_ssa, flagger_for, lower_function,
                   lower_module, verify_ssa)
from ..target import (MachineStats, MProgram, compile_function,
                      compile_module, run_program, schedule_function,
                      verify_program)
from .results import OutputMismatch, RunResult


@dataclass
class Diagnostic:
    """One recorded pipeline incident (a crash, verifier failure or
    degraded resource) that the driver absorbed instead of raising."""

    stage: str                      # e.g. "optimize", "train-run", "codegen"
    function: Optional[str]         # affected function, None = whole module
    error: str                      # what went wrong (one line)
    action: str                     # what the driver did about it

    def __str__(self) -> str:
        where = self.function or "<module>"
        return f"[{self.stage}] {where}: {self.error} -> {self.action}"


#: The per-function fallback ladder: on a pass crash or verifier
#: failure the driver rebuilds SSA *from scratch* and retries with the
#: next (weaker) configuration; the last resort — keeping the original
#: unoptimized function — always succeeds.
_LADDER = (
    ("no-lftr", lambda c: c.but(lftr=False, strength_reduction=False)),
    ("no-epre", lambda c: c.but(lftr=False, strength_reduction=False,
                                expression_pre=False)),
    ("no-spec", lambda c: c.but(mode=SpecMode.OFF,
                                control_speculation=False,
                                lftr=False, strength_reduction=False,
                                expression_pre=False)),
)


@dataclass
class CompileResult:
    """Everything the pipeline produced before simulation."""

    original: Module
    optimized: Module
    program: MProgram
    config: SpecConfig
    opt_stats: Dict[str, OptStats]
    alias_profile: Optional[AliasProfile] = None
    edge_profile: Optional[EdgeProfile] = None
    #: incidents the fail-safe guards absorbed (empty on a clean build)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: functions that did not get the configured optimization level,
    #: mapped to the ladder rung (or "unoptimized") they ended up on
    degraded: Dict[str, str] = field(default_factory=dict)


def _optimize_one(module: Module, fn, classifier, config: SpecConfig,
                  alias_profile, edge_profile, refinement):
    """One rung: rebuild SSA from scratch, optimize, re-verify, and
    trial-lower.  Returns ``(ssa, stats)``; raises on any failure."""
    flagger = flagger_for(config.mode, alias_profile,
                          config.likeliness_threshold)
    ssa = build_ssa(module, fn, classifier, flagger=flagger,
                    refinement=refinement)
    stats = optimize_function(
        ssa, config,
        edge_profile=edge_profile if config.use_edge_profile else None)
    verify_ssa(ssa)
    lower_function(ssa)     # trial lowering: out-of-SSA must not crash
    return ssa, stats


def compile_program(source: str, config: Optional[SpecConfig] = None,
                    train_inputs: Sequence[float] = (),
                    fuel: int = 50_000_000,
                    dumps=None,
                    profile_transform: Optional[Callable] = None,
                    failsafe: bool = True) -> CompileResult:
    """Run pipeline steps 1–6 (no simulation).

    Pass a :class:`repro.pipeline.DumpSink` as ``dumps`` to capture
    per-phase snapshots (lowered IR, speculative SSA before/after the
    optimizations, final machine code).  ``profile_transform`` maps the
    collected alias profile before the flagger sees it — the hook the
    fault-injection campaign uses to feed the compiler adversarial
    profiles (:mod:`repro.hazards`).  With ``failsafe`` (the default)
    pass crashes and verifier failures degrade the affected function
    down the fallback ladder and are recorded in
    :attr:`CompileResult.diagnostics`; with ``failsafe=False`` they
    raise."""
    from .dumps import record_machine, record_module, record_ssa

    config = config or SpecConfig.base()
    diagnostics: List[Diagnostic] = []
    degraded: Dict[str, str] = {}

    # Steps 1-2: parse/lower and train.  Failures here are fatal even in
    # fail-safe mode for the parse (there is nothing to fall back to),
    # but a broken *train run* only costs the profiles: the driver
    # degrades to profile-free configurations and keeps compiling.
    module = compile_source(source)
    verify_module(module)
    record_module(dumps, "lowered", module)
    alias_profile = None
    edge_profile = None
    if config.needs_alias_profile:
        try:
            alias_profile = collect_alias_profile(module, fuel=fuel,
                                                  inputs=train_inputs)
        except FuelExhausted as exc:
            if not failsafe:
                raise
            diagnostics.append(Diagnostic(
                "train-run", exc.function, str(exc),
                "no alias profile; data speculation disabled"))
            config = config.but(mode=SpecMode.OFF)
    if alias_profile is not None and profile_transform is not None:
        alias_profile = profile_transform(alias_profile)
    if config.use_edge_profile:
        try:
            edge_profile = collect_edge_profile(module, fuel=fuel,
                                                inputs=train_inputs)
        except FuelExhausted as exc:
            if not failsafe:
                raise
            diagnostics.append(Diagnostic(
                "train-run", exc.function, str(exc),
                "no edge profile; static speculation heights"))
            config = config.but(use_edge_profile=False)

    # Step 3: analyses.
    split_module_critical_edges(module)
    modref = None
    if config.interprocedural_modref:
        from ..analysis import compute_modref

        modref = compute_modref(module)
    classifier = AliasClassifier(module, use_tbaa=config.use_tbaa,
                                 modref=modref)
    refinements = {}
    if config.flow_refine:
        from ..ssa import FlowSensitivePointsTo

        refinements = {name: FlowSensitivePointsTo(fn)
                       for name, fn in module.functions.items()}

    # Steps 4-5: per-function speculative SSAPRE inside the fail-safe
    # guard.  A function that fails every ladder rung is simply left out
    # of ``ssa_functions`` — ``lower_module`` keeps its original body.
    opt_stats: Dict[str, OptStats] = {}
    ssa_functions = []
    for fn in module.functions.values():
        rungs = [("as-configured", config)]
        if failsafe:
            rungs += [(name, adjust(config)) for name, adjust in _LADDER]
        ssa = None
        for rung, (rung_name, rung_config) in enumerate(rungs):
            try:
                ssa, stats = _optimize_one(module, fn, classifier,
                                           rung_config, alias_profile,
                                           edge_profile,
                                           refinements.get(fn.name))
                break
            except Exception as exc:  # noqa: BLE001 - the guard IS the point
                if not failsafe:
                    raise
                diagnostics.append(Diagnostic(
                    "optimize", fn.name,
                    f"{type(exc).__name__}: {exc} (at {rung_name!r})",
                    f"retry at ladder rung {rungs[rung + 1][0]!r}"
                    if rung + 1 < len(rungs)
                    else "keep unoptimized original"))
                ssa = None
        if ssa is None:
            degraded[fn.name] = "unoptimized"
            continue
        if rung_name != "as-configured":
            degraded[fn.name] = rung_name
        record_ssa(dumps, f"speculative-ssa {fn.name}", ssa)
        opt_stats[fn.name] = stats
        record_ssa(dumps, f"after-ssapre {fn.name}", ssa)
        ssa_functions.append(ssa)

    # Step 6a: leave SSA.  ``lower_module`` falls back to each original
    # function for anything missing from ``ssa_functions``.
    optimized = lower_module(module, ssa_functions)
    try:
        verify_module(optimized)
    except Exception as exc:  # noqa: BLE001
        if not failsafe:
            raise
        diagnostics.append(Diagnostic(
            "lower", None, f"{type(exc).__name__}: {exc}",
            "discard all optimization; compile original module"))
        for name in module.functions:
            degraded[name] = "unoptimized"
        optimized = module
    record_module(dumps, "optimized", optimized)

    # Step 6b: codegen + scheduling, per-function guard.  A function
    # whose optimized body miscompiles is regenerated from the original.
    program = compile_module(optimized)
    if config.schedule:
        for mfn in program.functions.values():
            try:
                schedule_function(mfn)
            except Exception as exc:  # noqa: BLE001
                if not failsafe:
                    raise
                diagnostics.append(Diagnostic(
                    "schedule", mfn.name, f"{type(exc).__name__}: {exc}",
                    "keep unscheduled code"))
                program.functions[mfn.name] = compile_function(
                    optimized.functions[mfn.name])
    try:
        verify_program(program)
    except Exception as exc:  # noqa: BLE001
        if not failsafe:
            raise
        diagnostics.append(Diagnostic(
            "codegen", None, f"{type(exc).__name__}: {exc}",
            "discard all optimization; compile original module"))
        for name in module.functions:
            degraded[name] = "unoptimized"
        program = compile_module(module)
        verify_program(program)      # the original must verify
    record_machine(dumps, "machine", program)
    return CompileResult(module, optimized, program, config, opt_stats,
                         alias_profile, edge_profile, diagnostics, degraded)


def compile_and_run(source: str, config: Optional[SpecConfig] = None,
                    train_inputs: Sequence[float] = (),
                    ref_inputs: Sequence[float] = (),
                    check_output: bool = True,
                    fuel: int = 50_000_000,
                    machine_kwargs: Optional[dict] = None,
                    profile_transform: Optional[Callable] = None,
                    failsafe: bool = True) -> RunResult:
    """Full pipeline: compile (profiling on ``train_inputs``), simulate on
    ``ref_inputs``, and — unless disabled — verify the output against the
    reference interpreter.  An oracle divergence raises
    :class:`~repro.pipeline.OutputMismatch` (an ``AssertionError``
    carrying a readable diff)."""
    compiled = compile_program(source, config, train_inputs, fuel=fuel,
                               profile_transform=profile_transform,
                               failsafe=failsafe)
    stats, output = run_program(compiled.program, inputs=ref_inputs,
                                fuel=4 * fuel,
                                **(machine_kwargs or {}))
    expected: Optional[List[str]] = None
    if check_output:
        expected = run_module(compiled.original, fuel=fuel,
                              inputs=ref_inputs)
        if output != expected:
            raise OutputMismatch(expected, output)
    return RunResult(
        config=compiled.config,
        stats=stats,
        output=output,
        expected=expected,
        opt_stats=compiled.opt_stats,
        program=compiled.program,
        diagnostics=compiled.diagnostics,
        degraded=compiled.degraded,
    )
