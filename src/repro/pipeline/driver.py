"""End-to-end pipeline: source → profiles → speculative SSA → SSAPRE →
machine code → simulation.

This is the reproduction of the paper's toolchain:

1. parse + lower the mini-C source (:mod:`repro.lang`);
2. **train run** — interpret on the train input, collecting the alias
   profile (§3.2.1) and edge profile when the configuration asks for them;
3. split critical edges, run Steensgaard + TBAA alias classes;
4. build the **speculative SSA form** per function, flags from the
   configuration's :class:`~repro.ssa.spec.SpecMode`;
5. run **speculative SSAPRE** (register promotion, expression PRE,
   strength reduction, LFTR, DCE);
6. leave SSA, generate IA-64-flavoured code;
7. **ref run** — simulate on the reference input with the ALAT + cache
   machine, collecting the paper's counters;
8. verify the simulated output against the reference interpreter running
   the *original* program on the same ref input (the correctness oracle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis import AliasClassifier
from ..core import OptStats, SpecConfig, optimize_function
from ..ir import Module, split_module_critical_edges, verify_module
from ..lang import compile_source
from ..profiling import (AliasProfile, EdgeProfile, collect_alias_profile,
                         collect_edge_profile, run_module)
from ..ssa import build_ssa, flagger_for, lower_module
from ..target import MachineStats, MProgram, compile_module, run_program
from .results import RunResult


@dataclass
class CompileResult:
    """Everything the pipeline produced before simulation."""

    original: Module
    optimized: Module
    program: MProgram
    config: SpecConfig
    opt_stats: Dict[str, OptStats]
    alias_profile: Optional[AliasProfile] = None
    edge_profile: Optional[EdgeProfile] = None


def compile_program(source: str, config: Optional[SpecConfig] = None,
                    train_inputs: Sequence[float] = (),
                    fuel: int = 50_000_000,
                    dumps=None) -> CompileResult:
    """Run pipeline steps 1–6 (no simulation).

    Pass a :class:`repro.pipeline.DumpSink` as ``dumps`` to capture
    per-phase snapshots (lowered IR, speculative SSA before/after the
    optimizations, final machine code)."""
    from .dumps import record_machine, record_module, record_ssa

    config = config or SpecConfig.base()
    module = compile_source(source)
    verify_module(module)
    record_module(dumps, "lowered", module)
    alias_profile = None
    edge_profile = None
    if config.needs_alias_profile:
        alias_profile = collect_alias_profile(module, fuel=fuel,
                                              inputs=train_inputs)
    if config.use_edge_profile:
        edge_profile = collect_edge_profile(module, fuel=fuel,
                                            inputs=train_inputs)
    split_module_critical_edges(module)
    modref = None
    if config.interprocedural_modref:
        from ..analysis import compute_modref

        modref = compute_modref(module)
    classifier = AliasClassifier(module, use_tbaa=config.use_tbaa,
                                 modref=modref)
    flagger = flagger_for(config.mode, alias_profile,
                          config.likeliness_threshold)
    refinements = {}
    if config.flow_refine:
        from ..ssa import FlowSensitivePointsTo

        refinements = {name: FlowSensitivePointsTo(fn)
                       for name, fn in module.functions.items()}
    opt_stats: Dict[str, OptStats] = {}
    ssa_functions = []
    for fn in module.functions.values():
        ssa = build_ssa(module, fn, classifier, flagger=flagger,
                        refinement=refinements.get(fn.name))
        record_ssa(dumps, f"speculative-ssa {fn.name}", ssa)
        opt_stats[fn.name] = optimize_function(ssa, config,
                                               edge_profile=edge_profile)
        record_ssa(dumps, f"after-ssapre {fn.name}", ssa)
        ssa_functions.append(ssa)
    optimized = lower_module(module, ssa_functions)
    verify_module(optimized)
    record_module(dumps, "optimized", optimized)
    program = compile_module(optimized)
    if config.schedule:
        from ..target.scheduler import schedule_program

        schedule_program(program)
    from ..target import verify_program

    verify_program(program)
    record_machine(dumps, "machine", program)
    return CompileResult(module, optimized, program, config, opt_stats,
                         alias_profile, edge_profile)


def compile_and_run(source: str, config: Optional[SpecConfig] = None,
                    train_inputs: Sequence[float] = (),
                    ref_inputs: Sequence[float] = (),
                    check_output: bool = True,
                    fuel: int = 50_000_000,
                    machine_kwargs: Optional[dict] = None) -> RunResult:
    """Full pipeline: compile (profiling on ``train_inputs``), simulate on
    ``ref_inputs``, and — unless disabled — verify the output against the
    reference interpreter."""
    compiled = compile_program(source, config, train_inputs, fuel=fuel)
    stats, output = run_program(compiled.program, inputs=ref_inputs,
                                fuel=4 * fuel,
                                **(machine_kwargs or {}))
    expected: Optional[List[str]] = None
    if check_output:
        expected = run_module(compiled.original, fuel=fuel,
                              inputs=ref_inputs)
        if output != expected:
            raise AssertionError(
                "optimized program output diverged from the reference "
                f"interpreter:\n  expected: {expected[:5]}...\n"
                f"  got:      {output[:5]}..."
            )
    return RunResult(
        config=compiled.config,
        stats=stats,
        output=output,
        expected=expected,
        opt_stats=compiled.opt_stats,
        program=compiled.program,
    )
