"""End-to-end pipeline façade: source → profiles → speculative SSA →
SSAPRE → machine code → simulation.

The pipeline itself lives in the pass manager
(:mod:`repro.pipeline.passes`, docs/pipeline.md): typed passes
assembled declaratively from the :class:`~repro.core.SpecConfig`,
cached analyses, the fail-safe fallback ladder (docs/recovery.md) as
pipeline truncations, optional parallel per-function compilation
(``jobs``), and per-pass timing (``--time-passes``).  This module keeps
the two entry points the rest of the repository — tests, benchmarks,
CLI, fuzzers — calls:

* :func:`compile_program` — compile, no simulation;
* :func:`compile_and_run` — compile, simulate on the ref input, verify
  against the reference interpreter (the correctness oracle).

Several module globals here are deliberate **test seams**, resolved
late by the pass manager so reassigning or monkeypatching them takes
effect: ``collect_alias_profile`` / ``collect_edge_profile`` (profile
injection), ``verify_ssa`` (verifier-failure injection) and
``run_program`` (simulator stubbing).  To inject a failure into an
individual pass, replace its entry in
:data:`repro.pipeline.passes.PASS_REGISTRY` instead.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from ..core import SpecConfig, optimize_function  # noqa: F401 — re-export
from ..profiling import (collect_alias_profile,  # noqa: F401 — seams
                         collect_edge_profile, run_module)
from ..ssa import verify_ssa  # noqa: F401 — seam (see module docstring)
from ..target import run_program
from .cache import CompileCache, default_cache
from .passes.analysis import AnalysisManager
from .passes.manager import PassManager
from .results import CompileResult, Diagnostic  # noqa: F401 — re-export
from .results import OutputMismatch, RunResult

#: ``cache=None`` means "driver default": no cache in
#: :func:`compile_program`, the process-wide cache in
#: :func:`compile_and_run`.  ``False`` disables, an instance selects.
CacheArg = Union[CompileCache, bool, None]


def _resolve_cache(cache: CacheArg,
                   default: Optional[CompileCache]) -> Optional[CompileCache]:
    if cache is None:
        return default
    if cache is False:
        return None
    if cache is True:
        return default_cache()
    return cache


def compile_program(source: str, config: Optional[SpecConfig] = None,
                    train_inputs: Sequence[float] = (),
                    fuel: int = 50_000_000,
                    dumps=None,
                    profile_transform: Optional[Callable] = None,
                    failsafe: bool = True,
                    jobs: int = 1,
                    analyses: Optional[AnalysisManager] = None,
                    cache: CacheArg = None) -> CompileResult:
    """Compile ``source`` (no simulation).

    Pass a :class:`repro.pipeline.DumpSink` as ``dumps`` to capture
    per-phase snapshots (lowered IR, speculative SSA before/after the
    optimizations, final machine code).  ``profile_transform`` maps the
    collected alias profile before the flagger sees it — the hook the
    fault-injection campaign uses to feed the compiler adversarial
    profiles (:mod:`repro.hazards`).  With ``failsafe`` (the default)
    pass crashes and verifier failures degrade the affected function
    down the fallback ladder and are recorded in
    :attr:`CompileResult.diagnostics`; with ``failsafe=False`` they
    raise.  ``jobs > 1`` compiles independent functions on a thread
    pool (results are bit-identical to ``jobs=1``).  Pass a shared
    :class:`~repro.pipeline.passes.AnalysisManager` as ``analyses`` to
    reuse cached analyses across compiles; by default each call gets a
    fresh cache (ladder retries within the compile still hit it).

    Pass a :class:`~repro.pipeline.CompileCache` (or ``True`` for the
    process-wide one) as ``cache`` to memoize the whole compile under
    its content key; calls carrying per-call observers (``dumps``,
    ``profile_transform``, a shared ``analyses``) bypass the cache —
    their side effects are the point of the call."""
    config = config or SpecConfig.base()
    if not config.needs_train_run:
        # the no-train-run path: profile-free configs (base, heuristic,
        # static) never run the trainer, and normalizing the inputs here
        # keeps cache keys from fragmenting on irrelevant train data
        train_inputs = ()
    memo = _resolve_cache(cache, default=None)
    key = None
    if memo is not None:
        if (dumps is not None or profile_transform is not None
                or analyses is not None):
            memo.bypasses += 1
            memo = None
        else:
            key = CompileCache.key(source, config, train_inputs, fuel,
                                   failsafe)
            cached = memo.get(key)
            if cached is not None:
                return cached
    manager = PassManager(config, failsafe=failsafe, jobs=jobs,
                          dumps=dumps, fuel=fuel,
                          profile_transform=profile_transform,
                          analyses=analyses)
    result = manager.compile(source, train_inputs)
    if memo is not None:
        memo.put(key, result)
    return result


def compile_and_run(source: str, config: Optional[SpecConfig] = None,
                    train_inputs: Sequence[float] = (),
                    ref_inputs: Sequence[float] = (),
                    check_output: bool = True,
                    fuel: int = 50_000_000,
                    machine_kwargs: Optional[dict] = None,
                    profile_transform: Optional[Callable] = None,
                    failsafe: bool = True,
                    jobs: int = 1,
                    cache: CacheArg = None) -> RunResult:
    """Full pipeline: compile (profiling on ``train_inputs``), simulate on
    ``ref_inputs``, and — unless disabled — verify the output against the
    reference interpreter.  An oracle divergence raises
    :class:`~repro.pipeline.OutputMismatch` (an ``AssertionError``
    carrying a readable diff).

    Compiles are memoized in the process-wide
    :class:`~repro.pipeline.CompileCache` by default — repeat runs of
    an identical (source, config, train inputs) triple reuse the
    compiled program and only re-simulate.  Pass ``cache=False`` to
    force a fresh compile, or a specific :class:`CompileCache` to use
    it instead."""
    compiled = compile_program(source, config, train_inputs, fuel=fuel,
                               profile_transform=profile_transform,
                               failsafe=failsafe, jobs=jobs,
                               cache=_resolve_cache(cache, default_cache()))
    stats, output = run_program(compiled.program, inputs=ref_inputs,
                                fuel=4 * fuel,
                                **(machine_kwargs or {}))
    expected: Optional[List[str]] = None
    if check_output:
        expected = run_module(compiled.original, fuel=fuel,
                              inputs=ref_inputs)
        if output != expected:
            raise OutputMismatch(expected, output)
    return RunResult(
        config=compiled.config,
        stats=stats,
        output=output,
        expected=expected,
        opt_stats=compiled.opt_stats,
        program=compiled.program,
        diagnostics=compiled.diagnostics,
        degraded=compiled.degraded,
        pass_trace=compiled.pass_trace,
    )
