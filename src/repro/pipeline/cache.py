"""Content-addressed compile cache.

Most of the repository compiles the *same* eight workload sources with
the *same* handful of :class:`~repro.core.SpecConfig` presets over and
over — the workload runner, the fault-injection campaign, the figure
generators and the benchmark harness all call
:func:`~repro.pipeline.compile_and_run` on identical inputs.  The
:class:`CompileCache` memoizes the finished
:class:`~repro.pipeline.CompileResult` under a content key, so a repeat
compile is a dictionary lookup.

The key covers everything that can change the produced program:

* the **source text** (hashed);
* the resolved **SpecConfig** (its ``repr`` — a frozen dataclass, so
  the repr names every field);
* the **train inputs** and interpreter **fuel** (both feed the
  profiles) and the ``failsafe`` flag (changes the ladder);
* the **environment fingerprint**: the identities of the driver's
  monkeypatchable seams (``collect_alias_profile``,
  ``collect_edge_profile``, ``verify_ssa``) and of every
  ``PASS_REGISTRY`` entry.  Tests swap these to inject failures; a
  swap — or a restore — must change the key, never alias a stale
  result.

``jobs`` is deliberately **not** part of the key: parallel compilation
is bit-identical to sequential (asserted by the test suite), so both
may share one entry.  Calls carrying per-call observers or state
(``dumps``, ``profile_transform``, a shared ``analyses`` manager)
bypass the cache entirely — their side effects are the point of the
call — and are tallied in :attr:`CompileCache.bypasses`.

A cached hit returns the **same** :class:`CompileResult` object to
every caller.  That is safe because nothing downstream mutates it: the
simulator translates the machine program into its own pre-decoded form
per run (see :mod:`repro.target.machine`) and never writes back.  The
test suite pins this with a before/after structural snapshot.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core import SpecConfig
    from .results import CompileResult


def compiler_fingerprint() -> str:
    """The **portable** identity of the compiler itself: the package
    version plus the sorted pass-registry names.  Part of every
    :func:`content_key` — and therefore of the service ``request_key``
    and the persisted :class:`~repro.service.persist.CacheStore`
    entries — so a disk cache written by one compiler build is
    invalidated by the next build instead of serving stale compiles.
    Deliberately made of stable strings, never ``id()``s: two processes
    running the same build must agree."""
    from .. import __version__
    from .passes.base import PASS_REGISTRY

    return repr((__version__, tuple(sorted(PASS_REGISTRY))))


def content_key(source: str, config: "SpecConfig",
                train_inputs: Sequence[float], fuel: int,
                failsafe: bool) -> str:
    """The **process-portable** part of the content key: everything the
    *request* pins (source, config, train inputs, fuel, failsafe) plus
    the :func:`compiler_fingerprint`, and nothing the *process* pins
    (no seam or registry identities).

    Two processes given the same request compute the same
    ``content_key`` — this is the key the compile service
    (:mod:`repro.service`) shards on and deduplicates by, so that
    identical requests land on the same worker and coalesce.
    :meth:`CompileCache.key` extends it with the per-process
    environment fingerprint; never mix the two."""
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(b"\x00")
    h.update(repr(config).encode())
    h.update(repr((tuple(train_inputs), fuel, bool(failsafe))).encode())
    h.update(b"\x00")
    h.update(compiler_fingerprint().encode())
    return h.hexdigest()


def shard_of(key: str, shards: int) -> int:
    """Map a hex content key onto one of ``shards`` buckets.

    Pure and process-independent: every router given the same key and
    shard count picks the same bucket, which is what lets a pool of
    workers each own a disjoint slice of the key space (and therefore
    of the cache) with no coordination."""
    if shards <= 0:
        raise ValueError("shards must be positive")
    return int(key[:16], 16) % shards


class CompileCache:
    """Bounded (LRU) content-addressed memo of compiled programs."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CompileResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0

    # ---- keying ----------------------------------------------------------
    @staticmethod
    def key(source: str, config: "SpecConfig",
            train_inputs: Sequence[float], fuel: int,
            failsafe: bool) -> str:
        """The content key for one compile request (see the module
        docstring for what it covers)."""
        from . import driver
        from .passes.base import PASS_REGISTRY

        h = hashlib.sha256()
        h.update(content_key(source, config, train_inputs, fuel,
                             failsafe).encode())
        seams = (driver.collect_alias_profile, driver.collect_edge_profile,
                 driver.verify_ssa)
        h.update(repr(tuple(id(seam) for seam in seams)).encode())
        h.update(repr(sorted((name, id(entry))
                             for name, entry in PASS_REGISTRY.items()))
                 .encode())
        return h.hexdigest()

    # ---- lookup ----------------------------------------------------------
    def get(self, key: str) -> Optional["CompileResult"]:
        """The cached result under ``key``, or None (counted as a miss —
        the caller is expected to compile and :meth:`put`)."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(self, key: str, result: "CompileResult") -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ---- counters --------------------------------------------------------
    def stats(self) -> dict:
        """JSON-friendly counter snapshot (reported next to the
        :class:`~repro.pipeline.passes.analysis.AnalysisManager` stats
        in ``--time-passes`` / ``--trace-json``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CompileCache {len(self._entries)}/{self.capacity} "
                f"hits {self.hits} misses {self.misses}>")


#: The process-wide cache :func:`~repro.pipeline.compile_and_run` uses
#: by default.
_DEFAULT_CACHE = CompileCache()


def default_cache() -> CompileCache:
    """The process-wide compile cache."""
    return _DEFAULT_CACHE
