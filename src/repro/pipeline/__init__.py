"""End-to-end pipeline (source → speculative SSAPRE → simulated IA-64)."""

from ..core import SpecConfig
from .driver import CompileResult, compile_and_run, compile_program
from .dumps import DumpSink
from .results import Comparison, RunResult, format_table

__all__ = [
    "Comparison", "CompileResult", "DumpSink", "RunResult", "SpecConfig",
    "compile_and_run", "compile_program", "format_table",
]
