"""End-to-end pipeline (source → speculative SSAPRE → simulated IA-64)."""

from ..core import SpecConfig
from .cache import (CompileCache, compiler_fingerprint, content_key,
                    default_cache, shard_of)
from .driver import compile_and_run, compile_program
from .dumps import DumpSink
from .passes import (PASS_REGISTRY, AnalysisManager, PassManager,
                     PassTiming, PassTrace)
from .results import (CompileResult, Comparison, Diagnostic,
                      OutputMismatch, RunResult, format_table)

__all__ = [
    "AnalysisManager", "Comparison", "CompileCache", "CompileResult",
    "Diagnostic", "DumpSink", "OutputMismatch", "PASS_REGISTRY",
    "PassManager", "PassTiming", "PassTrace", "RunResult", "SpecConfig",
    "compile_and_run", "compile_program", "compiler_fingerprint",
    "content_key", "default_cache",
    "format_table", "shard_of",
]
