"""End-to-end pipeline (source → speculative SSAPRE → simulated IA-64)."""

from ..core import SpecConfig
from .driver import (CompileResult, Diagnostic, compile_and_run,
                     compile_program)
from .dumps import DumpSink
from .results import Comparison, OutputMismatch, RunResult, format_table

__all__ = [
    "Comparison", "CompileResult", "Diagnostic", "DumpSink",
    "OutputMismatch", "RunResult", "SpecConfig", "compile_and_run",
    "compile_program", "format_table",
]
