"""Per-phase compilation dumps (the `-print-after-all` of this compiler).

`DumpSink` collects named textual snapshots of the program as it moves
through the pipeline; `compile_program(..., dumps=sink)` fills it.  The
CLI's ``--dump-ir`` and the examples use it, and it is invaluable when a
differential test shreds a fuzz seed.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple


class DumpSink:
    """Ordered collection of (phase name, text) snapshots."""

    def __init__(self) -> None:
        self._dumps: List[Tuple[str, str]] = []

    def add(self, phase: str, text: str) -> None:
        self._dumps.append((phase, text))

    def extend(self, pairs: List[Tuple[str, str]]) -> None:
        """Append pre-formatted snapshots in order — the pass manager's
        parallel workers buffer their dumps and merge them here in
        module function order."""
        self._dumps.extend(pairs)

    def phases(self) -> List[str]:
        return [name for name, _ in self._dumps]

    def get(self, phase: str) -> str:
        for name, text in self._dumps:
            if name == phase:
                return text
        raise KeyError(phase)

    def format(self) -> str:
        parts = []
        for name, text in self._dumps:
            parts.append(f"==== {name} " + "=" * max(4, 60 - len(name)))
            parts.append(text)
        return "\n".join(parts)

    def write_dir(self, directory: str) -> None:
        """Write each snapshot to ``<directory>/<NN>_<phase>.txt``."""
        os.makedirs(directory, exist_ok=True)
        for index, (name, text) in enumerate(self._dumps):
            safe = name.replace(" ", "_").replace("/", "-")
            path = os.path.join(directory, f"{index:02d}_{safe}.txt")
            with open(path, "w") as f:
                f.write(text + "\n")


def record_module(sink: Optional[DumpSink], phase: str, module) -> None:
    if sink is None:
        return
    from ..ir import format_module

    sink.add(phase, format_module(module))


def record_ssa(sink: Optional[DumpSink], phase: str, ssa) -> None:
    if sink is None:
        return
    from ..ssa import format_ssa

    sink.add(phase, format_ssa(ssa))


def record_machine(sink: Optional[DumpSink], phase: str, program) -> None:
    if sink is None:
        return
    sink.add(phase, program.format())
