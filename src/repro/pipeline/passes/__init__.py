"""The pass-manager architecture (docs/pipeline.md).

Typed passes (:mod:`~repro.pipeline.passes.base`), the registry the
pipeline instantiates them from, the analysis cache
(:mod:`~repro.pipeline.passes.analysis`), per-pass instrumentation
(:mod:`~repro.pipeline.passes.timing`), the built-in passes
(:mod:`~repro.pipeline.passes.adapters`) and the manager that drives
them (:mod:`~repro.pipeline.passes.manager`).
"""

from .analysis import AnalysisManager
from .base import (PASS_REGISTRY, FunctionPass, MachinePass, ModulePass,
                   Pass, create_pass, register_pass, registered_passes)
from .timing import PassTiming, PassTrace
from . import adapters  # noqa: F401 — registers the built-in passes
from .manager import (LADDER, FunctionOutcome, FunctionState, MachineState,
                      ModuleState, PassManager, PipelinePlan, Rung,
                      function_pass_names, ladder_plans, rung_config)

__all__ = [
    "AnalysisManager", "FunctionOutcome", "FunctionPass", "FunctionState",
    "LADDER", "MachinePass", "MachineState", "ModulePass", "ModuleState",
    "PASS_REGISTRY", "Pass", "PassManager", "PassTiming", "PassTrace",
    "PipelinePlan", "Rung", "create_pass", "function_pass_names",
    "ladder_plans", "register_pass", "registered_passes", "rung_config",
]
