"""The registered pipeline passes.

Function passes operate on a :class:`~repro.pipeline.passes.manager.
FunctionState` (one function's compilation), module passes on the
:class:`~repro.pipeline.passes.manager.ModuleState`, machine passes on
the :class:`~repro.pipeline.passes.manager.MachineState`.

The SSAPRE passes are thin adapters over the typed phase registry of
:mod:`repro.core.phases` — one registered ``FunctionPass`` per core
phase, all sharing the function's single :class:`PREContext` — so the
pass-manager pipeline runs *exactly* the sequence the old
``optimize_function`` monolith ran, now individually timed and
individually droppable by the fallback ladder.

``verify-ssa`` resolves :func:`repro.ssa.verify_ssa` **through the
driver module at call time**: ``repro.pipeline.driver.verify_ssa`` has
always been the test suite's seam for injecting verifier failures, and
late binding keeps that seam working under the pass manager.
"""

from __future__ import annotations

from ...analysis import DominatorTree
from ...core import PHASES
from ...ir import split_module_critical_edges, verify_module
from ...ssa import (FlowSensitivePointsTo, SpecMode, build_ssa, flagger_for,
                    lower_function, lower_module)
from ...target import (compile_module, schedule_function, verify_program)
from .base import (FunctionPass, MachinePass, ModulePass, register_pass)


def _driver():
    """The driver module, resolved late — its module globals
    (``verify_ssa`` et al.) are monkeypatch seams the test suite and
    benchmark ablations rely on."""
    from .. import driver

    return driver


# ---------------------------------------------------------------------------
# Module passes
# ---------------------------------------------------------------------------


@register_pass
class SplitCriticalEdgesPass(ModulePass):
    """Split critical edges module-wide (required before speculative
    code motion can place Φ-operand computations on edges)."""

    name = "split-critical-edges"
    invalidates = ("*",)        # mutates the CFGs every analysis reads

    def run(self, state) -> None:
        split_module_critical_edges(state.module)


@register_pass
class LowerModulePass(ModulePass):
    """Out-of-SSA: replace every successfully optimized function with
    its lowered body (functions missing from ``ssa_functions`` keep
    their original body — the fallback ladder's bottom rung)."""

    name = "lower-module"

    def run(self, state) -> None:
        state.optimized = lower_module(state.module, state.ssa_functions)


@register_pass
class VerifyModulePass(ModulePass):
    """Re-verify the current module (the fail-safe guard after
    lowering)."""

    name = "verify-module"

    def run(self, state) -> None:
        verify_module(state.current_module)


# ---------------------------------------------------------------------------
# Function passes
# ---------------------------------------------------------------------------


@register_pass
class BuildSSAPass(FunctionPass):
    """Build the (speculative) HSSA form of the function.

    Per-function analyses — alias info, dominance, flow-sensitive
    points-to — come from the :class:`AnalysisManager`, so a
    fallback-ladder retry rebuilds SSA *without* recomputing them."""

    name = "build-ssa"

    def run(self, state) -> None:
        config = state.config
        fn = state.fn
        analyses = state.analyses
        classifier = state.classifier
        info = analyses.get(
            "alias-info", (id(classifier), fn.name),
            lambda: classifier.analyze_function(fn))
        dom = analyses.get(
            "dominance", (id(state.module), fn.name),
            lambda: DominatorTree(fn))
        refinement = None
        if config.flow_refine:
            refinement = analyses.get(
                "flow-points-to", (id(state.module), fn.name),
                lambda: FlowSensitivePointsTo(fn))
        prob_info_for = None
        if config.mode is SpecMode.STATIC:
            module_id = id(state.module)
            prob_info_for = lambda f: analyses.get_registered(
                "prob-alias", (module_id, f.name), f,
                dom if f is fn else None)
        flagger = flagger_for(config.mode, state.alias_profile,
                              config.likeliness_threshold,
                              static_threshold=config.static_threshold,
                              prob_info_for=prob_info_for)
        state.ssa = build_ssa(state.module, fn, classifier,
                              flagger=flagger, refinement=refinement,
                              info=info, dom=dom)


def _make_phase_pass(phase):
    """One registered ``FunctionPass`` per :class:`repro.core.Phase`."""

    @register_pass
    class PhasePass(FunctionPass):
        name = phase.name
        _phase = phase

        def run(self, state) -> None:
            self._phase.run(state.ensure_ctx(), state.config, state.stats)

    PhasePass.__name__ = PhasePass.__qualname__ = (
        "".join(part.capitalize() for part in phase.name.split("-"))
        + "Pass")
    PhasePass.__doc__ = (f"SSAPRE phase {phase.name!r} "
                         f"(see repro.core.phases).")
    return PhasePass


#: the SSAPRE phase adapters, in execution order
PHASE_PASSES = tuple(_make_phase_pass(phase) for phase in PHASES)


@register_pass
class VerifySSAPass(FunctionPass):
    """Re-verify the optimized SSA (the fail-safe guard after the
    SSAPRE phases)."""

    name = "verify-ssa"

    def run(self, state) -> None:
        _driver().verify_ssa(state.ssa)


@register_pass
class TrialLowerPass(FunctionPass):
    """Trial out-of-SSA lowering: the conversion must not crash before
    the function is accepted (its result is discarded; the real
    lowering is the ``lower-module`` pass)."""

    name = "lower-ssa"

    def run(self, state) -> None:
        lower_function(state.ssa)


# ---------------------------------------------------------------------------
# Machine passes
# ---------------------------------------------------------------------------


@register_pass
class CodegenPass(MachinePass):
    """Generate IA-64-flavoured machine code from the optimized
    module."""

    name = "codegen"

    def run(self, state) -> None:
        state.program = compile_module(state.optimized)


@register_pass
class SchedulePass(MachinePass):
    """Latency-aware list scheduling of one machine function
    (``state.mfn``)."""

    name = "schedule"

    def run(self, state) -> None:
        schedule_function(state.mfn)


def _tail_budget(state) -> int:
    from ...target.superblock import TAIL_DUP_BUDGET

    config = getattr(state, "config", None)
    return getattr(config, "superblock_tail_budget", TAIL_DUP_BUDGET) \
        if config is not None else TAIL_DUP_BUDGET


@register_pass
class SuperblockFormPass(MachinePass):
    """Grow profile-guided superblocks (mutual-most-likely traces with
    bounded tail duplication) over one machine function; the partition
    lands on ``state.traces`` for the schedule/layout passes
    (docs/scheduling.md)."""

    name = "superblock-form"

    def run(self, state) -> None:
        from ...target.superblock import form_superblocks

        state.traces = form_superblocks(state.mfn, state.edge_profile,
                                        tail_budget=_tail_budget(state))


@register_pass
class SuperblockSchedulePass(MachinePass):
    """Profile-weighted trace scheduling of one machine function's
    superblocks: priority = static height × block weight, speculative
    loads may hoist above side exits (docs/scheduling.md)."""

    name = "superblock-schedule"

    def run(self, state) -> None:
        from ...target.superblock import schedule_superblocks

        schedule_superblocks(state.mfn, state.traces)


@register_pass
class SuperblockLayoutPass(MachinePass):
    """Hot-path code layout: order one machine function's traces so hot
    successors fall through (only *taken* transfers pay the machine's
    ``branch_penalty``)."""

    name = "superblock-layout"

    def run(self, state) -> None:
        from ...target.superblock import layout_function

        layout_function(state.mfn, state.traces, state.edge_profile)


@register_pass
class VerifyMachinePass(MachinePass):
    """Machine-level verification of the whole program (the fail-safe
    guard after codegen/scheduling)."""

    name = "verify-machine"

    def run(self, state) -> None:
        verify_program(state.program)
