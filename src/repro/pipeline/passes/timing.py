"""Per-pass observability: wall time, invocation counts, IR deltas.

Every pass the manager runs produces one :class:`PassTiming` record —
which pass, over which function (``None`` for module/machine scope), on
which fallback-ladder rung, how long it took, and the IR-size triple
``(stmts, loads, stores)`` before and after.  The records accumulate in
a :class:`PassTrace`:

* :meth:`PassTrace.format_table` renders the ``--time-passes`` report
  (aggregated per pass, LLVM-style);
* :meth:`PassTrace.to_json` is the machine-readable trace carried on
  :class:`~repro.pipeline.RunResult` and uploaded as a CI artifact by
  the ``bench_smoke`` tier, so pass wall-time regressions are visible
  PR-over-PR.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: an IR-size measurement: (statements/instructions, loads, stores)
Counts = Tuple[int, int, int]


@dataclass
class PassTiming:
    """One pass invocation."""

    pass_name: str
    kind: str                       # "module" | "function" | "machine"
    function: Optional[str]         # None for module/machine scope
    rung: str                       # fallback-ladder rung ("as-configured"…)
    wall_s: float
    before: Counts
    after: Counts
    #: the invocation raised (the fail-safe guard absorbed it)
    failed: bool = False

    @property
    def delta(self) -> Counts:
        return tuple(a - b for a, b in zip(self.after, self.before))

    def to_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "kind": self.kind,
            "function": self.function,
            "rung": self.rung,
            "wall_s": self.wall_s,
            "stmts_before": self.before[0], "stmts_after": self.after[0],
            "loads_before": self.before[1], "loads_after": self.after[1],
            "stores_before": self.before[2], "stores_after": self.after[2],
            "failed": self.failed,
        }


@dataclass
class PassTrace:
    """Ordered collection of pass invocations for one compilation."""

    records: List[PassTiming] = field(default_factory=list)

    def add(self, record: PassTiming) -> None:
        self.records.append(record)

    def extend(self, records: List[PassTiming]) -> None:
        self.records.extend(records)

    # ---- queries ---------------------------------------------------------
    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    def pass_names(self) -> List[str]:
        """Distinct pass names, in first-run order."""
        seen: List[str] = []
        for r in self.records:
            if r.pass_name not in seen:
                seen.append(r.pass_name)
        return seen

    def invocations(self, pass_name: str) -> int:
        return sum(1 for r in self.records if r.pass_name == pass_name)

    def wall_s(self, pass_name: str) -> float:
        return sum(r.wall_s for r in self.records
                   if r.pass_name == pass_name)

    # ---- reports ---------------------------------------------------------
    def format_table(self) -> str:
        """The ``--time-passes`` report: one aggregated row per pass, in
        first-run order, plus a total."""
        total = self.total_wall_s or 1e-12
        header = (f"{'wall(s)':>9}  {'%':>5}  {'runs':>4}  "
                  f"{'Δstmts':>7}  {'Δloads':>7}  {'Δstores':>8}  pass")
        lines = [f"=== pass execution timing report "
                 f"(total {self.total_wall_s:.4f}s, "
                 f"{len(self.records)} invocations) ===", header]
        for name in self.pass_names():
            rows = [r for r in self.records if r.pass_name == name]
            wall = sum(r.wall_s for r in rows)
            deltas = [sum(r.delta[i] for r in rows if not r.failed)
                      for i in range(3)]
            lines.append(
                f"{wall:>9.4f}  {100.0 * wall / total:>5.1f}  "
                f"{len(rows):>4d}  {deltas[0]:>+7d}  {deltas[1]:>+7d}  "
                f"{deltas[2]:>+8d}  {name}")
        return "\n".join(lines)

    def to_json(self, analysis_stats: Optional[Dict[str, object]] = None,
                cache_stats: Optional[Dict[str, object]] = None,
                engine_stats: Optional[Dict[str, object]] = None
                ) -> Dict[str, object]:
        """Machine-readable trace (optionally with the analysis-cache,
        compile-cache and simulator-engine counters merged in)."""
        doc: Dict[str, object] = {
            "total_wall_s": self.total_wall_s,
            "invocations": len(self.records),
            "passes": [r.to_dict() for r in self.records],
        }
        if analysis_stats is not None:
            doc["analyses"] = analysis_stats
        if cache_stats is not None:
            doc["compile_cache"] = cache_stats
        if engine_stats is not None:
            doc["engine"] = engine_stats
        return doc

    def dump_json(self, path: str,
                  analysis_stats: Optional[Dict[str, object]] = None,
                  cache_stats: Optional[Dict[str, object]] = None,
                  engine_stats: Optional[Dict[str, object]] = None
                  ) -> None:
        with open(path, "w") as f:
            json.dump(self.to_json(analysis_stats, cache_stats,
                                   engine_stats), f,
                      indent=2)
            f.write("\n")
