"""Cached, invalidatable analyses for the pass manager.

The old driver recomputed per-function analyses (alias info, dominance,
flow-sensitive points-to) from scratch on **every fallback-ladder
rung**: a function that crashed at full strength re-ran
``analyze_function`` three more times on the way down.  The
:class:`AnalysisManager` memoizes each analysis under a
``(name, scope)`` key — scope is a function name, or ``None`` for
module-level analyses (alias classifier, mod/ref, profiles) — so a
retry, or a repeat compile through a shared manager, is a cache hit.

Hit/miss counters are kept per analysis name; the test suite asserts
ladder retries actually reuse cached results through them.  The manager
is thread-safe: the parallel per-function compilation stage shares one
instance across worker threads.

Invalidation follows the pass protocol: a pass declares the analyses it
invalidates (:attr:`repro.pipeline.passes.base.Pass.invalidates`) and
the manager drops those entries after the pass runs.  Function passes
mutate only their function's SSA form — never the base module — so the
default is to preserve everything; transforms of the base module
(critical-edge splitting, out-of-SSA) invalidate all derived analyses.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Callable, Dict, Hashable, Optional, Tuple

Key = Tuple[str, Optional[Hashable]]

#: named analysis constructors — ``manager.get_registered(name, scope,
#: *args)`` resolves ``name`` here, so passes request shared analyses
#: by wire name instead of hand-rolling the compute closure each time
ANALYSIS_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_analysis(name: str) -> Callable:
    """Register a named analysis constructor (decorator)."""

    def deco(compute: Callable[..., object]) -> Callable[..., object]:
        ANALYSIS_REGISTRY[name] = compute
        return compute

    return deco


@register_analysis("prob-alias")
def _prob_alias(fn, dom=None):
    """Static probabilistic alias facts of one function (profile-free
    speculation source — repro.analysis.prob_alias)."""
    from ...analysis.prob_alias import compute_prob_alias

    return compute_prob_alias(fn, dom)


class AnalysisManager:
    """Memoizing analysis cache with per-analysis hit/miss counters."""

    def __init__(self) -> None:
        self._cache: Dict[Key, object] = {}
        # reentrant: computing one analysis may request another
        # (e.g. the alias classifier pulls mod/ref through the cache)
        self._lock = threading.RLock()
        self.hit_counts: Counter = Counter()
        self.miss_counts: Counter = Counter()
        self.invalidation_counts: Counter = Counter()

    # ---- lookup ----------------------------------------------------------
    def get(self, name: str, scope: Optional[Hashable],
            compute: Callable[[], object]) -> object:
        """The cached result of analysis ``name`` at ``scope``,
        computing (and caching) it on first request."""
        key = (name, scope)
        with self._lock:
            if key in self._cache:
                self.hit_counts[name] += 1
                return self._cache[key]
            self.miss_counts[name] += 1
            result = compute()
            self._cache[key] = result
            return result

    def get_registered(self, name: str, scope: Optional[Hashable],
                       *args) -> object:
        """The cached result of the *registered* analysis ``name`` at
        ``scope``, constructing it from ``args`` on first request."""
        compute = ANALYSIS_REGISTRY[name]
        return self.get(name, scope, lambda: compute(*args))

    def cached(self, name: str, scope: Optional[Hashable] = None) -> bool:
        with self._lock:
            return (name, scope) in self._cache

    # ---- invalidation ----------------------------------------------------
    def invalidate(self, name: Optional[str] = None,
                   scope: Optional[Hashable] = None) -> int:
        """Drop cached entries.  ``invalidate()`` clears everything;
        ``invalidate(name)`` drops every scope of one analysis;
        ``invalidate(name, scope)`` drops one entry.  Returns the number
        of entries dropped."""
        with self._lock:
            if name is None:
                victims = list(self._cache)
            elif scope is None:
                victims = [k for k in self._cache if k[0] == name]
            else:
                victims = [(name, scope)] if (name, scope) in self._cache \
                    else []
            for key in victims:
                del self._cache[key]
                self.invalidation_counts[key[0]] += 1
            return len(victims)

    def apply_invalidations(self, names: Tuple[str, ...]) -> None:
        """Honour a pass's ``invalidates`` declaration."""
        if "*" in names:
            self.invalidate()
        else:
            for name in names:
                self.invalidate(name)

    # ---- counters --------------------------------------------------------
    @property
    def hits(self) -> int:
        return sum(self.hit_counts.values())

    @property
    def misses(self) -> int:
        return sum(self.miss_counts.values())

    def stats(self) -> Dict[str, object]:
        """JSON-friendly counter snapshot (part of the pass trace)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "by_analysis": {
                name: {"hits": self.hit_counts[name],
                       "misses": self.miss_counts[name],
                       "invalidations": self.invalidation_counts[name]}
                for name in sorted(set(self.hit_counts)
                                   | set(self.miss_counts)
                                   | set(self.invalidation_counts))
            },
        }
