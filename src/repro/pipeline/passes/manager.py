"""The pass manager: declarative pipeline assembly, the fallback
ladder as pipeline truncations, cached analyses, parallel per-function
compilation, and per-pass instrumentation.

:class:`PassManager` owns one compilation of one source program:

* the pipeline is assembled **declaratively** from the
  :class:`~repro.core.SpecConfig` — :func:`function_pass_names` maps a
  config to the pass sequence it enables, and the fallback ladder's
  rungs (:data:`LADDER`) are *truncations* of that sequence (drop the
  named passes, flip the matching config flags) rather than opaque
  config lambdas;
* per-function and module-level analyses go through one shared
  :class:`~repro.pipeline.passes.analysis.AnalysisManager`, so a
  ladder retry rebuilds SSA without recomputing alias info, dominance
  or points-to, and profiles are collected once;
* independent functions compile in parallel (``jobs > 1``) on a thread
  pool; each worker buffers its outcome — SSA, stats, diagnostics,
  dumps, timings — and the manager merges buffers **in module function
  order**, so the result is bit-identical to a sequential compile;
* every pass invocation is timed and measured (statements/loads/stores
  before and after) into a
  :class:`~repro.pipeline.passes.timing.PassTrace` — the
  ``--time-passes`` report and the machine-readable JSON trace.

The fail-safe guards (docs/recovery.md) live here: the manager wraps
pass execution, records :class:`~repro.pipeline.results.Diagnostic`
entries for absorbed failures, and walks the ladder.  Passes themselves
stay oblivious — and must be **stateless**, because one instance per
plan is shared across functions and worker threads.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...analysis import AliasClassifier
from ...core import OptStats, SpecConfig
from ...core.phases import PHASES, PHASES_BY_NAME, make_context
from ...errors import FuelExhausted
from ...ir import Module, verify_module
from ...lang import compile_source
from ...ssa import SpecMode, format_ssa, ssa_counts
from ...target import compile_function
from ..dumps import record_machine, record_module
from ..results import CompileResult, Diagnostic
from . import adapters  # noqa: F401 — registers the built-in passes
from .analysis import AnalysisManager
from .base import Pass, create_pass
from .timing import PassTiming, PassTrace

_MODULE_RUNG = "-"      # rung label for module/machine-scope records


def _driver():
    """The driver module, late-bound: ``collect_alias_profile``,
    ``collect_edge_profile`` and ``verify_ssa`` are looked up through it
    at call time so its module globals stay usable as test seams."""
    from .. import driver

    return driver


# ---------------------------------------------------------------------------
# Pipeline states (what each pass kind operates on)
# ---------------------------------------------------------------------------


@dataclass
class ModuleState:
    """Module-scope pipeline state."""

    module: Module
    config: SpecConfig
    analyses: AnalysisManager
    #: successfully optimized functions, in module order
    ssa_functions: List = field(default_factory=list)
    #: the out-of-SSA module (set by ``lower-module``)
    optimized: Optional[Module] = None

    @property
    def current_module(self) -> Module:
        return self.optimized if self.optimized is not None else self.module


@dataclass
class FunctionState:
    """One function's compilation state on one ladder rung."""

    module: Module
    fn: object
    config: SpecConfig
    classifier: AliasClassifier
    analyses: AnalysisManager
    alias_profile: object = None
    edge_profile: object = None
    #: the (speculative) SSA form (set by ``build-ssa``)
    ssa: object = None
    #: the shared PREContext of the SSAPRE phases (lazily created)
    ctx: object = None
    stats: OptStats = field(default_factory=OptStats)

    def ensure_ctx(self):
        """The function's single shared :class:`PREContext` — strength
        reduction's injury records must be visible to LFTR, so all
        SSAPRE phases operate on one context."""
        if self.ctx is None:
            self.ctx = make_context(self.ssa, self.config,
                                    self.edge_profile)
        return self.ctx


@dataclass
class MachineState:
    """Machine-program pipeline state.  ``mfn`` is the current machine
    function while the per-function scheduling passes run;
    ``edge_profile`` and ``config`` feed the superblock passes, and
    ``traces`` carries one function's superblock partition from
    ``superblock-form`` to ``superblock-schedule``/``superblock-layout``."""

    optimized: Module
    config: Optional[SpecConfig] = None
    program: object = None
    mfn: object = None
    edge_profile: object = None
    traces: object = None


# ---------------------------------------------------------------------------
# Pipeline assembly: config → pass names; ladder rungs → truncations
# ---------------------------------------------------------------------------


def function_pass_names(config: SpecConfig) -> List[str]:
    """The per-function pass sequence ``config`` enables, in order."""
    names = ["build-ssa"]
    names += [phase.name for phase in PHASES if phase.enabled(config)]
    names += ["verify-ssa", "lower-ssa"]
    return names


@dataclass(frozen=True)
class Rung:
    """One fallback-ladder rung: a pipeline truncation.  ``drop`` names
    SSAPRE passes removed from the pipeline (their config flags are
    flipped to match, keeping pipeline and config consistent);
    ``overrides`` are extra config changes (e.g. disabling
    speculation)."""

    name: str
    drop: Tuple[str, ...] = ()
    overrides: Dict[str, object] = field(default_factory=dict)


#: The fallback ladder (weakest last).  Mirrors the old ``_LADDER``
#: config lambdas exactly, but expressed as pipeline truncations.
LADDER: Tuple[Rung, ...] = (
    Rung("no-lftr", drop=("lftr", "strength-reduction")),
    Rung("no-epre", drop=("lftr", "strength-reduction", "expression-pre")),
    Rung("no-spec", drop=("lftr", "strength-reduction", "expression-pre"),
         overrides={"mode": SpecMode.OFF, "control_speculation": False}),
)


def rung_config(config: SpecConfig, rung: Rung) -> SpecConfig:
    """``config`` with ``rung``'s dropped passes' flags flipped off and
    its overrides applied."""
    changes: Dict[str, object] = {
        PHASES_BY_NAME[name].flag: False for name in rung.drop}
    changes.update(rung.overrides)
    return config.but(**changes)


@dataclass(frozen=True)
class PipelinePlan:
    """An instantiated per-function pipeline for one ladder rung."""

    rung: str
    config: SpecConfig
    passes: Tuple[Pass, ...]


def _plan(rung_name: str, config: SpecConfig) -> PipelinePlan:
    return PipelinePlan(rung_name, config,
                        tuple(create_pass(name)
                              for name in function_pass_names(config)))


def ladder_plans(config: SpecConfig,
                 failsafe: bool = True) -> List[PipelinePlan]:
    """The per-function plans to try, strongest first.  Passes are
    instantiated **by registry name here**, so a monkeypatched
    ``PASS_REGISTRY`` entry is what every rung actually runs."""
    plans = [_plan("as-configured", config)]
    if failsafe:
        plans += [_plan(rung.name, rung_config(config, rung))
                  for rung in LADDER]
    return plans


@dataclass
class FunctionOutcome:
    """Buffered result of one function's ladder walk (merged by the
    manager in module order — this is what makes ``jobs > 1``
    deterministic)."""

    name: str
    ssa: object = None
    stats: Optional[OptStats] = None
    rung: str = "as-configured"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    timings: List[PassTiming] = field(default_factory=list)
    dumps: List[Tuple[str, str]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------


class PassManager:
    """Owns one compilation: pipeline assembly, analysis caching,
    parallel function compilation, fail-safe guards, instrumentation."""

    def __init__(self, config: Optional[SpecConfig] = None, *,
                 failsafe: bool = True, jobs: int = 1, dumps=None,
                 fuel: int = 50_000_000,
                 profile_transform: Optional[Callable] = None,
                 analyses: Optional[AnalysisManager] = None) -> None:
        self.config = config or SpecConfig.base()
        self.failsafe = failsafe
        self.jobs = max(1, int(jobs))
        self.dumps = dumps
        self.fuel = fuel
        self.profile_transform = profile_transform
        self.analyses = analyses if analyses is not None \
            else AnalysisManager()
        self.trace = PassTrace()
        self.diagnostics: List[Diagnostic] = []
        self.degraded: Dict[str, str] = {}

    # ---- entry point -----------------------------------------------------
    def compile(self, source: str,
                train_inputs: Sequence[float] = ()) -> CompileResult:
        """Compile ``source`` end to end (no simulation)."""
        self.trace = PassTrace()
        self.diagnostics = []
        self.degraded = {}

        # parse + lower; a parse failure is fatal even in fail-safe mode
        # (there is nothing to fall back to)
        module = compile_source(source)
        verify_module(module)
        record_module(self.dumps, "lowered", module)

        # train runs (profiles are analyses: collected once, cached)
        config, alias_profile, edge_profile = \
            self._collect_profiles(module, train_inputs)

        mstate = ModuleState(module=module, config=config,
                             analyses=self.analyses)
        self._run_module_pass("split-critical-edges", mstate)

        classifier = self._alias_classifier(module, config)

        # per-function stage: the ladder plans are built once from the
        # (possibly profile-degraded) config and shared by all workers
        plans = ladder_plans(config, self.failsafe)
        fns = list(module.functions.values())
        outcomes = self._map_functions(
            fns,
            lambda fn: self._compile_function(module, fn, plans,
                                              classifier, alias_profile,
                                              edge_profile))

        # deterministic merge, in module function order
        opt_stats: Dict[str, OptStats] = {}
        for outcome in outcomes:
            self.diagnostics.extend(outcome.diagnostics)
            self.trace.extend(outcome.timings)
            if outcome.ssa is None:
                self.degraded[outcome.name] = "unoptimized"
                continue
            if outcome.rung != "as-configured":
                self.degraded[outcome.name] = outcome.rung
            if self.dumps is not None:
                self.dumps.extend(outcome.dumps)
            opt_stats[outcome.name] = outcome.stats
            mstate.ssa_functions.append(outcome.ssa)

        # out-of-SSA + module re-verification guard
        self._run_module_pass("lower-module", mstate)
        try:
            self._run_module_pass("verify-module", mstate)
        except Exception as exc:  # noqa: BLE001 - the guard IS the point
            if not self.failsafe:
                raise
            self.diagnostics.append(Diagnostic(
                "lower", None, f"{type(exc).__name__}: {exc}",
                "discard all optimization; compile original module"))
            for name in module.functions:
                self.degraded[name] = "unoptimized"
            mstate.optimized = module
        optimized = mstate.current_module
        record_module(self.dumps, "optimized", optimized)

        # codegen + scheduling + machine verification guard
        machine = MachineState(optimized=optimized, config=config,
                               edge_profile=edge_profile)
        self._run_machine_pass("codegen", machine)
        if config.schedule:
            sched_passes = ("superblock-form", "superblock-schedule",
                            "superblock-layout") \
                if config.scheduler == "superblock" else ("schedule",)
            for mfn in machine.program.functions.values():
                machine.mfn = mfn
                machine.traces = None
                try:
                    for pass_name in sched_passes:
                        self._run_machine_pass(pass_name, machine)
                except Exception as exc:  # noqa: BLE001
                    if not self.failsafe:
                        raise
                    self.diagnostics.append(Diagnostic(
                        "schedule", mfn.name,
                        f"{type(exc).__name__}: {exc}",
                        "keep unscheduled code"))
                    machine.program.functions[mfn.name] = compile_function(
                        optimized.functions[mfn.name])
            machine.mfn = None
            machine.traces = None
        try:
            self._run_machine_pass("verify-machine", machine)
        except Exception as exc:  # noqa: BLE001
            if not self.failsafe:
                raise
            self.diagnostics.append(Diagnostic(
                "codegen", None, f"{type(exc).__name__}: {exc}",
                "discard all optimization; compile original module"))
            for name in module.functions:
                self.degraded[name] = "unoptimized"
            from ...target import compile_module, verify_program

            machine.program = compile_module(module)
            verify_program(machine.program)  # the original must verify
        record_machine(self.dumps, "machine", machine.program)

        return CompileResult(
            original=module, optimized=optimized, program=machine.program,
            config=config, opt_stats=opt_stats,
            alias_profile=alias_profile, edge_profile=edge_profile,
            diagnostics=self.diagnostics, degraded=self.degraded,
            pass_trace=self.trace, analyses=self.analyses)

    # ---- profiles and module analyses ------------------------------------
    def _collect_profiles(self, module: Module,
                          train_inputs: Sequence[float]):
        """Train runs.  A broken train run only costs the profiles: the
        manager degrades to profile-free configurations and keeps
        compiling (unless ``failsafe=False``)."""
        config = self.config
        driver = _driver()
        alias_profile = None
        edge_profile = None
        scope = (id(module), tuple(train_inputs), self.fuel)
        if config.needs_alias_profile:
            try:
                alias_profile = self.analyses.get(
                    "alias-profile", scope,
                    lambda: driver.collect_alias_profile(
                        module, fuel=self.fuel, inputs=train_inputs))
            except FuelExhausted as exc:
                if not self.failsafe:
                    raise
                self.diagnostics.append(Diagnostic(
                    "train-run", exc.function, str(exc),
                    "no alias profile; data speculation disabled"))
                config = config.but(mode=SpecMode.OFF)
        if alias_profile is not None and self.profile_transform is not None:
            alias_profile = self.profile_transform(alias_profile)
        if config.use_edge_profile:
            try:
                edge_profile = self.analyses.get(
                    "edge-profile", scope,
                    lambda: driver.collect_edge_profile(
                        module, fuel=self.fuel, inputs=train_inputs))
            except FuelExhausted as exc:
                if not self.failsafe:
                    raise
                self.diagnostics.append(Diagnostic(
                    "train-run", exc.function, str(exc),
                    "no edge profile; static speculation heights"))
                config = config.but(use_edge_profile=False)
        return config, alias_profile, edge_profile

    def _alias_classifier(self, module: Module,
                          config: SpecConfig) -> AliasClassifier:
        def compute() -> AliasClassifier:
            modref = None
            if config.interprocedural_modref:
                from ...analysis import compute_modref

                modref = self.analyses.get("modref", id(module),
                                           lambda: compute_modref(module))
            return AliasClassifier(module, use_tbaa=config.use_tbaa,
                                   modref=modref)

        return self.analyses.get(
            "alias-classifier",
            (id(module), config.use_tbaa, config.interprocedural_modref),
            compute)

    # ---- per-function stage ----------------------------------------------
    def _map_functions(self, fns, compile_one):
        """Compile every function, in parallel when ``jobs > 1``.
        ``pool.map`` yields results in submission order, so outcomes —
        and any ``failsafe=False`` exception — arrive in module order,
        exactly as a sequential run."""
        if self.jobs > 1 and len(fns) > 1:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(compile_one, fns))
        return [compile_one(fn) for fn in fns]

    def _compile_function(self, module, fn, plans, classifier,
                          alias_profile, edge_profile) -> FunctionOutcome:
        """Walk ``fn`` down the ladder plans until one succeeds.  All
        output (dumps, diagnostics, timings) is buffered on the outcome;
        dumps of failed rungs are discarded."""
        outcome = FunctionOutcome(fn.name)
        want_dumps = self.dumps is not None
        for index, plan in enumerate(plans):
            fstate = FunctionState(
                module=module, fn=fn, config=plan.config,
                classifier=classifier, analyses=self.analyses,
                alias_profile=alias_profile, edge_profile=edge_profile)
            rung_dumps: List[Tuple[str, str]] = []
            try:
                for p in plan.passes:
                    self._run_function_pass(p, fstate, plan.rung,
                                            outcome.timings)
                    if want_dumps and p.name == "build-ssa":
                        # snapshot taken BEFORE any optimization runs
                        rung_dumps.append((f"speculative-ssa {fn.name}",
                                           format_ssa(fstate.ssa)))
                if want_dumps:
                    rung_dumps.append((f"after-ssapre {fn.name}",
                                       format_ssa(fstate.ssa)))
            except Exception as exc:  # noqa: BLE001 - the guard IS the point
                if not self.failsafe:
                    raise
                next_rung = plans[index + 1].rung \
                    if index + 1 < len(plans) else None
                outcome.diagnostics.append(Diagnostic(
                    "optimize", fn.name,
                    f"{type(exc).__name__}: {exc} (at {plan.rung!r})",
                    f"retry at ladder rung {next_rung!r}"
                    if next_rung is not None
                    else "keep unoptimized original"))
                continue
            outcome.ssa = fstate.ssa
            outcome.stats = fstate.stats
            outcome.rung = plan.rung
            outcome.dumps = rung_dumps
            return outcome
        outcome.rung = "unoptimized"
        return outcome

    # ---- instrumented pass execution -------------------------------------
    def _run_function_pass(self, p: Pass, state: FunctionState, rung: str,
                           sink: List[PassTiming]) -> None:
        before = ssa_counts(state.ssa) if state.ssa is not None \
            else (0, 0, 0)
        start = time.perf_counter()
        try:
            p.run(state)
        except Exception:
            sink.append(PassTiming(p.name, p.kind, state.fn.name, rung,
                                   time.perf_counter() - start,
                                   before, before, failed=True))
            raise
        after = ssa_counts(state.ssa) if state.ssa is not None else before
        sink.append(PassTiming(p.name, p.kind, state.fn.name, rung,
                               time.perf_counter() - start, before, after))
        self.analyses.apply_invalidations(p.invalidates)

    def _run_module_pass(self, name: str, state: ModuleState) -> None:
        p = create_pass(name)
        before = state.current_module.counts()
        start = time.perf_counter()
        try:
            p.run(state)
        except Exception:
            self.trace.add(PassTiming(p.name, p.kind, None, _MODULE_RUNG,
                                      time.perf_counter() - start,
                                      before, before, failed=True))
            self.analyses.apply_invalidations(p.invalidates)
            raise
        self.trace.add(PassTiming(p.name, p.kind, None, _MODULE_RUNG,
                                  time.perf_counter() - start, before,
                                  state.current_module.counts()))
        self.analyses.apply_invalidations(p.invalidates)

    def _measure_machine(self, state: MachineState):
        if state.mfn is not None:
            return state.mfn.counts()
        if state.program is not None:
            return state.program.counts()
        return (0, 0, 0)

    def _run_machine_pass(self, name: str, state: MachineState) -> None:
        p = create_pass(name)
        function = state.mfn.name if state.mfn is not None else None
        before = self._measure_machine(state)
        start = time.perf_counter()
        try:
            p.run(state)
        except Exception:
            self.trace.add(PassTiming(p.name, p.kind, function,
                                      _MODULE_RUNG,
                                      time.perf_counter() - start,
                                      before, before, failed=True))
            raise
        self.trace.add(PassTiming(p.name, p.kind, function, _MODULE_RUNG,
                                  time.perf_counter() - start, before,
                                  self._measure_machine(state)))
        self.analyses.apply_invalidations(p.invalidates)
