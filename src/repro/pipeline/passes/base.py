"""The typed pass protocol and the pass registry.

A *pass* is one named, instrumented unit of pipeline work.  Three kinds
exist, distinguished by the state they operate on:

* :class:`ModulePass` — mutates the mid-level IR module (e.g. critical
  edge splitting, out-of-SSA lowering, module verification);
* :class:`FunctionPass` — operates on one function's compilation state
  (SSA construction, the SSAPRE phases, SSA verification, the trial
  lowering);
* :class:`MachinePass` — operates on the machine program (code
  generation, scheduling, machine verification).

Passes register by name in :data:`PASS_REGISTRY` via the
:func:`register_pass` decorator.  The pipeline builder instantiates
passes **by name at compile time**, so tests can inject a deliberately
crashing or wrapped pass with ``monkeypatch.setitem(PASS_REGISTRY,
"lftr", CrashingPass)`` and the fail-safe ladder will see it — the
sanctioned seam for fault-injection into the compiler itself.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple


class Pass:
    """Base of all pipeline passes.

    Class attributes:
        name: registry key and ``--time-passes`` label (kebab-case).
        kind: ``"module"`` / ``"function"`` / ``"machine"``.
        invalidates: names of analyses this pass invalidates when it
            runs (``("*",)`` = all).  Function passes mutate only their
            function's SSA, so the default — nothing — keeps every
            module-level analysis cached across fallback-ladder
            retries.
    """

    name: str = "<unnamed>"
    kind: str = "<abstract>"
    invalidates: Tuple[str, ...] = ()

    def run(self, state) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class ModulePass(Pass):
    kind = "module"


class FunctionPass(Pass):
    kind = "function"


class MachinePass(Pass):
    kind = "machine"


#: name → pass factory (usually the class itself).
PASS_REGISTRY: Dict[str, Callable[[], Pass]] = {}


def register_pass(cls):
    """Class decorator: register ``cls`` under ``cls.name``.

    Re-registering a name raises — replace an entry explicitly (tests:
    ``monkeypatch.setitem(PASS_REGISTRY, name, cls)``) rather than
    shadowing it silently.
    """
    name = cls.name
    if name in PASS_REGISTRY:
        raise ValueError(f"pass {name!r} is already registered "
                         f"({PASS_REGISTRY[name]!r})")
    PASS_REGISTRY[name] = cls
    return cls


def create_pass(name: str) -> Pass:
    """Instantiate the registered pass ``name``."""
    try:
        factory = PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; registered: "
            f"{', '.join(sorted(PASS_REGISTRY))}") from None
    return factory()


def registered_passes() -> List[str]:
    """All registered pass names, sorted."""
    return sorted(PASS_REGISTRY)
