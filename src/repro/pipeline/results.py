"""Result records and comparison helpers for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..core import OptStats, SpecConfig
from ..target import MachineStats, MProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir import Module
    from ..profiling import AliasProfile, EdgeProfile
    from .passes.analysis import AnalysisManager
    from .passes.timing import PassTrace


@dataclass
class Diagnostic:
    """One recorded pipeline incident (a crash, verifier failure or
    degraded resource) that the pass manager absorbed instead of
    raising."""

    stage: str                      # e.g. "optimize", "train-run", "codegen"
    function: Optional[str]         # affected function, None = whole module
    error: str                      # what went wrong (one line)
    action: str                     # what the manager did about it

    def __str__(self) -> str:
        where = self.function or "<module>"
        return f"[{self.stage}] {where}: {self.error} -> {self.action}"


@dataclass
class CompileResult:
    """Everything the pipeline produced before simulation."""

    original: "Module"
    optimized: "Module"
    program: MProgram
    config: SpecConfig
    opt_stats: Dict[str, OptStats]
    alias_profile: Optional["AliasProfile"] = None
    edge_profile: Optional["EdgeProfile"] = None
    #: incidents the fail-safe guards absorbed (empty on a clean build)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: functions that did not get the configured optimization level,
    #: mapped to the ladder rung (or "unoptimized") they ended up on
    degraded: Dict[str, str] = field(default_factory=dict)
    #: per-pass wall-time + IR-delta records (``--time-passes``)
    pass_trace: Optional["PassTrace"] = None
    #: the analysis cache used (hit/miss counters live here)
    analyses: Optional["AnalysisManager"] = None


class OutputMismatch(AssertionError):
    """The simulated program's output diverged from the reference
    interpreter's.  Subclasses ``AssertionError`` so existing
    ``pytest.raises(AssertionError)`` / bare-assert callers keep
    working, but carries both transcripts and renders a readable diff."""

    def __init__(self, expected: List[str], actual: List[str]) -> None:
        self.expected = expected
        self.actual = actual
        super().__init__(self.diff())

    def diff(self, context: int = 3) -> str:
        """First divergence plus a few lines of surrounding context."""
        want, got = self.expected, self.actual
        n = max(len(want), len(got))
        first = next((i for i in range(n)
                      if (want[i] if i < len(want) else None)
                      != (got[i] if i < len(got) else None)), n)
        lines = [f"simulated output diverged from the reference at line "
                 f"{first} (expected {len(want)} lines, got {len(got)})"]
        for i in range(max(0, first - context),
                       min(n, first + context + 1)):
            w = want[i] if i < len(want) else "<missing>"
            g = got[i] if i < len(got) else "<missing>"
            marker = "!" if w != g else " "
            lines.append(f" {marker} {i:4d}  expected {w!r:24}  got {g!r}")
        return "\n".join(lines)


@dataclass
class RunResult:
    """One compiled-and-simulated execution."""

    config: SpecConfig
    stats: MachineStats
    output: List[str]
    expected: Optional[List[str]] = None
    opt_stats: Dict[str, OptStats] = field(default_factory=dict)
    program: Optional[MProgram] = None
    #: fail-safe incidents the driver absorbed while compiling
    diagnostics: List = field(default_factory=list)
    #: function name → ladder rung it degraded to ("unoptimized" worst)
    degraded: Dict[str, str] = field(default_factory=dict)
    #: per-pass wall-time + IR-delta records from compilation
    pass_trace: Optional["PassTrace"] = None

    @property
    def total_checks(self) -> int:
        return self.stats.check_loads

    @property
    def trace_counters(self) -> Dict[str, int]:
        """The trace engine's dispatch-machinery counters
        (``traces_compiled``/``trace_hits``/``side_exits``/
        ``trace_dyn_instr``) — all zero unless the run simulated with
        ``engine="trace"`` (docs/performance.md)."""
        return self.stats.engine_dict()


@dataclass
class Comparison:
    """Speculative vs. base — the paper's Figure 10/11 row for one
    benchmark."""

    name: str
    base: RunResult
    spec: RunResult

    @property
    def load_reduction(self) -> float:
        """Fraction of memory-accessing loads removed (Figure 10)."""
        base_loads = self.base.stats.memory_loads
        if base_loads == 0:
            return 0.0
        return 1.0 - self.spec.stats.memory_loads / base_loads

    @property
    def speedup(self) -> float:
        """Execution-time speedup over the base (Figure 10): fraction of
        cycles saved."""
        if self.base.stats.cycles == 0:
            return 0.0
        return 1.0 - self.spec.stats.cycles / self.base.stats.cycles

    @property
    def data_access_reduction(self) -> float:
        """Reduction in data-access (load stall) cycles (Figure 10)."""
        base = self.base.stats.data_access_cycles
        if base == 0:
            return 0.0
        return 1.0 - self.spec.stats.data_access_cycles / base

    @property
    def check_ratio(self) -> float:
        """Dynamic check loads / loads retired in the speculative build
        (Figure 11)."""
        return self.spec.stats.check_ratio

    @property
    def misspeculation_ratio(self) -> float:
        """Failed checks / executed checks (Figure 11)."""
        return self.spec.stats.misspeculation_ratio

    def row(self) -> Dict[str, float]:
        return {
            "benchmark": self.name,
            "load_reduction_%": 100.0 * self.load_reduction,
            "speedup_%": 100.0 * self.speedup,
            "data_access_reduction_%": 100.0 * self.data_access_reduction,
            "check_ratio_%": 100.0 * self.check_ratio,
            "misspec_ratio_%": 100.0 * self.misspeculation_ratio,
        }


def format_table(rows: List[Dict[str, object]], title: str = "") -> str:
    """Render rows as a fixed-width text table (the harness output)."""
    if not rows:
        return title
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(_fmt(r[h])) for r in rows))
        for h in headers
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[h]) for h in headers))
    lines.append("  ".join("-" * widths[h] for h in headers))
    for r in rows:
        lines.append("  ".join(_fmt(r[h]).ljust(widths[h])
                               for h in headers))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
