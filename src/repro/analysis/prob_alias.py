"""Profile-free static probabilistic alias analysis.

The speculation flags of :mod:`repro.ssa.spec` historically came from a
training run (§3.2.1) or from syntax heuristics (§3.2.2).  This module
computes a third source with **no training run at all**: every may-alias
relation gets a *probability* in [0, 1], derived purely statically —

1. every CFG edge gets a **static branch probability** from Ball–Larus
   style heuristics (backedges are taken, loop exits are not, constant
   conditions fold, everything else is 50/50);
2. expected **block frequencies** follow from the edge probabilities as
   a sparse linear system (a block's frequency is the probability-
   weighted sum of its predecessors' — the geometric series of a loop
   falls out of the solve);
3. a **probabilistic points-to dataflow** propagates, for each tracked
   pointer, a probability distribution over its possible targets.  The
   transfer function of a block is *affine* (statements either set a
   pointer to a known distribution, copy another pointer's, or mix),
   and merge points combine predecessor distributions weighted by edge
   frequency — so the whole dataflow is again one sparse linear system
   over (block, pointer, target) unknowns, per Di Pierro & Wiklicky's
   linear-equational formulation of probabilistic dataflow, applied to
   the SSA-oriented alias problem of El-Zawawy & Alanazi (PAPERS.md).

Both systems go through :func:`solve_linear` / :func:`solve_linear_multi`:
sparse Gaussian elimination with partial pivoting, falling back to
damped Gauss–Seidel iteration when the system is (near-)singular (e.g. a
probability-1 cycle).  The result, a :class:`ProbAliasInfo`, answers
"how likely does this load/store touch that location" per reference
site; :class:`repro.ssa.spec.StaticSource` turns the answers into
speculation flags under a tunable threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..ir import (AddrOf, BasicBlock, Bin, CallStmt, CondBr, Const, Expr,
                  Function, Jump, Load, StorageKind, Store, Symbol, Un,
                  VarRead)
from ..ir.stmt import Assign
from .dominance import DominatorTree
from .locs import HeapLoc, Loc
from .loops import LoopForest

# ---------------------------------------------------------------------------
# Tunables (the static heuristics and their smoothing constants)
# ---------------------------------------------------------------------------

#: probability a loop's backedge is taken (Ball–Larus loop heuristic;
#: 0.88 is the classic "loop branch" empirical value)
PROB_BACKEDGE_TAKEN = 0.88

#: probability a branch *stays in* its loop when the alternative exits
PROB_LOOP_STAY = 0.88

#: share of a pointer's untracked ("unknown") probability mass assumed
#: to land on any one particular candidate location — the uniform-prior
#: smoothing of the probabilistic model (Di Pierro & Wiklicky use a
#: uniform distribution over the untracked state space)
UNKNOWN_SHARE = 0.25

#: frequencies below this count as "never executes" (a statically dead
#: block, e.g. behind `if (0)`)
EPS_REACH = 1e-9

#: cap on expected block frequency (guards the probability-1-cycle
#: degenerate case when the iterative fallback had to bail out)
FREQ_CAP = 1e9

#: sentinel "locations": a pointer value we lost track of, and a
#: null / non-pointer value (targets nothing)
UNKNOWN = "<unknown>"
NULL = "<null>"


# ---------------------------------------------------------------------------
# The sparse linear solver (shared by both systems, unit-tested alone)
# ---------------------------------------------------------------------------


class SingularSystem(Exception):
    """Gaussian elimination met a (near-)zero pivot."""


def solve_linear_multi(
    coeffs: Dict[Hashable, Dict[Hashable, float]],
    consts: Dict[Hashable, Dict[Hashable, float]],
    iterations: int = 500,
    tol: float = 1e-12,
) -> Dict[Hashable, Dict[Hashable, float]]:
    """Solve ``x = A·x + b`` for every right-hand-side dimension at once.

    ``coeffs[v][u]`` is ``A[v, u]`` (sparse; absent = 0) and
    ``consts[v]`` is the vector ``b[v]`` as a sparse mapping from an
    arbitrary rhs dimension key to its value.  Returns ``x`` in the same
    vector shape.  Strategy: sparse Gaussian elimination with partial
    pivoting on ``(I - A)``; if a pivot degenerates (the system is
    singular — e.g. a probability-1 cycle), fall back to damped
    Gauss–Seidel iteration, which is well-behaved for the substochastic
    matrices probabilistic dataflow produces.
    """
    order = list(coeffs)
    try:
        return _eliminate(order, coeffs, consts)
    except SingularSystem:
        return _gauss_seidel(order, coeffs, consts, iterations, tol)


def solve_linear(
    coeffs: Dict[Hashable, Dict[Hashable, float]],
    consts: Dict[Hashable, float],
    iterations: int = 500,
    tol: float = 1e-12,
) -> Dict[Hashable, float]:
    """Scalar-rhs convenience wrapper over :func:`solve_linear_multi`."""
    multi = solve_linear_multi(
        coeffs, {v: {0: c} for v, c in consts.items()},
        iterations=iterations, tol=tol)
    return {v: vec.get(0, 0.0) for v, vec in multi.items()}


def _vec_axpy(dst: Dict, factor: float, src: Dict) -> None:
    """``dst += factor * src`` on sparse vectors, in place."""
    for key, value in src.items():
        dst[key] = dst.get(key, 0.0) + factor * value


def _eliminate(order, coeffs, consts):
    position = {v: i for i, v in enumerate(order)}
    rows: List[Dict] = []
    rhs: List[Dict] = []
    for v in order:
        row = {u: -c for u, c in coeffs[v].items() if c}
        row[v] = row.get(v, 0.0) + 1.0
        rows.append(row)
        rhs.append(dict(consts.get(v, {})))
    n = len(order)
    for i in range(n):
        var = order[i]
        pivot_j, pivot_val = i, abs(rows[i].get(var, 0.0))
        for j in range(i + 1, n):
            cand = abs(rows[j].get(var, 0.0))
            if cand > pivot_val:
                pivot_j, pivot_val = j, cand
        if pivot_val < 1e-10:
            raise SingularSystem(f"pivot for {var!r} ~ 0")
        if pivot_j != i:
            rows[i], rows[pivot_j] = rows[pivot_j], rows[i]
            rhs[i], rhs[pivot_j] = rhs[pivot_j], rhs[i]
        pivot = rows[i].pop(var)
        rows[i] = {u: c / pivot for u, c in rows[i].items() if c}
        rhs[i] = {k: c / pivot for k, c in rhs[i].items()}
        for j in range(i + 1, n):
            factor = rows[j].pop(var, 0.0)
            if not factor:
                continue
            for u, c in rows[i].items():
                rows[j][u] = rows[j].get(u, 0.0) - factor * c
            _vec_axpy(rhs[j], -factor, rhs[i])
    solution: Dict[Hashable, Dict] = {}
    for i in range(n - 1, -1, -1):
        value = dict(rhs[i])
        for u, c in rows[i].items():
            if position[u] > i and c:
                _vec_axpy(value, -c, solution[u])
        solution[order[i]] = {k: x for k, x in value.items()
                              if abs(x) > 1e-15}
    return solution


def _gauss_seidel(order, coeffs, consts, iterations, tol):
    x: Dict[Hashable, Dict] = {v: dict(consts.get(v, {})) for v in order}
    for _ in range(iterations):
        delta = 0.0
        for v in order:
            new = dict(consts.get(v, {}))
            for u, c in coeffs[v].items():
                if c:
                    _vec_axpy(new, c, x.get(u, {}))
            # cap runaway components (probability-1 cycles diverge)
            new = {k: min(val, FREQ_CAP) for k, val in new.items()}
            old = x[v]
            for key in set(new) | set(old):
                delta = max(delta,
                            abs(new.get(key, 0.0) - old.get(key, 0.0)))
            x[v] = new
        if delta < tol:
            break
    return x


# ---------------------------------------------------------------------------
# Static branch probabilities and expected block frequencies
# ---------------------------------------------------------------------------


def branch_probabilities(
    fn: Function,
    dom: Optional[DominatorTree] = None,
) -> Dict[Tuple[BasicBlock, BasicBlock], float]:
    """Per-edge static branch probabilities for every reachable block.

    Heuristics, in precedence order: a constant condition folds to
    1.0/0.0; a backedge is taken with :data:`PROB_BACKEDGE_TAKEN`; an
    edge leaving the innermost loop loses to one staying
    (:data:`PROB_LOOP_STAY`); anything else splits 50/50.  Parallel
    edges (both arms of a branch reaching one block) sum.
    """
    fn.compute_cfg()
    dom = dom if dom is not None else DominatorTree(fn)
    forest = LoopForest(fn, dom)
    backedges: Set[Tuple[BasicBlock, BasicBlock]] = set()
    for loop in forest.loops:
        for block in loop.blocks:
            if loop.header in block.successors():
                backedges.add((block, loop.header))

    def leaves_loop(block: BasicBlock, succ: BasicBlock) -> bool:
        loop = forest.innermost(block)
        return loop is not None and succ not in loop.blocks

    probs: Dict[Tuple[BasicBlock, BasicBlock], float] = {}

    def add(src: BasicBlock, dst: BasicBlock, p: float) -> None:
        probs[(src, dst)] = probs.get((src, dst), 0.0) + p

    for block in fn.rpo():
        term = block.terminator
        if isinstance(term, Jump):
            add(block, term.target, 1.0)
        elif isinstance(term, CondBr):
            then_b, else_b = term.then_block, term.else_block
            if isinstance(term.cond, Const):
                p_then = 1.0 if term.cond.value else 0.0
            elif (block, then_b) in backedges \
                    and (block, else_b) not in backedges:
                p_then = PROB_BACKEDGE_TAKEN
            elif (block, else_b) in backedges \
                    and (block, then_b) not in backedges:
                p_then = 1.0 - PROB_BACKEDGE_TAKEN
            elif leaves_loop(block, then_b) \
                    and not leaves_loop(block, else_b):
                p_then = 1.0 - PROB_LOOP_STAY
            elif leaves_loop(block, else_b) \
                    and not leaves_loop(block, then_b):
                p_then = PROB_LOOP_STAY
            else:
                p_then = 0.5
            add(block, then_b, p_then)
            add(block, else_b, 1.0 - p_then)
    return probs


def block_frequencies(
    fn: Function,
    edge_probs: Optional[Dict[Tuple[BasicBlock, BasicBlock], float]] = None,
    dom: Optional[DominatorTree] = None,
) -> Dict[BasicBlock, float]:
    """Expected execution frequency per block: the solution of
    ``freq(b) = [b is entry] + Σ_pred prob(pred→b)·freq(pred)`` — one
    sparse linear solve; a loop body's geometric series
    ``1/(1 - p_backedge)`` is the closed form the unit tests pin."""
    probs = edge_probs if edge_probs is not None \
        else branch_probabilities(fn, dom)
    blocks = fn.rpo()
    reachable = set(blocks)
    coeffs: Dict[Hashable, Dict[Hashable, float]] = {}
    consts: Dict[Hashable, float] = {}
    for block in blocks:
        row: Dict[Hashable, float] = {}
        for pred in block.preds:
            if pred not in reachable:
                continue
            p = probs.get((pred, block), 0.0)
            if p:
                row[pred] = row.get(pred, 0.0) + p
        coeffs[block] = row
        consts[block] = 1.0 if block is fn.entry else 0.0
    solution = solve_linear(coeffs, consts)
    return {b: min(max(solution.get(b, 0.0), 0.0), FREQ_CAP)
            for b in blocks}


# ---------------------------------------------------------------------------
# The probabilistic points-to dataflow
# ---------------------------------------------------------------------------

#: a concrete distribution over targets: Loc | UNKNOWN | NULL → mass
Dist = Dict[object, float]

#: an affine symbolic distribution: a mix of block-entry pointer values
#: (coefficients) plus a constant part — the per-block transfer image
SymDist = Tuple[Dict[Symbol, float], Dist]


def _sym_const(dist: Dist) -> SymDist:
    return ({}, dist)


def _sym_mix(a: SymDist, b: SymDist, wa: float, wb: float) -> SymDist:
    coeff: Dict[Symbol, float] = {}
    const: Dist = {}
    for w, (c, k) in ((wa, a), (wb, b)):
        for sym, x in c.items():
            coeff[sym] = coeff.get(sym, 0.0) + w * x
        for loc, x in k.items():
            const[loc] = const.get(loc, 0.0) + w * x
    return (coeff, const)


@dataclass
class SiteProb:
    """Probabilistic alias facts for one load/store site."""

    #: distribution of the address over targets (keys: Loc, UNKNOWN, NULL)
    dist: Dist = field(default_factory=dict)
    #: likeliness the site executes at all (0 = statically dead)
    reach: float = 0.0

    def target_prob(self, loc: Loc) -> float:
        """P(this reference touches ``loc``): tracked mass on ``loc``
        plus the uniform-prior share of the unknown mass."""
        return min(1.0, self.dist.get(loc, 0.0)
                   + self.dist.get(UNKNOWN, 0.0) * UNKNOWN_SHARE)


def dist_overlap(a: Dist, b: Dist) -> float:
    """P(two independently-drawn addresses collide): the inner product
    of the tracked masses, with unknown mass colliding at the
    :data:`UNKNOWN_SHARE` prior."""
    locs = [k for k in set(a) | set(b) if k is not UNKNOWN and k is not NULL]
    a_u, b_u = a.get(UNKNOWN, 0.0), b.get(UNKNOWN, 0.0)
    overlap = sum(a.get(k, 0.0) * b.get(k, 0.0) for k in locs)
    overlap += UNKNOWN_SHARE * (
        a_u * sum(b.get(k, 0.0) for k in locs)
        + b_u * sum(a.get(k, 0.0) for k in locs)
        + a_u * b_u)
    return min(1.0, overlap)


class ProbAliasInfo:
    """Per-function result: per-site address distributions + reach."""

    def __init__(self, fn: Function) -> None:
        self.fn = fn
        #: id(Load expr) / id(Store stmt) → facts
        self.sites: Dict[int, SiteProb] = {}
        #: expected execution frequency per block name (introspection)
        self.freq: Dict[str, float] = {}
        #: static branch probability per (src, dst) block-name pair
        self.edge_prob: Dict[Tuple[str, str], float] = {}

    def site(self, key: int) -> SiteProb:
        return self.sites.get(key) or SiteProb({UNKNOWN: 1.0}, 1.0)

    def target_prob(self, key: int, loc: Loc) -> float:
        return self.site(key).target_prob(loc)

    def executed(self, key: int) -> bool:
        """Can this site execute at all (statically)?"""
        return self.site(key).reach > EPS_REACH

    def overlap(self, key: int, other: Dist) -> float:
        return dist_overlap(self.site(key).dist, other)


class ProbAliasAnalysis:
    """Runs the whole static probabilistic pipeline for one function."""

    def __init__(self, fn: Function,
                 dom: Optional[DominatorTree] = None) -> None:
        self.fn = fn
        fn.compute_cfg()
        self.edge_probs = branch_probabilities(fn, dom)
        self.freqs = block_frequencies(fn, self.edge_probs)
        self._tracked = self._tracked_pointers()
        self.info = ProbAliasInfo(fn)
        self.info.freq = {b.name: f for b, f in self.freqs.items()}
        self.info.edge_prob = {(s.name, d.name): p
                               for (s, d), p in self.edge_probs.items()}
        self._solve_and_record()

    # ---- tracked pointers (same rule as repro.ssa.refine) ----------------
    def _tracked_pointers(self) -> Set[Symbol]:
        tracked: Set[Symbol] = set()
        for sym in self.fn.params + self.fn.locals:
            if sym.ty.is_pointer and not sym.address_taken \
                    and not sym.is_array:
                tracked.add(sym)
        # register-resident compiler temporaries (e.g. alloc results)
        for _, stmt in self.fn.statements():
            if isinstance(stmt, Assign) and self._is_temp(stmt.sym):
                tracked.add(stmt.sym)
            elif isinstance(stmt, CallStmt) and stmt.dst is not None \
                    and self._is_temp(stmt.dst):
                tracked.add(stmt.dst)
        return tracked

    @staticmethod
    def _is_temp(sym: Symbol) -> bool:
        return sym.kind is StorageKind.TEMP and not sym.address_taken

    def _is_tracked(self, sym: Symbol) -> bool:
        return sym in self._tracked

    # ---- symbolic (affine) transfer over one block -----------------------
    def _eval(self, state: Dict[Symbol, SymDist], expr: Expr) -> SymDist:
        if isinstance(expr, Const):
            return _sym_const({NULL: 1.0})
        if isinstance(expr, AddrOf):
            return _sym_const({expr.sym: 1.0})
        if isinstance(expr, VarRead):
            if expr.sym.is_array:
                return _sym_const({expr.sym: 1.0})
            if self._is_tracked(expr.sym):
                return state.get(expr.sym, _sym_const({UNKNOWN: 1.0}))
            return _sym_const({UNKNOWN: 1.0})
        if isinstance(expr, Bin) and expr.op in ("+", "-"):
            # pointer arithmetic stays within the pointed-to object
            if expr.left.ty.is_pointer and not expr.right.ty.is_pointer:
                return self._eval(state, expr.left)
            if expr.right.ty.is_pointer and not expr.left.ty.is_pointer:
                return self._eval(state, expr.right)
            return _sym_mix(self._eval(state, expr.left),
                            self._eval(state, expr.right), 0.5, 0.5)
        if isinstance(expr, Un):
            return self._eval(state, expr.operand)
        return _sym_const({UNKNOWN: 1.0})  # loads, comparisons, ...

    def _transfer(self, state: Dict[Symbol, SymDist], stmt) -> None:
        if isinstance(stmt, Assign):
            if self._is_tracked(stmt.sym):
                state[stmt.sym] = self._eval(state, stmt.value)
        elif isinstance(stmt, CallStmt):
            if stmt.dst is None or not self._is_tracked(stmt.dst):
                return
            if stmt.is_alloc:
                assert stmt.site_id is not None
                state[stmt.dst] = _sym_const({HeapLoc(stmt.site_id): 1.0})
            else:
                state[stmt.dst] = _sym_const({UNKNOWN: 1.0})

    def _block_transfer(self, block: BasicBlock) -> Dict[Symbol, SymDist]:
        """The block's affine image: exit distribution of each tracked
        pointer as a mix of entry values plus a constant part."""
        state: Dict[Symbol, SymDist] = {
            p: ({p: 1.0}, {}) for p in self._tracked}
        for stmt in block.stmts:
            self._transfer(state, stmt)
        return state

    # ---- assemble + solve the global sparse system -----------------------
    def _entry_dist(self, sym: Symbol) -> Dist:
        # parameters arrive unknown; locals are zero-initialized (null)
        return {UNKNOWN: 1.0} if sym.kind is StorageKind.PARAM \
            else {NULL: 1.0}

    def _solve_and_record(self) -> None:
        blocks = self.fn.rpo()
        if not self._tracked:
            entry_states: Dict[BasicBlock, Dict[Symbol, Dist]] = {
                b: {} for b in blocks}
            self._record(blocks, entry_states)
            return
        transfers = {b: self._block_transfer(b) for b in blocks}
        reachable = set(blocks)
        coeffs: Dict[Hashable, Dict[Hashable, float]] = {}
        consts: Dict[Hashable, Dict[Hashable, float]] = {}
        for block in blocks:
            # normalized incoming edge weights (by expected frequency)
            weights: List[Tuple[BasicBlock, float]] = []
            for pred in block.preds:
                if pred not in reachable:
                    continue
                p = self.edge_probs.get((pred, block), 0.0)
                weights.append((pred, self.freqs.get(pred, 0.0) * p))
            total = sum(w for _, w in weights)
            if block is self.fn.entry or total <= EPS_REACH:
                for ptr in self._tracked:
                    coeffs[(block, ptr)] = {}
                    consts[(block, ptr)] = self._entry_dist(ptr)
                continue
            for ptr in self._tracked:
                row: Dict[Hashable, float] = {}
                const: Dist = {}
                for pred, w in weights:
                    if w <= 0.0:
                        continue
                    share = w / total
                    coeff, k = transfers[pred][ptr]
                    for src_ptr, c in coeff.items():
                        key = (pred, src_ptr)
                        row[key] = row.get(key, 0.0) + share * c
                    _vec_axpy(const, share, k)
                coeffs[(block, ptr)] = row
                consts[(block, ptr)] = const
        solution = solve_linear_multi(coeffs, consts)
        entry_states = {}
        for block in blocks:
            entry_states[block] = {
                ptr: _clamp_dist(solution.get((block, ptr), {}))
                for ptr in self._tracked}
        self._record(blocks, entry_states)

    # ---- final recording pass (concrete, per site) -----------------------
    def _record(self, blocks, entry_states) -> None:
        for block in blocks:
            reach = min(1.0, self.freqs.get(block, 0.0))
            sym_state: Dict[Symbol, SymDist] = {
                p: _sym_const(entry_states[block].get(p, {UNKNOWN: 1.0}))
                for p in self._tracked}
            for stmt in block.stmts:
                for top in stmt.exprs():
                    for node in top.walk():
                        if isinstance(node, Load):
                            self._record_site(id(node), sym_state,
                                              node.addr, reach)
                if isinstance(stmt, Store):
                    self._record_site(id(stmt), sym_state, stmt.addr,
                                      reach)
                self._transfer(sym_state, stmt)
            if block.terminator is not None:
                for top in block.terminator.exprs():
                    for node in top.walk():
                        if isinstance(node, Load):
                            self._record_site(id(node), sym_state,
                                              node.addr, reach)

    def _record_site(self, key: int, sym_state, addr: Expr,
                     reach: float) -> None:
        coeff, const = self._eval(sym_state, addr)
        assert not coeff, "entry state is concrete"
        dist = _clamp_dist(const)
        existing = self.info.sites.get(key)
        if existing is not None:
            # a site inside an unrolled/duplicated context: average
            dist = _clamp_dist({k: 0.5 * (existing.dist.get(k, 0.0)
                                          + dist.get(k, 0.0))
                                for k in set(existing.dist) | set(dist)})
            reach = max(existing.reach, reach)
        self.info.sites[key] = SiteProb(dist, reach)


def _clamp_dist(dist: Dist) -> Dist:
    """Numerical cleanup: drop negatives/noise, renormalize mass > 1."""
    clean = {k: v for k, v in dist.items() if v > 1e-12}
    total = sum(clean.values())
    if total > 1.0 + 1e-9:
        clean = {k: v / total for k, v in clean.items()}
    return clean


def compute_prob_alias(fn: Function,
                       dom: Optional[DominatorTree] = None) -> ProbAliasInfo:
    """The static probabilistic alias facts of ``fn`` (the pipeline
    caches this per function as the ``prob-alias`` analysis)."""
    return ProbAliasAnalysis(fn, dom).info
