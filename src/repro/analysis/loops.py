"""Natural-loop detection.

Strength reduction and linear-function test replacement (paper §4 /
Kennedy et al. [20]) need loop structure: which blocks form each loop, the
loop header, and whether a value is loop-invariant.  Loops are found from
back edges (edges whose target dominates their source) and nested loops are
related by header containment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir import BasicBlock, Function
from .dominance import DominatorTree


@dataclass
class Loop:
    """One natural loop: ``header`` plus the set of ``blocks`` it contains."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    parent: Optional["Loop"] = None

    @property
    def depth(self) -> int:
        depth = 1
        loop = self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def __repr__(self) -> str:
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


class LoopForest:
    """All natural loops of a function, with an innermost-loop map."""

    def __init__(self, fn: Function, dom: Optional[DominatorTree] = None):
        self.fn = fn
        self.dom = dom if dom is not None else DominatorTree(fn)
        self.loops: List[Loop] = []
        self._innermost: Dict[BasicBlock, Optional[Loop]] = {}
        self._find_loops()

    def _find_loops(self) -> None:
        by_header: Dict[BasicBlock, Loop] = {}
        for block in self.dom.order:
            for succ in block.succs:
                if self.dom.dominates(succ, block):
                    loop = by_header.setdefault(succ, Loop(succ, {succ}))
                    self._collect(loop, block)
        self.loops = list(by_header.values())
        # Nesting: a loop's parent is the smallest other loop containing its
        # header.
        for loop in self.loops:
            candidates = [
                other
                for other in self.loops
                if other is not loop and loop.header in other.blocks
            ]
            if candidates:
                loop.parent = min(candidates, key=lambda o: len(o.blocks))
        for block in self.dom.order:
            containing = [l for l in self.loops if block in l.blocks]
            self._innermost[block] = (
                min(containing, key=lambda l: len(l.blocks))
                if containing
                else None
            )

    def _collect(self, loop: Loop, tail: BasicBlock) -> None:
        """Add all blocks that reach ``tail`` without passing the header."""
        stack = [tail]
        while stack:
            block = stack.pop()
            if block in loop.blocks:
                continue
            loop.blocks.add(block)
            stack.extend(block.preds)

    def innermost(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing ``block``, or ``None``."""
        return self._innermost.get(block)

    def loop_depth(self, block: BasicBlock) -> int:
        loop = self.innermost(block)
        return loop.depth if loop is not None else 0
