"""Interprocedural mod/ref summaries for call sites.

The HSSA µ/χ lists at a call site describe what the callee may reference
and modify (the paper §3.2: "For a procedure call statement, the µ list
and the χ list represent the ref and mod information of the procedure
call").  Without a summary, every call conservatively touches all
globals and every escaped location; this module computes per-function
transitive summaries so a call to a function that never writes ``g``
carries no χ(g) — sharpening the *non-speculative* base exactly like
ORC's interprocedural analysis, and leaving the alias-profile refinement
of §3.2.1 to handle what static analysis cannot.

A summary contains:

* ``mod_globals`` / ``ref_globals`` — globals directly assigned/read or
  assigned/read by transitive callees;
* ``touches_memory_mod`` / ``touches_memory_ref`` — whether any indirect
  store/load (or call through unknown memory) occurs: if set, the call
  site keeps the escaped address-taken locals and virtual variables in
  its χ/µ list; if clear, they are dropped.

Summaries are computed by a fixpoint over the (possibly recursive) call
graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from ..ir import (Assign, CallStmt, Function, Load, Module, StorageKind,
                  Store, Symbol, VarRead)


@dataclass
class ModRefSummary:
    """What one function (transitively) may modify / reference."""

    mod_globals: Set[Symbol] = field(default_factory=set)
    ref_globals: Set[Symbol] = field(default_factory=set)
    #: any indirect store / load — pointer targets are handled by the
    #: points-to-based escaped-class sets, gated on these flags
    touches_memory_mod: bool = False
    touches_memory_ref: bool = False


def compute_modref(module: Module) -> Dict[str, ModRefSummary]:
    """Per-function transitive mod/ref summaries (call-graph fixpoint)."""
    summaries: Dict[str, ModRefSummary] = {
        name: ModRefSummary() for name in module.functions
    }
    global_set = set(module.globals)

    def direct_effects(fn: Function, summary: ModRefSummary) -> bool:
        changed = False

        def mark_ref_global(sym: Symbol) -> None:
            nonlocal changed
            if sym in global_set and sym not in summary.ref_globals:
                summary.ref_globals.add(sym)
                changed = True

        def scan_expr(expr) -> None:
            nonlocal changed
            for node in expr.walk():
                if isinstance(node, VarRead):
                    mark_ref_global(node.sym)
                elif isinstance(node, Load):
                    if not summary.touches_memory_ref:
                        summary.touches_memory_ref = True
                        changed = True

        for _, stmt in fn.statements():
            for expr in stmt.exprs():
                scan_expr(expr)
            if isinstance(stmt, Assign):
                if stmt.sym in global_set \
                        and stmt.sym not in summary.mod_globals:
                    summary.mod_globals.add(stmt.sym)
                    changed = True
                # a def of an address-taken local is observable through
                # memory: treat as a memory write for the summary
                if stmt.sym.address_taken and not summary.touches_memory_mod:
                    summary.touches_memory_mod = True
                    changed = True
            elif isinstance(stmt, Store):
                if not summary.touches_memory_mod:
                    summary.touches_memory_mod = True
                    changed = True
            elif isinstance(stmt, CallStmt) and not stmt.is_alloc \
                    and stmt.callee in summaries:
                callee = summaries[stmt.callee]
                before = (len(summary.mod_globals),
                          len(summary.ref_globals),
                          summary.touches_memory_mod,
                          summary.touches_memory_ref)
                summary.mod_globals |= callee.mod_globals
                summary.ref_globals |= callee.ref_globals
                summary.touches_memory_mod |= callee.touches_memory_mod
                summary.touches_memory_ref |= callee.touches_memory_ref
                after = (len(summary.mod_globals),
                         len(summary.ref_globals),
                         summary.touches_memory_mod,
                         summary.touches_memory_ref)
                changed |= before != after
        for _, term in fn.terminators():
            for expr in term.exprs():
                scan_expr(expr)
        return changed

    # fixpoint over the (possibly cyclic) call graph
    for _ in range(len(module.functions) + 2):
        any_change = False
        for name, fn in module.functions.items():
            any_change |= direct_effects(fn, summaries[name])
        if not any_change:
            break
    return summaries
