"""Alias classes and virtual-variable assignment (HSSA front half).

Following Chow et al. [5] and the paper's §3.2, each indirect memory
reference is resolved (by Steensgaard + TBAA) to an *alias class*; within a
class, references that share the same address-expression *syntax tree* share
one **virtual variable**.  A store's χ list then contains:

* its own virtual variable (the store certainly writes its class),
* the virtual variables of the class's *other* reference shapes (those are
  the may-updates that data speculation can later ignore), and
* every visible address-taken real variable of the class (the paper's
  Example 1: ``a`` and ``b`` appear as χs of the store ``*p = 4``).

A load's µ list contains its own virtual variable plus the class's visible
real variables.  Call sites get function-level mod/ref lists: every global,
plus address-taken locals/params and virtual variables whose class *escapes*
(is reachable from a global, a heap object or a callee parameter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ir import (Expr, Function, Load, Module, StorageKind, Store, Symbol,
                  make_virtual, syntax_key)
from .locs import HeapLoc, Loc
from .steensgaard import Steensgaard
from .tbaa import tbaa_compatible, type_family


@dataclass
class SiteAliases:
    """Alias facts for one indirect reference site."""

    vvar: Symbol
    real_vars: List[Symbol] = field(default_factory=list)
    other_vvars: List[Symbol] = field(default_factory=list)
    class_id: Optional[int] = None
    shape: tuple = ()


class FunctionAliasInfo:
    """Per-function map from reference sites to their alias facts.

    Sites are keyed by object identity (``id``) of the :class:`Store`
    statement / :class:`Load` expression node, which the frontend guarantees
    to be unique per occurrence.
    """

    def __init__(self) -> None:
        self.store_info: Dict[int, SiteAliases] = {}
        self.load_info: Dict[int, SiteAliases] = {}
        self.call_mu: List[Symbol] = []
        self.call_chi: List[Symbol] = []
        #: escaped memory symbols / vvars, split out so interprocedural
        #: mod/ref summaries can gate them per callee
        self.call_globals: List[Symbol] = []
        self.call_escaped: List[Symbol] = []
        #: per-callee mod/ref summaries (None: conservative lists)
        self.modref = None
        self.vvars: List[Symbol] = []
        self.vvar_class: Dict[Symbol, Optional[int]] = {}
        self.vvar_shape: Dict[Symbol, tuple] = {}

    def for_store(self, stmt: Store) -> SiteAliases:
        return self.store_info[id(stmt)]

    def for_load(self, expr: Load) -> SiteAliases:
        return self.load_info[id(expr)]

    def call_lists(self, callee: str):
        """(µ symbols, χ symbols) for a call to ``callee``, refined by
        the interprocedural mod/ref summary when available."""
        if self.modref is None or callee not in self.modref:
            return self.call_mu, self.call_chi
        summary = self.modref[callee]
        mus = [g for g in self.call_globals
               if g in summary.ref_globals]
        chis = [g for g in self.call_globals
                if g in summary.mod_globals]
        if summary.touches_memory_ref:
            mus = mus + self.call_escaped
        if summary.touches_memory_mod:
            chis = chis + self.call_escaped
        return mus, chis


class AliasClassifier:
    """Builds :class:`FunctionAliasInfo` for every function of a module."""

    def __init__(
        self,
        module: Module,
        steensgaard: Optional[Steensgaard] = None,
        use_tbaa: bool = True,
        modref=None,
    ) -> None:
        self.module = module
        self.steensgaard = (
            steensgaard if steensgaard is not None else Steensgaard(module)
        )
        self.use_tbaa = use_tbaa
        #: optional per-function interprocedural mod/ref summaries
        self.modref = modref
        self._escaped = self._compute_escaped_classes()

    # ---- escape analysis ---------------------------------------------------
    def _compute_escaped_classes(self) -> Set[int]:
        """Class ids a callee could possibly read or write (delegated to
        the points-to analysis, which knows its own representation)."""
        return self.steensgaard.escaped_class_ids()

    def class_escapes(self, class_id: Optional[int]) -> bool:
        return class_id is not None and class_id in self._escaped

    # ---- per-function info ------------------------------------------------
    def analyze_function(self, fn: Function) -> FunctionAliasInfo:
        info = FunctionAliasInfo()
        st = self.steensgaard
        visible: Set[Symbol] = set(self.module.globals)
        visible |= set(fn.params) | set(fn.locals)

        # Pass 1: discover every indirect site and allocate virtual
        # variables per (class, type family, address syntax tree).
        vvar_key_map: Dict[tuple, Symbol] = {}
        sites: List[Tuple[str, object, Expr, "Type"]] = []  # noqa: F821

        def visit_expr(expr: Expr) -> None:
            for node in expr.walk():
                if isinstance(node, Load):
                    sites.append(("load", node, node.addr, node.value_ty))

        for _, stmt in fn.statements():
            for expr in stmt.exprs():
                visit_expr(expr)
            if isinstance(stmt, Store):
                sites.append(("store", stmt, stmt.addr, stmt.value_ty))
        for _, term in fn.terminators():
            for expr in term.exprs():
                visit_expr(expr)

        def vvar_for(class_id, shape, ty) -> Symbol:
            key = (class_id, type_family(ty) if self.use_tbaa else "any",
                   shape)
            vvar = vvar_key_map.get(key)
            if vvar is None:
                vvar = make_virtual(f"v{len(vvar_key_map)}", ty)
                vvar_key_map[key] = vvar
                info.vvars.append(vvar)
                info.vvar_class[vvar] = class_id
                info.vvar_shape[vvar] = shape
            return vvar

        resolved = []
        for kind, site, addr, ty in sites:
            class_id = st.class_of_address(addr)
            shape = syntax_key(addr)
            vvar = vvar_for(class_id, shape, ty)
            resolved.append((kind, site, class_id, shape, ty, vvar))

        # Pass 2: build per-site alias lists.
        for kind, site, class_id, shape, ty, vvar in resolved:
            real_vars = self._real_vars_in_class(class_id, ty, visible)
            entry = SiteAliases(
                vvar=vvar, real_vars=real_vars, class_id=class_id,
                shape=shape,
            )
            if kind == "store":
                entry.other_vvars = [
                    v
                    for v in info.vvars
                    if v is not vvar
                    and info.vvar_class[v] == class_id
                    and (not self.use_tbaa or tbaa_compatible(v.ty, ty))
                ]
                info.store_info[id(site)] = entry
            else:
                info.load_info[id(site)] = entry

        # Call-site mod/ref lists.  Conservative shape: all globals plus
        # escaped address-taken locals and virtual variables; the
        # interprocedural summary (when provided) refines per callee, and
        # the alias *profile* refines per site later.
        escaped_syms: List[Symbol] = []
        for sym in fn.params + fn.locals:
            if sym.address_taken and self.class_escapes(
                st.class_of_loc(sym)
            ):
                escaped_syms.append(sym)
        call_vvars = [
            v for v in info.vvars if self.class_escapes(info.vvar_class[v])
        ]
        info.call_globals = [g for g in self.module.globals
                             if not g.is_array]
        info.call_escaped = escaped_syms + call_vvars
        info.call_mu = info.call_globals + info.call_escaped
        info.call_chi = list(info.call_mu)
        info.modref = self.modref
        return info

    def _real_vars_in_class(
        self, class_id: Optional[int], ty, visible: Set[Symbol]
    ) -> List[Symbol]:
        result = []
        for loc in sorted(
            self.steensgaard.locations(class_id),
            key=lambda l: l.site_id if isinstance(l, HeapLoc) else l.uid,
        ):
            if isinstance(loc, HeapLoc):
                continue  # heap LOCs never appear in µ/χ lists (paper fn. 1)
            if loc not in visible or not loc.address_taken:
                continue
            if loc.is_array:
                continue  # array cells are only reached through the vvar
            if self.use_tbaa and not tbaa_compatible(loc.ty, ty):
                continue
            result.append(loc)
        return result
