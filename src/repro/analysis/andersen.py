"""Andersen-style (inclusion-based) points-to analysis.

The paper builds its alias classes with Steensgaard's unification
analysis (§3.2, [28]) because it is almost linear; inclusion-based
analysis (Andersen) is the classic more-precise/more-expensive
alternative the alias-analysis literature it cites ([14]) contrasts it
with.  This module provides it as a drop-in substitute so the
reproduction can quantify how much of the speculative win survives when
the *static* analysis is already sharper (ablation: a better baseline
narrows, but does not close, the gap — most of the paper's win comes
from input-dependent aliasing no static analysis can resolve).

Implementation: subset constraints over points-to sets with a worklist;
the public surface mirrors :class:`repro.analysis.steensgaard.
Steensgaard` (``class_of_address`` / ``locations`` / ``may_alias``), with
*overlap-closure* classes: references whose points-to sets transitively
overlap share a class id (alias classes must be equivalence classes for
virtual-variable assignment).
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir import (AddrOf, Assign, Bin, CallStmt, Const, Expr, Function,
                  Load, Module, PrintStmt, Return, Store, Symbol, Un,
                  VarRead)
from .locs import HeapLoc, Loc


class Andersen:
    """Inclusion-based points-to with a Steensgaard-compatible API."""

    def __init__(self, module: Module, max_iterations: int = 100) -> None:
        self.module = module
        #: points-to sets of *pointer holders*: variables and LOC cells
        self._pts: Dict[object, Set[Loc]] = defaultdict(set)
        #: subset constraints dst ⊇ src (simple copy edges)
        self._copies: Dict[object, Set[object]] = defaultdict(set)
        #: complex constraints deferred to the fixpoint: (kind, a, b)
        #: kind "store": *a ⊇ b   |   kind "load": a ⊇ *b
        self._complex: List[Tuple[str, object, object]] = []
        self._collect_constraints()
        self._solve(max_iterations)
        self._classes = self._overlap_closure()

    # ---- constraint generation -----------------------------------------
    def _cell(self, loc: Loc) -> tuple:
        """The abstract contents cell of a LOC."""
        return ("cell", loc)

    def _value_node(self, expr: Expr, sink: object) -> None:
        """Record that ``sink`` ⊇ points-to(value of expr)."""
        if isinstance(expr, Const):
            return
        if isinstance(expr, AddrOf):
            self._pts[sink].add(expr.sym)
            return
        if isinstance(expr, VarRead):
            if expr.sym.is_array:
                self._pts[sink].add(expr.sym)
            else:
                self._copies[sink].add(expr.sym)
            return
        if isinstance(expr, Load):
            base = ("tmp", id(expr))
            self._value_node(expr.addr, base)
            self._complex.append(("load", sink, base))
            return
        if isinstance(expr, Bin):
            self._value_node(expr.left, sink)
            self._value_node(expr.right, sink)
            return
        if isinstance(expr, Un):
            self._value_node(expr.operand, sink)
            return

    def _collect_constraints(self) -> None:
        for fn in self.module.functions.values():
            for _, stmt in fn.statements():
                if isinstance(stmt, Assign):
                    self._value_node(stmt.value, stmt.sym)
                elif isinstance(stmt, Store):
                    addr = ("tmp", ("store", id(stmt)))
                    self._value_node(stmt.addr, addr)
                    value = ("tmp", ("value", id(stmt)))
                    self._value_node(stmt.value, value)
                    self._complex.append(("store", addr, value))
                elif isinstance(stmt, CallStmt):
                    self._call_constraints(stmt)
        # record address nodes for query use
        self._addr_nodes: Dict[int, object] = {}

    def _call_constraints(self, stmt: CallStmt) -> None:
        if stmt.is_alloc:
            if stmt.dst is not None and stmt.site_id is not None:
                self._pts[stmt.dst].add(HeapLoc(stmt.site_id))
            return
        callee = self.module.functions.get(stmt.callee)
        if callee is None:
            return
        for param, arg in zip(callee.params, stmt.args):
            self._value_node(arg, param)
        if stmt.dst is not None:
            for _, term in callee.terminators():
                if isinstance(term, Return) and term.value is not None:
                    self._value_node(term.value, stmt.dst)

    # ---- solving -----------------------------------------------------------
    def _solve(self, max_iterations: int) -> None:
        for _ in range(max_iterations):
            changed = False
            # copy edges
            for dst, srcs in self._copies.items():
                before = len(self._pts[dst])
                for src in srcs:
                    self._pts[dst] |= self._pts[src]
                changed |= len(self._pts[dst]) != before
            # complex constraints
            for kind, a, b in self._complex:
                if kind == "store":
                    # *(a) ⊇ b: contents cell of each target of a
                    for target in list(self._pts[a]):
                        cell = self._cell(target)
                        before = len(self._pts[cell])
                        self._pts[cell] |= self._pts[b]
                        changed |= len(self._pts[cell]) != before
                else:  # load: a ⊇ *(b)
                    before = len(self._pts[a])
                    for target in list(self._pts[b]):
                        self._pts[a] |= self._pts[self._cell(target)]
                    changed |= len(self._pts[a]) != before
            if not changed:
                return

    # ---- address-expression evaluation -------------------------------------
    def _targets_of(self, addr: Expr) -> FrozenSet[Loc]:
        if isinstance(addr, Const):
            return frozenset()
        if isinstance(addr, AddrOf):
            return frozenset([addr.sym])
        if isinstance(addr, VarRead):
            if addr.sym.is_array:
                return frozenset([addr.sym])
            return frozenset(self._pts[addr.sym])
        if isinstance(addr, Load):
            inner = self._targets_of(addr.addr)
            out: Set[Loc] = set()
            for target in inner:
                out |= self._pts[self._cell(target)]
            return frozenset(out)
        if isinstance(addr, Bin):
            return self._targets_of(addr.left) | self._targets_of(
                addr.right)
        if isinstance(addr, Un):
            return self._targets_of(addr.operand)
        return frozenset()

    # ---- alias classes: overlap closure ----------------------------------
    def _overlap_closure(self) -> Dict[Loc, int]:
        """Union-find over LOCs: LOCs appearing together in any reference's
        target set share a class (so classes are equivalence classes)."""
        parent: Dict[Loc, Loc] = {}

        def find(x: Loc) -> Loc:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: Loc, b: Loc) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        for fn in self.module.functions.values():
            for _, stmt in fn.statements():
                sets = []
                for expr in stmt.exprs():
                    for node in expr.walk():
                        if isinstance(node, Load):
                            sets.append(self._targets_of(node.addr))
                if isinstance(stmt, Store):
                    sets.append(self._targets_of(stmt.addr))
                for targets in sets:
                    targets = list(targets)
                    for loc in targets:
                        find(loc)  # materialize singleton classes
                    for other in targets[1:]:
                        union(targets[0], other)
        ids: Dict[Loc, int] = {}
        counter = itertools.count(1)
        roots: Dict[Loc, int] = {}
        for loc in list(parent):
            root = find(loc)
            if root not in roots:
                roots[root] = next(counter)
            ids[loc] = roots[root]
        return ids

    # ---- Steensgaard-compatible queries ------------------------------------
    def class_of_address(self, addr: Expr) -> Optional[int]:
        targets = self._targets_of(addr)
        for loc in targets:
            cid = self._classes.get(loc)
            if cid is not None:
                return cid
        return None

    def class_of_loc(self, loc: Loc) -> int:
        cid = self._classes.get(loc)
        if cid is not None:
            return cid
        return -abs(hash(loc)) - 1  # singleton class

    def locations(self, class_id: Optional[int]) -> Set[Loc]:
        if class_id is None:
            return set()
        return {loc for loc, cid in self._classes.items()
                if cid == class_id}

    def may_alias(self, addr_a: Expr, addr_b: Expr) -> bool:
        return bool(self._targets_of(addr_a) & self._targets_of(addr_b))

    def escaped_class_ids(self) -> Set[int]:
        """Class ids a callee could possibly touch: classes containing a
        global, a heap object, or a parameter pointee; closed under
        contents cells."""
        seeds: Set[Loc] = set()
        for sym in self.module.globals:
            seeds.add(sym)
        for loc in self._classes:
            if isinstance(loc, HeapLoc):
                seeds.add(loc)
        for fn in self.module.functions.values():
            for param in fn.params:
                seeds |= self._pts[param]
        reachable: Set[Loc] = set()
        work = list(seeds)
        while work:
            loc = work.pop()
            if loc in reachable:
                continue
            reachable.add(loc)
            work.extend(self._pts[self._cell(loc)])
        return {self.class_of_loc(loc) for loc in reachable}

    def precision_report(self) -> Dict[str, float]:
        """Summary statistics for the precision ablation."""
        sizes = defaultdict(int)
        for loc, cid in self._classes.items():
            sizes[cid] += 1
        values = list(sizes.values()) or [0]
        return {
            "classes": len(values),
            "max_class_size": max(values),
            "avg_class_size": sum(values) / max(1, len(values)),
        }
