"""Steensgaard's equivalence-class (unification-based) points-to analysis.

This is the compile-time alias analysis the paper's framework starts from
(§3.2, citing Steensgaard [28]): flow- and context-insensitive, almost
linear time, producing *alias equivalence classes* — each indirect memory
reference is resolved to one class of abstract locations it may access.

The implementation is the classic union-find formulation: every abstract
location (variable or allocation site) owns a node; every node lazily owns a
*contents* node describing where values stored in it may point; assignments
unify contents.  Joining two nodes recursively joins their contents, keeping
the invariant that each node has at most one pointee class.

Interprocedural flow (arguments→parameters, returns→call results) is handled
by re-processing all statements until no more unions occur; unification is
monotone, so this terminates quickly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir import (AddrOf, Assign, Bin, CallStmt, Const, Expr, Function, Load,
                  Module, PrintStmt, Return, Store, Symbol, Un, VarRead)
from .locs import HeapLoc, Loc


class _Node:
    """A points-to equivalence class (union-find element)."""

    __slots__ = ("parent", "rank", "contents", "locs")

    def __init__(self) -> None:
        self.parent: "_Node" = self
        self.rank = 0
        self.contents: Optional["_Node"] = None
        self.locs: Set[Loc] = set()


class Steensgaard:
    """Module-level points-to analysis.

    Public API:

    * :meth:`class_of_address` — the location class an address expression
      may point at (``None`` for provably non-pointer values);
    * :meth:`locations` — the LOCs in a class;
    * :meth:`may_alias_classes` — whether two classes are the same;
    * :meth:`class_id` — a stable integer id for a class (for dict keys).
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self._nodes: Dict[Loc, _Node] = {}
        self._changed = False
        self._run()

    # ---- union-find ------------------------------------------------------
    def _find(self, node: _Node) -> _Node:
        while node.parent is not node:
            node.parent = node.parent.parent
            node = node.parent
        return node

    def _union(self, a: _Node, b: _Node) -> _Node:
        a, b = self._find(a), self._find(b)
        if a is b:
            return a
        self._changed = True
        if a.rank < b.rank:
            a, b = b, a
        b.parent = a
        if a.rank == b.rank:
            a.rank += 1
        a.locs |= b.locs
        b.locs = set()
        # Steensgaard join: classes have at most one pointee class.
        if a.contents is None:
            a.contents = b.contents
        elif b.contents is not None:
            a.contents = self._join(a.contents, b.contents)
        b.contents = None
        return a

    def _join(self, a: _Node, b: _Node) -> _Node:
        if self._find(a) is self._find(b):
            return self._find(a)
        return self._union(a, b)

    def _node_for(self, loc: Loc) -> _Node:
        node = self._nodes.get(loc)
        if node is None:
            node = _Node()
            node.locs.add(loc)
            self._nodes[loc] = node
        return self._find(node)

    def _contents_of(self, node: _Node) -> _Node:
        node = self._find(node)
        if node.contents is None:
            node.contents = _Node()
        return self._find(node.contents)

    # ---- constraint generation ------------------------------------------
    def _pt(self, expr: Expr) -> Optional[_Node]:
        """The class the *value* of ``expr`` may point to (None: no
        pointer)."""
        if isinstance(expr, Const):
            return None
        if isinstance(expr, VarRead):
            node = self._node_for(expr.sym)
            if expr.sym.is_array:
                return node  # array decay: the value IS the array's address
            return self._contents_of(node)
        if isinstance(expr, AddrOf):
            return self._node_for(expr.sym)
        if isinstance(expr, Load):
            addr = self._pt(expr.addr)
            if addr is None:
                return None
            return self._contents_of(addr)
        if isinstance(expr, Bin):
            left, right = self._pt(expr.left), self._pt(expr.right)
            if left is None:
                return right
            if right is None:
                return left
            return self._join(left, right)
        if isinstance(expr, Un):
            return self._pt(expr.operand)
        raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _flow(self, dst: _Node, value: Expr) -> None:
        """Record that values of ``value`` flow into cells of class
        ``dst``."""
        src = self._pt(value)
        if src is not None:
            self._join(self._contents_of(dst), src)

    def _process_function(self, fn: Function) -> None:
        for _, stmt in fn.statements():
            if isinstance(stmt, Assign):
                self._flow(self._node_for(stmt.sym), stmt.value)
            elif isinstance(stmt, Store):
                target = self._pt(stmt.addr)
                if target is not None:
                    self._flow(target, stmt.value)
            elif isinstance(stmt, CallStmt):
                self._process_call(stmt)
            elif isinstance(stmt, PrintStmt):
                for arg in stmt.args:
                    self._pt(arg)
        for _, term in fn.terminators():
            for expr in term.exprs():
                self._pt(expr)

    def _process_call(self, stmt: CallStmt) -> None:
        if stmt.is_alloc:
            assert stmt.site_id is not None and stmt.dst is not None
            heap = self._node_for(HeapLoc(stmt.site_id))
            self._join(self._contents_of(self._node_for(stmt.dst)), heap)
            return
        callee = self.module.functions.get(stmt.callee)
        if callee is None:  # pragma: no cover - verifier rejects earlier
            return
        for param, arg in zip(callee.params, stmt.args):
            self._flow(self._node_for(param), arg)
        if stmt.dst is not None:
            dst = self._node_for(stmt.dst)
            for _, term in callee.terminators():
                if isinstance(term, Return) and term.value is not None:
                    self._flow(dst, term.value)

    def _run(self) -> None:
        # Iterate to a fixpoint: return-value and parameter flow may expose
        # new unions on a second pass.  Unions are bounded by the number of
        # nodes, so this loop terminates.
        while True:
            self._changed = False
            for fn in self.module.functions.values():
                self._process_function(fn)
            if not self._changed:
                return

    # ---- public queries ----------------------------------------------------
    def class_of_address(self, addr: Expr) -> Optional[int]:
        """The class id accessed through address expression ``addr``."""
        node = self._pt(addr)
        return None if node is None else id(self._find(node))

    def class_of_loc(self, loc: Loc) -> int:
        """The class id containing LOC ``loc``."""
        return id(self._node_for(loc))

    def locations(self, class_id: Optional[int]) -> Set[Loc]:
        """All LOCs in the class (empty for ``None``)."""
        if class_id is None:
            return set()
        for node in self._nodes.values():
            root = self._find(node)
            if id(root) == class_id:
                return set(root.locs)
        return set()

    def escaped_class_ids(self) -> Set[int]:
        """Class ids reachable by a callee: globals, heap objects and
        parameter pointees, closed under points-to contents edges."""
        seeds = []
        for sym in self.module.globals:
            seeds.append(self._node_for(sym))
        for loc in list(self._nodes):
            if isinstance(loc, HeapLoc):
                seeds.append(self._node_for(loc))
        for fn in self.module.functions.values():
            for param in fn.params:
                seeds.append(self._contents_of(self._node_for(param)))
        escaped: Set[int] = set()
        work = [self._find(n) for n in seeds]
        while work:
            node = self._find(work.pop())
            if id(node) in escaped:
                continue
            escaped.add(id(node))
            if node.contents is not None:
                work.append(self._find(node.contents))
        return escaped

    def may_alias(self, addr_a: Expr, addr_b: Expr) -> bool:
        """May the cells addressed by the two expressions overlap?"""
        a = self.class_of_address(addr_a)
        b = self.class_of_address(addr_b)
        if a is None or b is None:
            return False
        return a == b
