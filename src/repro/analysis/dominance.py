"""Dominator tree, dominance frontiers and iterated dominance frontiers.

Uses the Cooper–Harvey–Kennedy "simple, fast" iterative algorithm, which is
quadratic in the worst case but linear-ish on real CFGs and far easier to
audit than Lengauer–Tarjan.  Dominance queries (``dominates``) use DFS
entry/exit intervals over the dominator tree, so they are O(1).

Every SSA and SSAPRE phase in this reproduction consumes this module:
φ insertion places φs on DF⁺, renaming walks the dominator tree preorder,
and SSAPRE's Φ-insertion (paper Appendix A) uses DF⁺ of each expression
occurrence.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..ir import BasicBlock, Function


class DominatorTree:
    """Immutable dominator information for one function."""

    def __init__(self, fn: Function) -> None:
        fn.compute_cfg()
        self.fn = fn
        self.order: List[BasicBlock] = fn.rpo()
        self._rpo_index: Dict[BasicBlock, int] = {
            b: i for i, b in enumerate(self.order)
        }
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute_idoms()
        self.children: Dict[BasicBlock, List[BasicBlock]] = {
            b: [] for b in self.order
        }
        for block, parent in self.idom.items():
            if parent is not None:
                self.children[parent].append(block)
        # Deterministic child order (RPO) keeps renaming reproducible.
        for kids in self.children.values():
            kids.sort(key=self._rpo_index.__getitem__)
        self._compute_intervals()
        self.frontier: Dict[BasicBlock, Set[BasicBlock]] = (
            self._compute_frontiers()
        )

    # ---- idoms (Cooper–Harvey–Kennedy) ---------------------------------
    def _compute_idoms(self) -> None:
        entry = self.fn.entry
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in self.order:
                if block is entry:
                    continue
                preds = [p for p in block.preds if p in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = self._intersect(new_idom, pred, idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        idom[entry] = None
        self.idom = idom

    def _intersect(
        self,
        a: BasicBlock,
        b: BasicBlock,
        idom: Dict[BasicBlock, Optional[BasicBlock]],
    ) -> BasicBlock:
        index = self._rpo_index
        while a is not b:
            while index[a] > index[b]:
                parent = idom[a]
                assert parent is not None
                a = parent
            while index[b] > index[a]:
                parent = idom[b]
                assert parent is not None
                b = parent
        return a

    # ---- O(1) dominance queries ----------------------------------------
    def _compute_intervals(self) -> None:
        self._enter: Dict[BasicBlock, int] = {}
        self._exit: Dict[BasicBlock, int] = {}
        clock = 0
        stack: List[tuple] = [(self.fn.entry, False)]
        while stack:
            block, done = stack.pop()
            if done:
                self._exit[block] = clock
                clock += 1
                continue
            self._enter[block] = clock
            clock += 1
            stack.append((block, True))
            for child in reversed(self.children[block]):
                stack.append((child, False))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True iff ``a`` dominates ``b`` (reflexively)."""
        return (
            self._enter[a] <= self._enter[b]
            and self._exit[b] <= self._exit[a]
        )

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    # ---- dominance frontiers ---------------------------------------------
    def _compute_frontiers(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        frontier: Dict[BasicBlock, Set[BasicBlock]] = {
            b: set() for b in self.order
        }
        for block in self.order:
            if len(block.preds) < 2:
                continue
            target = self.idom[block]
            for pred in block.preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not target:
                    frontier[runner].add(block)
                    runner = self.idom[runner]
        return frontier

    def iterated_frontier(
        self, blocks: Iterable[BasicBlock]
    ) -> Set[BasicBlock]:
        """DF⁺ of a set of blocks (the classic worklist closure)."""
        result: Set[BasicBlock] = set()
        worklist = list(blocks)
        while worklist:
            block = worklist.pop()
            for f in self.frontier.get(block, ()):
                if f not in result:
                    result.add(f)
                    worklist.append(f)
        return result

    def preorder(self) -> List[BasicBlock]:
        """Dominator-tree preorder (the SSA renaming walk order)."""
        out: List[BasicBlock] = []
        stack = [self.fn.entry]
        while stack:
            block = stack.pop()
            out.append(block)
            for child in reversed(self.children[block]):
                stack.append(child)
        return out
