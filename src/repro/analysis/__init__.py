"""Static analyses: dominance, loops, points-to and alias classes."""

from .aliasclass import AliasClassifier, FunctionAliasInfo, SiteAliases
from .dominance import DominatorTree
from .locs import HeapLoc, Loc, loc_name
from .modref import ModRefSummary, compute_modref
from .loops import Loop, LoopForest
from .steensgaard import Steensgaard
from .tbaa import tbaa_compatible, type_family

__all__ = [
    "AliasClassifier", "DominatorTree", "FunctionAliasInfo", "HeapLoc",
    "Loc", "Loop", "LoopForest", "SiteAliases", "Steensgaard",
    "ModRefSummary", "compute_modref", "loc_name",
    "tbaa_compatible", "type_family",
]
