"""Static analyses: dominance, loops, points-to and alias classes."""

from .aliasclass import AliasClassifier, FunctionAliasInfo, SiteAliases
from .dominance import DominatorTree
from .locs import HeapLoc, Loc, loc_name
from .modref import ModRefSummary, compute_modref
from .loops import Loop, LoopForest
from .prob_alias import (ProbAliasAnalysis, ProbAliasInfo, SiteProb,
                         block_frequencies, branch_probabilities,
                         compute_prob_alias, solve_linear,
                         solve_linear_multi)
from .steensgaard import Steensgaard
from .tbaa import tbaa_compatible, type_family

__all__ = [
    "AliasClassifier", "DominatorTree", "FunctionAliasInfo", "HeapLoc",
    "Loc", "Loop", "LoopForest", "ProbAliasAnalysis", "ProbAliasInfo",
    "SiteAliases", "SiteProb", "Steensgaard",
    "ModRefSummary", "block_frequencies", "branch_probabilities",
    "compute_modref", "compute_prob_alias", "loc_name", "solve_linear",
    "solve_linear_multi", "tbaa_compatible", "type_family",
]
