"""Type-based alias analysis (TBAA).

The paper's baseline is "O3 with type-based alias analysis" (Diwan et
al. [9]): two memory accesses whose declared types are incompatible cannot
alias, regardless of points-to results.  With the cell-addressed IR there
are three access-type families: integers, floats and pointers (all pointer
types share a family, because ``alloc`` results are freely converted — the
safe choice C compilers make for ``char*``-like data).
"""

from __future__ import annotations

from ..ir import Type


def type_family(ty: Type) -> str:
    """TBAA family of a declared access type: 'int', 'float' or 'ptr'."""
    return ty.kind


def tbaa_compatible(a: Type, b: Type) -> bool:
    """May an access of declared type ``a`` alias one of declared type
    ``b``?"""
    return type_family(a) == type_family(b)
