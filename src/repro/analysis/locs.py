"""Abstract memory locations (LOCs).

Following the paper (§3.2.1, after Ghiya et al. [13]), a LOC is a storage
location: a global variable, a local variable/parameter, or a heap object.
Heap objects have no program name, so they are named by their allocation
site (the ``alloc`` call's ``site_id``) — the paper's per-callsite naming
scheme.

LOCs are the common currency between static alias analysis (points-to sets),
the alias profiler (profiled LOC sets per reference), and the speculation
flag assignment of §3.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..ir import Symbol


@dataclass(frozen=True)
class HeapLoc:
    """A heap object named by its allocation site."""

    site_id: int

    def __str__(self) -> str:
        return f"heap@{self.site_id}"


#: A LOC: a named variable or an allocation-site-named heap object.
Loc = Union[Symbol, HeapLoc]


def loc_name(loc: Loc) -> str:
    """Human-readable LOC name (for dumps and tests)."""
    if isinstance(loc, HeapLoc):
        return str(loc)
    return loc.name
