"""Lowering out of SSA back to the base IR (for code generation).

SSAPRE never moves or duplicates definitions of *real* program variables —
it only inserts assignments to fresh expression temporaries, rewrites
expression occurrences to temporary uses, and annotates save/check
assignments.  Consequently leaving SSA is simple and exact:

* real-variable versions collapse back to their symbol; their φs vanish;
* virtual variables have no runtime content; their φs and χ/µ operands
  vanish;
* each SSAPRE temporary forms a single-variable web: its φs vanish too,
  because the paper's Finalize/CodeMotion already materialized every
  incoming value as an explicit ``t = …`` assignment on the corresponding
  path (insertions at Φ operands), so the value simply flows through the
  shared symbol.

The result is a fresh :class:`~repro.ir.Function`; :func:`lower_module`
replaces every function of a module and re-finalizes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir import (Assign, BasicBlock, Bin, CallStmt, CondBr, Const, Expr,
                  Function, Jump, Load, Module, PrintStmt, Return, Store,
                  Un, VarRead, AddrOf)
from .values import (SAddrOf, SAssign, SBin, SCall, SCondBr, SConst, SExpr,
                     SJump, SLoad, SPhi, SPrint, SReturn, SSABlock,
                     SSAFunction, SSAVar, SStore, SUn, SVarUse)


def lower_expr(expr: SExpr) -> Expr:
    """Lower one SSA expression occurrence to a base IR expression."""
    if isinstance(expr, SConst):
        return Const(expr.value, expr.ty)
    if isinstance(expr, SVarUse):
        return VarRead(expr.symbol)
    if isinstance(expr, SAddrOf):
        if expr.symbol.is_array:
            return VarRead(expr.symbol)  # arrays read as their base address
        return AddrOf(expr.symbol)
    if isinstance(expr, SLoad):
        return Load(lower_expr(expr.addr), expr.value_ty)
    if isinstance(expr, SBin):
        return Bin(expr.op, lower_expr(expr.left), lower_expr(expr.right))
    if isinstance(expr, SUn):
        return Un(expr.op, lower_expr(expr.operand))
    raise TypeError(f"unknown SSA expression {expr!r}")  # pragma: no cover


def lower_function(ssa: SSAFunction) -> Function:
    """Lower one SSA function to a fresh base-IR function."""
    old = ssa.fn
    fn = Function(old.name, old.params, old.ret_ty)
    fn.locals = list(old.locals)
    block_map: Dict[SSABlock, BasicBlock] = {ssa.entry: fn.entry}
    for block in ssa.blocks:
        if block is ssa.entry:
            continue
        block_map[block] = fn.new_block(block.name)

    for block in ssa.blocks:
        out = block_map[block]
        for stmt in block.stmts:
            if isinstance(stmt, SAssign):
                sym = (stmt.lhs.symbol if isinstance(stmt.lhs, SSAVar)
                       else stmt.lhs)
                out.append(Assign(sym, lower_expr(stmt.rhs),
                                  spec_kind=stmt.spec_kind))
            elif isinstance(stmt, SStore):
                out.append(Store(lower_expr(stmt.addr),
                                 lower_expr(stmt.value), stmt.value_ty))
            elif isinstance(stmt, SCall):
                dst = (stmt.dst.symbol if isinstance(stmt.dst, SSAVar)
                       else stmt.dst)
                out.append(CallStmt(dst, stmt.callee,
                                    [lower_expr(a) for a in stmt.args]))
            elif isinstance(stmt, SPrint):
                out.append(PrintStmt([lower_expr(a) for a in stmt.args]))
            else:  # pragma: no cover
                raise TypeError(f"unknown SSA statement {stmt!r}")
        term = block.term
        if isinstance(term, SJump):
            out.terminator = Jump(block_map[term.target])
        elif isinstance(term, SCondBr):
            out.terminator = CondBr(lower_expr(term.cond),
                                    block_map[term.then_block],
                                    block_map[term.else_block])
        elif isinstance(term, SReturn):
            value = (lower_expr(term.value)
                     if term.value is not None else None)
            out.terminator = Return(value)
        else:  # pragma: no cover
            raise TypeError(f"unknown terminator {term!r}")
    fn.compute_cfg()
    return fn


def lower_module(module: Module, ssa_functions: List[SSAFunction]) -> Module:
    """Replace every function of ``module`` with its lowered SSA version
    and re-finalize (call-site renumbering, CFG recompute)."""
    out = Module()
    for sym in module.globals:
        out.add_global(sym)
    lowered = {ssa.fn.name: lower_function(ssa) for ssa in ssa_functions}
    for name, fn in module.functions.items():
        out.add_function(lowered.get(name, fn))
    return out.finalize()
