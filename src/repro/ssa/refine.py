"""Flow-sensitive pointer refinement of µ/χ lists (paper §3.2, step 5).

The paper's Figure 4 ends with "perform a flow sensitive pointer analysis
using factored use-def chain to refine the µs and χs lists".  The
equivalence-class (Steensgaard) analysis that seeds the lists is flow- and
direction-insensitive: ``p = &a; … ; *p = 1`` still lists every member of
p's merged class as a may-def.  This pass runs a simple intraprocedural
flow-sensitive points-to dataflow over the base CFG and *shrinks* each
indirect reference's real-variable alias set to the locations its address
can actually hold at that point.

It runs *before* renaming (list surgery is trivial then), as a filter the
SSA builder consults while creating µ/χ lists; the refined (smaller) lists
benefit every configuration, including the non-speculative base — matching
ORC, whose baseline already had flow-sensitive refinement.

Lattice per pointer variable: ``None`` = unknown (⊤), else a frozenset of
LOCs (variables / allocation sites) the pointer may target.  Joins are
set unions; unknown absorbs.  Calls invalidate pointers that escape.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from ..analysis.locs import HeapLoc, Loc
from ..ir import (AddrOf, Assign, BasicBlock, Bin, CallStmt, Const, Expr,
                  Function, Load, Module, StorageKind, Store, Symbol, Un,
                  VarRead)

#: points-to value: None = unknown, frozenset = known target set
PT = Optional[FrozenSet[Loc]]

State = Dict[Symbol, PT]


def _join(a: PT, b: PT) -> PT:
    if a is None or b is None:
        return None
    return a | b


def _join_states(a: State, b: State) -> State:
    out: State = {}
    for sym in set(a) | set(b):
        out[sym] = _join(a.get(sym), b.get(sym))
    return out


class FlowSensitivePointsTo:
    """Intraprocedural flow-sensitive points-to facts for one function.

    Query :meth:`targets_of_store` / :meth:`targets_of_load` to get the
    refined LOC set of a reference site (``None`` = no refinement).
    """

    def __init__(self, fn: Function, max_iterations: int = 50) -> None:
        self.fn = fn
        fn.compute_cfg()
        self._in: Dict[BasicBlock, State] = {}
        self._site_targets: Dict[int, PT] = {}
        self._tracked = self._tracked_pointers()
        self._solve(max_iterations)

    def _tracked_pointers(self):
        """Track non-address-taken pointer-typed scalars only — their
        values flow purely through direct assignments, so the dataflow is
        exact up to joins."""
        tracked = set()
        for sym in self.fn.params + self.fn.locals:
            if sym.ty.is_pointer and not sym.address_taken \
                    and not sym.is_array:
                tracked.add(sym)
        return tracked

    def _is_tracked(self, sym: Symbol) -> bool:
        # compiler temporaries (e.g. hoisted alloc results) are also
        # register-resident scalars; track them on the fly
        return sym in self._tracked or (
            sym.kind is StorageKind.TEMP and not sym.address_taken
        )

    # ---- transfer functions ------------------------------------------
    def _eval(self, state: State, expr: Expr) -> PT:
        if isinstance(expr, Const):
            return frozenset()
        if isinstance(expr, AddrOf):
            return frozenset([expr.sym])
        if isinstance(expr, VarRead):
            if expr.sym.is_array:
                return frozenset([expr.sym])
            if self._is_tracked(expr.sym):
                # temporaries missing from the state are unknown (they
                # are always assigned before use, but a conservative
                # default is safest)
                return state.get(expr.sym, None)
            return None
        if isinstance(expr, Bin) and expr.op in ("+", "-"):
            left = self._eval(state, expr.left)
            right = self._eval(state, expr.right)
            # pointer arithmetic stays within the object(s)
            if expr.left.ty.is_pointer and not expr.right.ty.is_pointer:
                return left
            if expr.right.ty.is_pointer and not expr.left.ty.is_pointer:
                return right
            return _join(left, right)
        if isinstance(expr, Un):
            return self._eval(state, expr.operand)
        return None  # loads, other ops: unknown

    def _transfer(self, state: State, stmt, record: bool) -> State:
        if record:
            # record address target sets at reference sites
            for top in stmt.exprs():
                for node in top.walk():
                    if isinstance(node, Load):
                        self._site_targets[id(node)] = self._merge_site(
                            id(node), self._eval(state, node.addr)
                        )
            if isinstance(stmt, Store):
                self._site_targets[id(stmt)] = self._merge_site(
                    id(stmt), self._eval(state, stmt.addr)
                )
        if isinstance(stmt, Assign):
            if self._is_tracked(stmt.sym):
                state = dict(state)
                state[stmt.sym] = self._eval(state, stmt.value)
        elif isinstance(stmt, CallStmt):
            state = dict(state)
            if stmt.is_alloc and stmt.dst is not None \
                    and self._is_tracked(stmt.dst):
                assert stmt.site_id is not None
                state[stmt.dst] = frozenset([HeapLoc(stmt.site_id)])
            elif stmt.dst is not None and self._is_tracked(stmt.dst):
                state[stmt.dst] = None  # unknown call result
        return state

    def _merge_site(self, key: int, value: PT) -> PT:
        if key in self._site_targets:
            return _join(self._site_targets[key], value)
        return value

    # ---- fixpoint ------------------------------------------------------
    def _solve(self, max_iterations: int) -> None:
        order = self.fn.rpo()
        # Block in-states: absent = unreached (⊥).  The entry state fully
        # initializes every tracked pointer: parameters are unknown (⊤),
        # locals start as null (the language zero-initializes scalars).
        entry_state: State = {}
        for sym in self._tracked:
            entry_state[sym] = (None if sym.kind is StorageKind.PARAM
                                else frozenset())
        self._in = {self.fn.entry: entry_state}
        for _ in range(max_iterations):
            changed = False
            for block in order:
                if block not in self._in:
                    continue
                state = dict(self._in[block])
                for stmt in block.stmts:
                    state = self._transfer(state, stmt, record=False)
                for succ in block.successors():
                    if succ not in self._in:
                        self._in[succ] = dict(state)
                        changed = True
                        continue
                    joined = _join_states(self._in[succ], state)
                    if joined != self._in[succ]:
                        self._in[succ] = joined
                        changed = True
            if not changed:
                break
        # final recording pass with the converged states
        for block in order:
            state = dict(self._in.get(block, {}))
            for stmt in block.stmts:
                state = self._transfer(state, stmt, record=True)

    # ---- queries ---------------------------------------------------------
    def targets_of_store(self, stmt: Store) -> PT:
        return self._site_targets.get(id(stmt))

    def targets_of_load(self, expr: Load) -> PT:
        return self._site_targets.get(id(expr))

    def may_target(self, site_key: int, sym: Symbol) -> bool:
        """May the reference at ``site_key`` touch variable ``sym``?
        True when unrefined (unknown)."""
        targets = self._site_targets.get(site_key)
        if targets is None:
            return True
        return sym in targets


def refine_module(module: Module) -> Dict[str, FlowSensitivePointsTo]:
    """Run the refinement for every function of a module."""
    return {name: FlowSensitivePointsTo(fn)
            for name, fn in module.functions.items()}
