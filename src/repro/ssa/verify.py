"""SSA invariant checker.

Checks the invariants that every SSAPRE phase relies on (and that the
property-based tests exercise on random programs):

* every :class:`SSAVar` has exactly one def site;
* every use is dominated by its def (φ operands checked against the
  corresponding predecessor block);
* φ argument counts match predecessor counts;
* µ/χ operands are fully renamed.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from .values import (Chi, Mu, SAssign, SCall, SExpr, SLoad, SPhi, SSABlock,
                     SSAFunction, SSAVar, SStmt, SVarUse)


class SSAVerificationError(Exception):
    """Raised when an SSA invariant is violated."""


def verify_ssa(ssa: SSAFunction) -> None:
    defs: Dict[SSAVar, object] = {}

    def record_def(var: Optional[SSAVar], site: object) -> None:
        if var is None:
            raise SSAVerificationError(f"unrenamed def at {site!r}")
        if var in defs:
            raise SSAVerificationError(
                f"{var.name} defined twice ({defs[var]!r} and {site!r})"
            )
        defs[var] = site

    for block in ssa.blocks:
        for phi in block.phis:
            record_def(phi.lhs, phi)
            if len(phi.args) != len(block.preds):
                raise SSAVerificationError(
                    f"phi in {block.name}: {len(phi.args)} args for "
                    f"{len(block.preds)} preds"
                )
        for stmt in block.stmts:
            if isinstance(stmt, SAssign) and isinstance(stmt.lhs, SSAVar):
                record_def(stmt.lhs, stmt)
            if isinstance(stmt, SCall) and isinstance(stmt.dst, SSAVar):
                record_def(stmt.dst, stmt)
            for chi in stmt.chis:
                record_def(chi.lhs, chi)

    def check_use(var: Optional[SSAVar], block: SSABlock,
                  where: str) -> None:
        if var is None:
            raise SSAVerificationError(f"unrenamed use in {where}")
        def_block = var.def_block
        if def_block is None:
            raise SSAVerificationError(f"{var.name} has no def block")
        if not ssa.dominates(def_block, block):
            raise SSAVerificationError(
                f"use of {var.name} in {block.name} not dominated by its "
                f"def in {def_block.name} ({where})"
            )

    def check_expr(expr: SExpr, block: SSABlock, where: str) -> None:
        for node in expr.walk():
            if isinstance(node, SVarUse):
                check_use(node.var, block, where)
            elif isinstance(node, SLoad):
                for mu in node.mus:
                    check_use(mu.var, block, f"{where} (mu)")

    for block in ssa.blocks:
        for phi in block.phis:
            for pred, arg in zip(block.preds, phi.args):
                if arg is None:
                    raise SSAVerificationError(
                        f"phi {phi!r} in {block.name}: missing arg"
                    )
                check_use(arg, pred, f"phi in {block.name}")
        for stmt in block.stmts:
            for expr in stmt.exprs():
                check_expr(expr, block, repr(stmt))
            for mu in getattr(stmt, "mus", ()):
                check_use(mu.var, block, f"{stmt!r} (call mu)")
            for chi in stmt.chis:
                check_use(chi.rhs, block, f"{stmt!r} (chi rhs)")
        if block.term is not None:
            for expr in block.term.exprs():
                check_expr(expr, block, repr(block.term))
