"""Textual dump of (speculative) HSSA — mirrors the paper's notation.

χ operands print as ``a2 <- chi(a1)`` and flagged ones as
``a2 <- chis(a1)`` (the paper's χs); µ lists print as ``mu(a3), mus(b2)``.
Used by the examples and the paper-example fidelity tests.
"""

from __future__ import annotations

from typing import List

from .values import (SAssign, SCall, SLoad, SPhi, SPrint, SSAFunction, SStmt,
                     SStore)


def _mus_of_stmt(stmt: SStmt) -> List[str]:
    parts = []
    for expr in stmt.exprs():
        for node in expr.walk():
            if isinstance(node, SLoad):
                parts.extend(repr(mu) for mu in node.mus)
    parts.extend(repr(mu) for mu in getattr(stmt, "mus", ()))
    return parts


def format_ssa(ssa: SSAFunction) -> str:
    lines: List[str] = [f"function {ssa.fn.name} (SSA):"]
    for block in ssa.blocks:
        lines.append(f" {block.name}:")
        for phi in block.phis:
            lines.append(f"    {phi!r}")
        for stmt in block.stmts:
            mus = _mus_of_stmt(stmt)
            if mus:
                lines.append(f"    [{', '.join(mus)}]")
            lines.append(f"    {stmt!r}")
            for chi in stmt.chis:
                lines.append(f"      {chi!r}")
        if block.term is not None:
            mus = _mus_of_stmt(block.term)  # type: ignore[arg-type]
            if mus:
                lines.append(f"    [{', '.join(mus)}]")
            lines.append(f"    {block.term!r}")
    return "\n".join(lines)
