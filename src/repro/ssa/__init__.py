"""The paper's speculative SSA form: HSSA with likeliness-flagged µ/χ."""

from .construct import SSABuilder, build_ssa, is_memory_resident
from .out_of_ssa import lower_expr, lower_function, lower_module
from .printer import format_ssa
from .refine import FlowSensitivePointsTo, refine_module
from .spec import (DEFAULT_STATIC_THRESHOLD, AggressiveSource, Flagger,
                   HeuristicSource, NoSpecSource, ProfileSource, SpecMode,
                   SpecSource, StaticSource, aggressive_flagger, flag_snapshot,
                   flagger_for, heuristic_flagger, iter_loads,
                   make_profile_flagger, make_static_flagger, no_spec_flagger,
                   source_for)
from .values import (Chi, Mu, SAddrOf, SAssign, SBin, SCall, SCondBr, SConst,
                     SExpr, SJump, SLoad, SPhi, SPrint, SReturn, SSABlock,
                     SSAFunction, SSAVar, SStmt, SStore, STerm, SUn, SVarUse,
                     ssa_counts)
from .verify import SSAVerificationError, verify_ssa

__all__ = [
    "AggressiveSource", "Chi", "DEFAULT_STATIC_THRESHOLD", "Flagger",
    "HeuristicSource", "Mu", "NoSpecSource", "ProfileSource", "SAddrOf",
    "SAssign", "SBin", "SCall",
    "SCondBr", "SConst", "SExpr", "SJump", "SLoad", "SPhi", "SPrint",
    "SReturn", "SSABlock", "SSABuilder", "SSAFunction", "SSAVar",
    "SSAVerificationError", "SStmt", "SStore", "STerm", "SUn", "SVarUse",
    "FlowSensitivePointsTo", "SpecMode", "SpecSource", "StaticSource",
    "aggressive_flagger",
    "build_ssa", "flag_snapshot", "flagger_for", "refine_module",
    "format_ssa", "heuristic_flagger", "is_memory_resident", "iter_loads",
    "lower_expr", "lower_function", "lower_module", "make_profile_flagger",
    "make_static_flagger", "no_spec_flagger", "source_for", "ssa_counts",
    "verify_ssa",
]
