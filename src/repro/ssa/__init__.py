"""The paper's speculative SSA form: HSSA with likeliness-flagged µ/χ."""

from .construct import SSABuilder, build_ssa, is_memory_resident
from .out_of_ssa import lower_expr, lower_function, lower_module
from .printer import format_ssa
from .refine import FlowSensitivePointsTo, refine_module
from .spec import (Flagger, SpecMode, aggressive_flagger, flagger_for,
                   heuristic_flagger, iter_loads, make_profile_flagger,
                   no_spec_flagger)
from .values import (Chi, Mu, SAddrOf, SAssign, SBin, SCall, SCondBr, SConst,
                     SExpr, SJump, SLoad, SPhi, SPrint, SReturn, SSABlock,
                     SSAFunction, SSAVar, SStmt, SStore, STerm, SUn, SVarUse,
                     ssa_counts)
from .verify import SSAVerificationError, verify_ssa

__all__ = [
    "Chi", "Flagger", "Mu", "SAddrOf", "SAssign", "SBin", "SCall",
    "SCondBr", "SConst", "SExpr", "SJump", "SLoad", "SPhi", "SPrint",
    "SReturn", "SSABlock", "SSABuilder", "SSAFunction", "SSAVar",
    "SSAVerificationError", "SStmt", "SStore", "STerm", "SUn", "SVarUse",
    "FlowSensitivePointsTo", "SpecMode", "aggressive_flagger",
    "build_ssa", "flagger_for", "refine_module",
    "format_ssa", "heuristic_flagger", "is_memory_resident", "iter_loads",
    "lower_expr", "lower_function", "lower_module", "make_profile_flagger",
    "no_spec_flagger", "ssa_counts", "verify_ssa",
]
