"""HSSA construction: µ/χ insertion, φ placement, renaming.

The pipeline is the paper's Figure 4:

1. equivalence-class alias analysis + virtual variable assignment
   (:mod:`repro.analysis.aliasclass`);
2. µ and χ list creation for indirect references, aliased direct
   assignments and call statements (this module);
3. φ insertion at iterated dominance frontiers and renaming — the standard
   algorithm of Cytron et al. [7], applied uniformly to real *and* virtual
   variables (this module);
4. speculation-flag assignment from a profile or heuristic rules
   (:mod:`repro.ssa.spec`);
5. optional flow-sensitive refinement (:mod:`repro.ssa.refine`).

All µ/χ operands start with ``likely=True`` (classical, non-speculative
HSSA); step 4 downgrades the ones that data speculation may ignore.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.aliasclass import AliasClassifier, FunctionAliasInfo
from ..analysis.tbaa import tbaa_compatible
from ..ir import (AddrOf, Assign, BasicBlock, Bin, CallStmt, CondBr, Const,
                  Expr, Function, Jump, Load, Module, PrintStmt, Return,
                  StorageKind, Store, Symbol, Un, VarRead)
from .values import (Chi, Mu, SAddrOf, SAssign, SBin, SCall, SCondBr, SConst,
                     SExpr, SJump, SLoad, SPhi, SPrint, SReturn, SSABlock,
                     SSAFunction, SSAVar, SStmt, SStore, SUn, SVarUse)


def is_memory_resident(sym: Symbol) -> bool:
    """Symbols whose direct reads/writes are memory accesses (loads/stores
    in the generated code): globals and address-taken locals."""
    return (sym.kind is StorageKind.GLOBAL or sym.address_taken) \
        and not sym.is_virtual and not sym.is_array


class SSABuilder:
    """Builds one function's speculative-ready HSSA form."""

    def __init__(self, module: Module, fn: Function,
                 classifier: AliasClassifier, refinement=None,
                 info: Optional[FunctionAliasInfo] = None,
                 dom=None) -> None:
        self.module = module
        self.fn = fn
        self.classifier = classifier
        #: optional flow-sensitive points-to facts (repro.ssa.refine)
        #: used to shrink µ/χ lists — the paper's Figure 4 last step
        self.refinement = refinement
        self.info: FunctionAliasInfo = (
            info if info is not None else classifier.analyze_function(fn))
        self.ssa = SSAFunction(fn, dom=dom)
        self.ssa.info = self.info  # type: ignore[attr-defined]
        # Map: real symbol -> virtual variables whose class contains it
        # (used to χ virtual vars at direct assignments of aliased scalars).
        self._affected_vvars: Dict[Symbol, List[Symbol]] = (
            self._compute_affected_vvars()
        )
        self._stacks: Dict[Symbol, List[SSAVar]] = defaultdict(list)

    def _compute_affected_vvars(self) -> Dict[Symbol, List[Symbol]]:
        st = self.classifier.steensgaard
        result: Dict[Symbol, List[Symbol]] = defaultdict(list)
        symbols = set(self.module.globals) | set(self.fn.params)
        symbols |= set(self.fn.locals)
        for sym in symbols:
            if not sym.address_taken or sym.is_array:
                continue
            class_id = st.class_of_loc(sym)
            for vvar in self.info.vvars:
                if self.info.vvar_class[vvar] == class_id and (
                    not self.classifier.use_tbaa
                    or tbaa_compatible(sym.ty, vvar.ty)
                ):
                    result[sym].append(vvar)
        return result

    # ---- step 1: statement conversion with µ/χ skeletons -----------------
    def build(self, flagger=None) -> SSAFunction:
        """Convert, optionally flag (pre-rename, per the paper's Figure 4),
        then place φs and rename."""
        for block in self.ssa.blocks:
            for stmt in block.base.stmts:
                block.add_stmt(self._convert_stmt(stmt))
            block.term = self._convert_term(block.base.terminator, block)
            block.term.block = block
        if flagger is not None:
            flagger(self.ssa, self.info)
        self._insert_phis()
        self._rename()
        return self.ssa

    def _convert_expr(self, expr: Expr) -> SExpr:
        if isinstance(expr, Const):
            return SConst(expr.value, expr.ty)
        if isinstance(expr, VarRead):
            if expr.sym.is_array:
                return SAddrOf(expr.sym)  # array decay: a constant address
            return SVarUse(expr.sym)
        if isinstance(expr, AddrOf):
            return SAddrOf(expr.sym)
        if isinstance(expr, Load):
            site = self.info.for_load(expr)
            own = Mu(site.vvar, likely=True, is_own=True)
            mus = [own] + [Mu(v) for v in site.real_vars
                           if self._may_target(id(expr), v)]
            return SLoad(self._convert_expr(expr.addr), expr.value_ty,
                         mus, own, site, expr)
        if isinstance(expr, Bin):
            return SBin(expr.op, self._convert_expr(expr.left),
                        self._convert_expr(expr.right))
        if isinstance(expr, Un):
            return SUn(expr.op, self._convert_expr(expr.operand))
        raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _may_target(self, site_key: int, sym: Symbol) -> bool:
        if self.refinement is None:
            return True
        return self.refinement.may_target(site_key, sym)

    def _convert_stmt(self, stmt) -> SStmt:
        if isinstance(stmt, Assign):
            chis = [Chi(v) for v in self._affected_vvars.get(stmt.sym, ())]
            return SAssign(stmt.sym, self._convert_expr(stmt.value), chis)
        if isinstance(stmt, Store):
            site = self.info.for_store(stmt)
            chis = [Chi(site.vvar, likely=True, is_own=True)]
            chis += [Chi(v) for v in site.other_vvars]
            chis += [Chi(v) for v in site.real_vars
                     if self._may_target(id(stmt), v)]
            return SStore(self._convert_expr(stmt.addr),
                          self._convert_expr(stmt.value),
                          stmt.value_ty, chis, site, stmt)
        if isinstance(stmt, CallStmt):
            if stmt.is_alloc or stmt.callee in ("input", "inputf"):
                # intrinsics: allocate fresh storage / read the input
                # stream; they neither read nor write existing memory
                mus: List[Mu] = []
                chis = []
            else:
                mu_syms, chi_syms = self.info.call_lists(stmt.callee)
                mus = [Mu(s) for s in mu_syms]
                chis = [Chi(s) for s in chi_syms]
            return SCall(stmt.dst, stmt.callee,
                         [self._convert_expr(a) for a in stmt.args],
                         mus, chis, stmt.site_id, stmt)
        if isinstance(stmt, PrintStmt):
            return SPrint([self._convert_expr(a) for a in stmt.args])
        raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover

    def _convert_term(self, term, block: SSABlock):
        if isinstance(term, Jump):
            return SJump(self.ssa.block_of(term.target))
        if isinstance(term, CondBr):
            return SCondBr(self._convert_expr(term.cond),
                           self.ssa.block_of(term.then_block),
                           self.ssa.block_of(term.else_block))
        if isinstance(term, Return):
            value = (self._convert_expr(term.value)
                     if term.value is not None else None)
            return SReturn(value)
        raise TypeError(f"unknown terminator {term!r}")  # pragma: no cover

    # ---- step 2: φ insertion ------------------------------------------------
    def _def_blocks(self) -> Dict[Symbol, Set[BasicBlock]]:
        defs: Dict[Symbol, Set[BasicBlock]] = defaultdict(set)
        for block in self.ssa.blocks:
            for stmt in block.stmts:
                if isinstance(stmt, SAssign):
                    defs[stmt.lhs].add(block.base)
                elif isinstance(stmt, SCall) and stmt.dst is not None:
                    defs[stmt.dst].add(block.base)
                for chi in stmt.chis:
                    defs[chi.symbol].add(block.base)
        return defs

    def _insert_phis(self) -> None:
        dom = self.ssa.dom
        for symbol, blocks in self._def_blocks().items():
            for base in dom.iterated_frontier(blocks):
                block = self.ssa.block_of(base)
                phi = SPhi(symbol, len(block.preds))
                phi.block = block
                block.phis.append(phi)

    # ---- step 3: renaming ----------------------------------------------------
    def _top(self, symbol: Symbol, block: SSABlock) -> SSAVar:
        stack = self._stacks[symbol]
        if not stack:
            # Live-on-entry version (parameter / uninitialized / global).
            var = self.ssa.new_version(symbol)
            var.def_site = "entry"
            var.def_block = self.ssa.entry
            self.ssa.entry_versions[symbol] = var
            stack.append(var)
        return stack[-1]

    def _define(self, symbol: Symbol, site: object, block: SSABlock,
                pushed: List[Symbol]) -> SSAVar:
        # Ensure the entry version exists first so version numbers reflect
        # def order (entry is always version 1).
        self._top(symbol, block)
        var = self.ssa.new_version(symbol)
        var.def_site = site
        var.def_block = block
        self._stacks[symbol].append(var)
        pushed.append(symbol)
        return var

    def _rename_expr(self, expr: SExpr, block: SSABlock) -> None:
        for node in expr.walk():
            if isinstance(node, SVarUse):
                node.var = self._top(node.symbol, block)
            elif isinstance(node, SLoad):
                for mu in node.mus:
                    mu.var = self._top(mu.symbol, block)

    def _rename(self) -> None:
        # Iterative preorder walk over the dominator tree with explicit
        # push bookkeeping.
        dom = self.ssa.dom
        actions: List[Tuple[str, object]] = [("visit", self.ssa.entry)]
        while actions:
            kind, payload = actions.pop()
            if kind == "pop":
                for symbol in payload:  # type: ignore[union-attr]
                    self._stacks[symbol].pop()
                continue
            block: SSABlock = payload  # type: ignore[assignment]
            pushed: List[Symbol] = []
            self._visit_block(block, pushed)
            actions.append(("pop", pushed))
            children = dom.children[block.base]
            for base in reversed(children):
                actions.append(("visit", self.ssa.block_of(base)))

    def _visit_block(self, block: SSABlock, pushed: List[Symbol]) -> None:
        for phi in block.phis:
            phi.lhs = self._define(phi.symbol, phi, block, pushed)
        for stmt in block.stmts:
            for expr in stmt.exprs():
                self._rename_expr(expr, block)
            if isinstance(stmt, SCall):
                for mu in stmt.mus:
                    mu.var = self._top(mu.symbol, block)
            if isinstance(stmt, SAssign):
                stmt.lhs = self._define(stmt.lhs, stmt, block, pushed)
            elif isinstance(stmt, SCall) and stmt.dst is not None:
                stmt.dst = self._define(stmt.dst, stmt, block, pushed)
            for chi in stmt.chis:
                chi.rhs = self._top(chi.symbol, block)
                chi.lhs = self._define(chi.symbol, chi, block, pushed)
        if block.term is not None:
            for expr in block.term.exprs():
                self._rename_expr(expr, block)
        for succ in block.succs:
            index = succ.pred_index(block)
            for phi in succ.phis:
                phi.args[index] = self._top(phi.symbol, block)


def build_ssa(module: Module, fn: Function,
              classifier: Optional[AliasClassifier] = None,
              flagger=None, refinement=None, *,
              info=None, dom=None) -> SSAFunction:
    """Build the (speculative) HSSA form of ``fn``.

    Without a ``flagger``, every µ/χ stays ``likely`` — classical HSSA.
    Pass a flagger from :mod:`repro.ssa.spec` to obtain the paper's
    speculative SSA form, and a :class:`repro.ssa.refine.
    FlowSensitivePointsTo` to shrink the µ/χ lists flow-sensitively.

    ``info`` / ``dom`` accept a precomputed
    :class:`~repro.analysis.aliasclass.FunctionAliasInfo` and
    :class:`~repro.analysis.DominatorTree` of ``fn`` — the pass
    manager's analysis cache supplies them so fallback-ladder retries
    do not recompute per-function analyses from scratch.
    """
    if classifier is None:
        classifier = AliasClassifier(module)
    return SSABuilder(module, fn, classifier, refinement,
                      info=info, dom=dom).build(flagger)
