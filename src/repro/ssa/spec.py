"""Speculation-flag assignment — turning HSSA into *speculative* SSA.

"Where do speculation flags come from" is a first-class, pluggable axis:
a :class:`SpecSource` builds the *flagger* that runs after µ/χ lists are
created but before φ insertion/renaming (the paper's Figure 4 ordering),
and may both flip ``likely`` flags and append missing µ/χ operands.
Four sources ship:

* :class:`ProfileSource` (§3.2.1): an operand is *likely* (χs/µs) iff its
  LOC was observed at that reference during the training run.  Members of
  the profiled LOC set missing from a list are appended as likely operands
  (this covers TBAA-unsound corner cases).  Virtual-variable operands are
  flagged by intersecting the site's profiled LOCs with the LOCs ever
  touched by the virtual variable's own references.
* :class:`HeuristicSource` (§3.2.2): rule 1 — identical address syntax
  trees are assumed to see the same value, so cross-shape virtual χs are
  ignorable; rule 2 — direct references of one variable are assumed to see
  the same value, so real-variable χs at indirect stores are ignorable;
  rule 3 — call-statement side effects are always likely (χs), and call µ
  lists stay untouched.
* :class:`StaticSource`: profile-free — likeliness probabilities come
  from :mod:`repro.analysis.prob_alias` (static branch heuristics +
  probabilistic points-to, no training run), thresholded by a tunable
  cutoff; raising the cutoff only *removes* likely marks.
* :class:`NoSpecSource` leaves everything likely — classical HSSA, the
  paper's O3+TBAA baseline behaviour (plus :class:`AggressiveSource`,
  Figure 12's ignore-every-may-alias upper bound).

:func:`flagger_for` keeps its historical signature and delegates to
:func:`source_for` — the golden tests under ``tests/ssa/golden/`` pin the
profile/heuristic flag assignments bit-for-bit across this dispatch.
"""

from __future__ import annotations

import abc
import enum
from collections import defaultdict
from typing import (TYPE_CHECKING, Callable, ClassVar, Dict, List, Optional,
                    Set)

from ..analysis.aliasclass import FunctionAliasInfo
from ..analysis.locs import Loc
from ..ir import Function, Symbol
from ..profiling.alias_profile import AliasProfile
from .values import (Chi, Mu, SAssign, SCall, SLoad, SPrint, SSAFunction,
                     SStmt, SStore)

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.prob_alias import ProbAliasInfo

#: A flagger mutates µ/χ lists in place, pre-renaming.
Flagger = Callable[[SSAFunction, FunctionAliasInfo], None]

#: default probability cutoff of :class:`StaticSource` — an alias whose
#: static probability reaches this is treated as real (binding)
DEFAULT_STATIC_THRESHOLD = 0.5


class SpecMode(enum.Enum):
    """How speculation flags are assigned."""

    OFF = "off"                # classical HSSA: everything likely
    PROFILE = "profile"        # §3.2.1, from an alias profile
    HEURISTIC = "heuristic"    # §3.2.2, from the three syntax rules
    STATIC = "static"          # profile-free probabilistic alias analysis
    AGGRESSIVE = "aggressive"  # ignore *all* may-aliases (Fig. 12 bound)


def iter_loads(ssa: SSAFunction):
    """Yield every :class:`SLoad` occurrence in the function."""
    for block in ssa.blocks:
        for stmt in block.stmts:
            for expr in stmt.exprs():
                for node in expr.walk():
                    if isinstance(node, SLoad):
                        yield node
        if block.term is not None:
            for expr in block.term.exprs():
                for node in expr.walk():
                    if isinstance(node, SLoad):
                        yield node


def no_spec_flagger(ssa: SSAFunction, info: FunctionAliasInfo) -> None:
    """Classical HSSA: every may-update/use is binding."""
    for block in ssa.blocks:
        for stmt in block.stmts:
            for chi in stmt.chis:
                chi.likely = True
            for mu in stmt.mus:
                mu.likely = True
    for load in iter_loads(ssa):
        for mu in load.mus:
            mu.likely = True


def aggressive_flagger(ssa: SSAFunction, info: FunctionAliasInfo) -> None:
    """Figure 12's second method / §5.1's manual tuning: ignore every
    may-alias between memory references (unsafe upper bound — only a
    reference's own virtual variable remains binding).  Call side effects
    stay binding: the paper's aggressive promotion targets aliasing, not
    interprocedural effects."""
    for block in ssa.blocks:
        for stmt in block.stmts:
            binding = isinstance(stmt, SCall)
            for chi in stmt.chis:
                chi.likely = binding or chi.is_own
            for mu in stmt.mus:
                mu.likely = binding
    for load in iter_loads(ssa):
        for mu in load.mus:
            mu.likely = mu.is_own


def make_profile_flagger(profile: AliasProfile,
                         threshold: float = 0.0) -> Flagger:
    """Build a §3.2.1 flagger from a training-run alias profile.

    ``threshold`` implements the paper's "degree of likeliness" (§3.1):
    0.0 is the paper's membership rule (an alias observed even once is
    χs/µs); a positive fraction treats rare collisions as speculative
    weak updates, accepting bounded mis-speculation for extra coverage.
    """

    def flagger(ssa: SSAFunction, info: FunctionAliasInfo) -> None:
        vvar_sublocs = _vvar_site_sublocs(ssa, profile)
        visible = _visible_memory_symbols(ssa)

        def flag_chi_list(stmt: SStmt, profiled: Set[Loc],
                          profiled_sub: Set[tuple],
                          executed: bool) -> None:
            present: Set[Symbol] = set()
            for chi in stmt.chis:
                present.add(chi.symbol)
                if chi.is_own:
                    chi.likely = executed
                elif chi.symbol.is_virtual:
                    # vvar operands compare at sub-object granularity —
                    # the profiler's LOC naming scheme (§3.2.1 / [4]).
                    chi.likely = bool(
                        profiled_sub & vvar_sublocs.get(chi.symbol, set())
                    )
                else:
                    chi.likely = chi.symbol in profiled
            # §3.2.1: profiled LOCs missing from the χ list are *added* as
            # speculative updates χs.
            for loc in profiled:
                if isinstance(loc, Symbol) and loc in visible \
                        and loc not in present and not loc.is_array:
                    extra = Chi(loc, likely=True)
                    extra.stmt = stmt
                    stmt.chis.append(extra)

        for block in ssa.blocks:
            for stmt in block.stmts:
                if isinstance(stmt, SStore):
                    flag_chi_list(
                        stmt, profile.store_loc_set(stmt.orig),
                        profile.store_subloc_set(stmt.orig, threshold),
                        profile.store_executed(stmt.orig))
                elif isinstance(stmt, SCall):
                    mod = profile.call_mod_set(stmt.orig)
                    mod_sub = profile.call_mod_subloc_set(stmt.orig)
                    ref = profile.call_ref_set(stmt.orig)
                    ref_sub = profile.call_ref_subloc_set(stmt.orig)
                    flag_chi_list(stmt, mod, mod_sub, True)
                    for mu in stmt.mus:
                        if mu.symbol.is_virtual:
                            mu.likely = bool(
                                ref_sub & vvar_sublocs.get(mu.symbol, set())
                            )
                        else:
                            mu.likely = mu.symbol in ref
                elif isinstance(stmt, SAssign):
                    # Direct def of an aliased scalar: its χs cover virtual
                    # variables; flag by whether the vvar's references ever
                    # touched this symbol.
                    for chi in stmt.chis:
                        chi.likely = (stmt.lhs, 0) in vvar_sublocs.get(
                            chi.symbol, set()
                        )
        for load in iter_loads(ssa):
            profiled = profile.load_loc_set(load.orig)
            profiled_sub = profile.load_subloc_set(load.orig, threshold)
            executed = profile.load_executed(load.orig)
            present = set()
            for mu in load.mus:
                present.add(mu.symbol)
                if mu.is_own:
                    mu.likely = executed
                elif mu.symbol.is_virtual:
                    mu.likely = bool(
                        profiled_sub & vvar_sublocs.get(mu.symbol, set())
                    )
                else:
                    mu.likely = mu.symbol in profiled
            for loc in profiled:
                if isinstance(loc, Symbol) and loc in visible \
                        and loc not in present and not loc.is_array:
                    load.mus.append(Mu(loc, likely=True))

    return flagger


def heuristic_flagger(ssa: SSAFunction, info: FunctionAliasInfo) -> None:
    """§3.2.2's three syntax-tree heuristic rules."""
    for block in ssa.blocks:
        for stmt in block.stmts:
            if isinstance(stmt, SStore):
                for chi in stmt.chis:
                    # Rule 1: only the identical-syntax reference (the own
                    # virtual variable) certainly sees this update; rule 2:
                    # direct variables are assumed unaffected.
                    chi.likely = chi.is_own
            elif isinstance(stmt, SCall):
                # Rule 3: call side effects are always highly likely; the
                # µ list of the call remains unchanged (all binding).
                for chi in stmt.chis:
                    chi.likely = True
                for mu in stmt.mus:
                    mu.likely = True
            elif isinstance(stmt, SAssign):
                for chi in stmt.chis:
                    chi.likely = False  # rule 1 from the vvar's viewpoint
    for load in iter_loads(ssa):
        for mu in load.mus:
            mu.likely = mu.is_own


def make_static_flagger(
    threshold: float = DEFAULT_STATIC_THRESHOLD,
    info_for: Optional[Callable[[Function], "ProbAliasInfo"]] = None,
) -> Flagger:
    """Build a profile-free flagger from static probabilistic alias facts.

    An operand is likely iff its statically-computed alias probability
    reaches ``threshold`` — so raising the threshold only ever *removes*
    likely marks (more speculation), never adds them.  Own operands are
    likely iff their site can execute at all (an ``if (0)`` body is dead),
    and call-statement effects stay fully binding: the analysis is
    intraprocedural, so interprocedural effects get the safe rule-3
    treatment.  ``info_for`` lets the pipeline supply its cached
    ``prob-alias`` analysis; by default facts are computed on demand.
    """
    from ..analysis.prob_alias import compute_prob_alias

    memo: Dict[int, "ProbAliasInfo"] = {}

    def info_of(fn: Function) -> "ProbAliasInfo":
        if info_for is not None:
            return info_for(fn)
        key = id(fn)
        if key not in memo:
            memo[key] = compute_prob_alias(fn)
        return memo[key]

    def flagger(ssa: SSAFunction, info: FunctionAliasInfo) -> None:
        pa = info_of(ssa.fn)
        # The static footprint of each virtual variable: the site keys of
        # its own references (the analogue of _vvar_site_sublocs).
        vvar_sites: Dict[Symbol, List[int]] = defaultdict(list)
        for load in iter_loads(ssa):
            vvar_sites[load.site.vvar].append(id(load.orig))
        for block in ssa.blocks:
            for stmt in block.stmts:
                if isinstance(stmt, SStore):
                    vvar_sites[stmt.site.vvar].append(id(stmt.orig))

        def vvar_overlap(key: int, vvar: Symbol) -> float:
            """P(this site's address collides with any reference of the
            virtual variable)."""
            return max((pa.overlap(key, pa.site(k).dist)
                        for k in vvar_sites.get(vvar, ())), default=0.0)

        def vvar_touches(vvar: Symbol, sym: Symbol) -> float:
            """P(some reference of the virtual variable touches ``sym``)."""
            return max((pa.site(k).target_prob(sym)
                        for k in vvar_sites.get(vvar, ())), default=0.0)

        def flag(op, key: int) -> None:
            if op.is_own:
                op.likely = pa.executed(key)
            elif op.symbol.is_virtual:
                op.likely = vvar_overlap(key, op.symbol) >= threshold
            else:
                op.likely = pa.target_prob(key, op.symbol) >= threshold

        for block in ssa.blocks:
            for stmt in block.stmts:
                if isinstance(stmt, SStore):
                    key = id(stmt.orig)
                    for chi in stmt.chis:
                        flag(chi, key)
                elif isinstance(stmt, SCall):
                    for chi in stmt.chis:
                        chi.likely = True
                    for mu in stmt.mus:
                        mu.likely = True
                elif isinstance(stmt, SAssign):
                    for chi in stmt.chis:
                        chi.likely = vvar_touches(chi.symbol,
                                                  stmt.lhs) >= threshold
        for load in iter_loads(ssa):
            key = id(load.orig)
            for mu in load.mus:
                flag(mu, key)

    return flagger


# ---- the SpecSource axis ----------------------------------------------------


class SpecSource(abc.ABC):
    """Where speculation flags come from.

    A source is a small, typed strategy object: it declares whether it
    needs a training run and builds the flagger that
    :class:`~repro.ssa.construct.SSABuilder` runs pre-renaming.  The
    pipeline, CLI and compile service all select flag provenance through
    this protocol — adding a new provenance means adding a source here,
    nothing else.
    """

    #: the wire name (matches ``SpecMode`` values and ``--spec-source``)
    name: ClassVar[str]

    #: does this source require an alias profile from a training run?
    needs_train_run: ClassVar[bool] = False

    @abc.abstractmethod
    def flagger(self) -> Flagger:
        """The flagger implementing this source's flag assignment."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class NoSpecSource(SpecSource):
    """Classical HSSA — every may-operand binding, no speculation."""

    name = "off"

    def flagger(self) -> Flagger:
        return no_spec_flagger


class AggressiveSource(SpecSource):
    """Figure 12's unsafe upper bound — ignore every may-alias."""

    name = "aggressive"

    def flagger(self) -> Flagger:
        return aggressive_flagger


class HeuristicSource(SpecSource):
    """§3.2.2 — the three syntax-tree rules, no inputs needed."""

    name = "heuristic"

    def flagger(self) -> Flagger:
        return heuristic_flagger


class ProfileSource(SpecSource):
    """§3.2.1 — flags from a training-run alias profile."""

    name = "profile"
    needs_train_run = True

    def __init__(self, profile: AliasProfile,
                 threshold: float = 0.0) -> None:
        if profile is None:
            raise ValueError("ProfileSource requires an alias profile")
        self.profile = profile
        self.threshold = threshold

    def flagger(self) -> Flagger:
        return make_profile_flagger(self.profile, self.threshold)


class StaticSource(SpecSource):
    """Profile-free — static probabilistic alias analysis, thresholded."""

    name = "static"

    def __init__(
        self,
        threshold: float = DEFAULT_STATIC_THRESHOLD,
        info_for: Optional[Callable[[Function], "ProbAliasInfo"]] = None,
    ) -> None:
        self.threshold = threshold
        self.info_for = info_for

    def flagger(self) -> Flagger:
        return make_static_flagger(self.threshold, self.info_for)


def source_for(
    mode: SpecMode,
    profile: Optional[AliasProfile] = None,
    threshold: float = 0.0,
    static_threshold: float = DEFAULT_STATIC_THRESHOLD,
    prob_info_for: Optional[Callable[[Function], "ProbAliasInfo"]] = None,
) -> SpecSource:
    """The :class:`SpecSource` implementing a :class:`SpecMode`."""
    if mode is SpecMode.OFF:
        return NoSpecSource()
    if mode is SpecMode.PROFILE:
        if profile is None:
            raise ValueError("PROFILE mode requires an alias profile")
        return ProfileSource(profile, threshold)
    if mode is SpecMode.HEURISTIC:
        return HeuristicSource()
    if mode is SpecMode.STATIC:
        return StaticSource(static_threshold, prob_info_for)
    if mode is SpecMode.AGGRESSIVE:
        return AggressiveSource()
    raise ValueError(f"unknown mode {mode!r}")  # pragma: no cover


def flagger_for(
    mode: SpecMode,
    profile: Optional[AliasProfile] = None,
    threshold: float = 0.0,
    static_threshold: float = DEFAULT_STATIC_THRESHOLD,
    prob_info_for: Optional[Callable[[Function], "ProbAliasInfo"]] = None,
) -> Flagger:
    """Select the flagger for a :class:`SpecMode` (via its source)."""
    return source_for(mode, profile, threshold, static_threshold,
                      prob_info_for).flagger()


def flag_snapshot(ssa: SSAFunction) -> str:
    """A canonical text serialization of every µ/χ likeliness flag.

    One line per operand, in deterministic (block, statement, operand)
    order.  Two SSA forms of the same function have equal snapshots iff
    their speculation-flag assignments are bit-identical — the golden
    tests pin flagger behaviour across refactors with this."""
    lines: List[str] = [f"function {ssa.fn.name}"]

    def mark(sym: Symbol) -> str:
        return f"~{sym.name}" if sym.is_virtual else sym.name

    for bi, block in enumerate(ssa.blocks):
        for si, stmt in enumerate(block.stmts):
            kind = type(stmt).__name__
            for chi in stmt.chis:
                lines.append(
                    f"b{bi} s{si} {kind} chi {mark(chi.symbol)} "
                    f"likely={int(chi.likely)} own={int(chi.is_own)}")
            for mu in stmt.mus:
                lines.append(
                    f"b{bi} s{si} {kind} mu {mark(mu.symbol)} "
                    f"likely={int(mu.likely)} own={int(mu.is_own)}")
    for li, load in enumerate(iter_loads(ssa)):
        for mu in load.mus:
            lines.append(f"load{li} mu {mark(mu.symbol)} "
                         f"likely={int(mu.likely)} own={int(mu.is_own)}")
    return "\n".join(lines) + "\n"


# ---- helpers ---------------------------------------------------------------


def _vvar_site_sublocs(ssa: SSAFunction,
                       profile: AliasProfile) -> Dict[Symbol, Set[tuple]]:
    """Block-granular LOCs ever touched (during profiling) by each
    virtual variable's own references — the dynamic footprint used to flag
    vvar operands."""
    result: Dict[Symbol, Set[tuple]] = defaultdict(set)
    for load in iter_loads(ssa):
        result[load.site.vvar] |= profile.load_subloc_set(load.orig)
    for block in ssa.blocks:
        for stmt in block.stmts:
            if isinstance(stmt, SStore):
                result[stmt.site.vvar] |= profile.store_subloc_set(
                    stmt.orig
                )
    return result


def _visible_memory_symbols(ssa: SSAFunction) -> Set[Symbol]:
    from .construct import is_memory_resident

    fn = ssa.fn
    module_globals = []
    # Globals are discoverable through the symbols already in µ/χ lists and
    # the function's own scope; collect conservatively from both.
    syms = set(fn.params) | set(fn.locals)
    for block in ssa.blocks:
        for stmt in block.stmts:
            for chi in stmt.chis:
                syms.add(chi.symbol)
            for mu in stmt.mus:
                syms.add(mu.symbol)
    return {s for s in syms if is_memory_resident(s)}
