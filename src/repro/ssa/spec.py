"""Speculation-flag assignment — turning HSSA into *speculative* SSA.

Implements §3.2.1 (alias-profile-driven flags) and §3.2.2 (heuristic-rule
flags) of the paper.  A *flagger* runs after µ/χ lists are created but
before φ insertion/renaming (the paper's Figure 4 ordering), and may both
flip ``likely`` flags and append missing µ/χ operands:

* **Profile flaggers** (§3.2.1): an operand is *likely* (χs/µs) iff its LOC
  was observed at that reference during the training run.  Members of the
  profiled LOC set missing from a list are appended as likely operands
  (this covers TBAA-unsound corner cases).  Virtual-variable operands are
  flagged by intersecting the site's profiled LOCs with the LOCs ever
  touched by the virtual variable's own references.
* **Heuristic flaggers** (§3.2.2): rule 1 — identical address syntax trees
  are assumed to see the same value, so cross-shape virtual χs are
  ignorable; rule 2 — direct references of one variable are assumed to see
  the same value, so real-variable χs at indirect stores are ignorable;
  rule 3 — call-statement side effects are always likely (χs), and call µ
  lists stay untouched.
* **The no-speculation flagger** leaves everything likely — classical HSSA,
  the paper's O3+TBAA baseline behaviour.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Set

from ..analysis.aliasclass import FunctionAliasInfo
from ..analysis.locs import Loc
from ..ir import Symbol
from ..profiling.alias_profile import AliasProfile
from .values import (Chi, Mu, SAssign, SCall, SLoad, SPrint, SSAFunction,
                     SStmt, SStore)

#: A flagger mutates µ/χ lists in place, pre-renaming.
Flagger = Callable[[SSAFunction, FunctionAliasInfo], None]


class SpecMode(enum.Enum):
    """How speculation flags are assigned."""

    OFF = "off"                # classical HSSA: everything likely
    PROFILE = "profile"        # §3.2.1, from an alias profile
    HEURISTIC = "heuristic"    # §3.2.2, from the three syntax rules
    AGGRESSIVE = "aggressive"  # ignore *all* may-aliases (Fig. 12 bound)


def iter_loads(ssa: SSAFunction):
    """Yield every :class:`SLoad` occurrence in the function."""
    for block in ssa.blocks:
        for stmt in block.stmts:
            for expr in stmt.exprs():
                for node in expr.walk():
                    if isinstance(node, SLoad):
                        yield node
        if block.term is not None:
            for expr in block.term.exprs():
                for node in expr.walk():
                    if isinstance(node, SLoad):
                        yield node


def no_spec_flagger(ssa: SSAFunction, info: FunctionAliasInfo) -> None:
    """Classical HSSA: every may-update/use is binding."""
    for block in ssa.blocks:
        for stmt in block.stmts:
            for chi in stmt.chis:
                chi.likely = True
            for mu in stmt.mus:
                mu.likely = True
    for load in iter_loads(ssa):
        for mu in load.mus:
            mu.likely = True


def aggressive_flagger(ssa: SSAFunction, info: FunctionAliasInfo) -> None:
    """Figure 12's second method / §5.1's manual tuning: ignore every
    may-alias between memory references (unsafe upper bound — only a
    reference's own virtual variable remains binding).  Call side effects
    stay binding: the paper's aggressive promotion targets aliasing, not
    interprocedural effects."""
    for block in ssa.blocks:
        for stmt in block.stmts:
            binding = isinstance(stmt, SCall)
            for chi in stmt.chis:
                chi.likely = binding or chi.is_own
            for mu in stmt.mus:
                mu.likely = binding
    for load in iter_loads(ssa):
        for mu in load.mus:
            mu.likely = mu.is_own


def make_profile_flagger(profile: AliasProfile,
                         threshold: float = 0.0) -> Flagger:
    """Build a §3.2.1 flagger from a training-run alias profile.

    ``threshold`` implements the paper's "degree of likeliness" (§3.1):
    0.0 is the paper's membership rule (an alias observed even once is
    χs/µs); a positive fraction treats rare collisions as speculative
    weak updates, accepting bounded mis-speculation for extra coverage.
    """

    def flagger(ssa: SSAFunction, info: FunctionAliasInfo) -> None:
        vvar_sublocs = _vvar_site_sublocs(ssa, profile)
        visible = _visible_memory_symbols(ssa)

        def flag_chi_list(stmt: SStmt, profiled: Set[Loc],
                          profiled_sub: Set[tuple],
                          executed: bool) -> None:
            present: Set[Symbol] = set()
            for chi in stmt.chis:
                present.add(chi.symbol)
                if chi.is_own:
                    chi.likely = executed
                elif chi.symbol.is_virtual:
                    # vvar operands compare at sub-object granularity —
                    # the profiler's LOC naming scheme (§3.2.1 / [4]).
                    chi.likely = bool(
                        profiled_sub & vvar_sublocs.get(chi.symbol, set())
                    )
                else:
                    chi.likely = chi.symbol in profiled
            # §3.2.1: profiled LOCs missing from the χ list are *added* as
            # speculative updates χs.
            for loc in profiled:
                if isinstance(loc, Symbol) and loc in visible \
                        and loc not in present and not loc.is_array:
                    extra = Chi(loc, likely=True)
                    extra.stmt = stmt
                    stmt.chis.append(extra)

        for block in ssa.blocks:
            for stmt in block.stmts:
                if isinstance(stmt, SStore):
                    flag_chi_list(
                        stmt, profile.store_loc_set(stmt.orig),
                        profile.store_subloc_set(stmt.orig, threshold),
                        profile.store_executed(stmt.orig))
                elif isinstance(stmt, SCall):
                    mod = profile.call_mod_set(stmt.orig)
                    mod_sub = profile.call_mod_subloc_set(stmt.orig)
                    ref = profile.call_ref_set(stmt.orig)
                    ref_sub = profile.call_ref_subloc_set(stmt.orig)
                    flag_chi_list(stmt, mod, mod_sub, True)
                    for mu in stmt.mus:
                        if mu.symbol.is_virtual:
                            mu.likely = bool(
                                ref_sub & vvar_sublocs.get(mu.symbol, set())
                            )
                        else:
                            mu.likely = mu.symbol in ref
                elif isinstance(stmt, SAssign):
                    # Direct def of an aliased scalar: its χs cover virtual
                    # variables; flag by whether the vvar's references ever
                    # touched this symbol.
                    for chi in stmt.chis:
                        chi.likely = (stmt.lhs, 0) in vvar_sublocs.get(
                            chi.symbol, set()
                        )
        for load in iter_loads(ssa):
            profiled = profile.load_loc_set(load.orig)
            profiled_sub = profile.load_subloc_set(load.orig, threshold)
            executed = profile.load_executed(load.orig)
            present = set()
            for mu in load.mus:
                present.add(mu.symbol)
                if mu.is_own:
                    mu.likely = executed
                elif mu.symbol.is_virtual:
                    mu.likely = bool(
                        profiled_sub & vvar_sublocs.get(mu.symbol, set())
                    )
                else:
                    mu.likely = mu.symbol in profiled
            for loc in profiled:
                if isinstance(loc, Symbol) and loc in visible \
                        and loc not in present and not loc.is_array:
                    load.mus.append(Mu(loc, likely=True))

    return flagger


def heuristic_flagger(ssa: SSAFunction, info: FunctionAliasInfo) -> None:
    """§3.2.2's three syntax-tree heuristic rules."""
    for block in ssa.blocks:
        for stmt in block.stmts:
            if isinstance(stmt, SStore):
                for chi in stmt.chis:
                    # Rule 1: only the identical-syntax reference (the own
                    # virtual variable) certainly sees this update; rule 2:
                    # direct variables are assumed unaffected.
                    chi.likely = chi.is_own
            elif isinstance(stmt, SCall):
                # Rule 3: call side effects are always highly likely; the
                # µ list of the call remains unchanged (all binding).
                for chi in stmt.chis:
                    chi.likely = True
                for mu in stmt.mus:
                    mu.likely = True
            elif isinstance(stmt, SAssign):
                for chi in stmt.chis:
                    chi.likely = False  # rule 1 from the vvar's viewpoint
    for load in iter_loads(ssa):
        for mu in load.mus:
            mu.likely = mu.is_own


def flagger_for(mode: SpecMode,
                profile: Optional[AliasProfile] = None,
                threshold: float = 0.0) -> Flagger:
    """Select the flagger for a :class:`SpecMode`."""
    if mode is SpecMode.OFF:
        return no_spec_flagger
    if mode is SpecMode.PROFILE:
        if profile is None:
            raise ValueError("PROFILE mode requires an alias profile")
        return make_profile_flagger(profile, threshold)
    if mode is SpecMode.HEURISTIC:
        return heuristic_flagger
    if mode is SpecMode.AGGRESSIVE:
        return aggressive_flagger
    raise ValueError(f"unknown mode {mode!r}")  # pragma: no cover


# ---- helpers ---------------------------------------------------------------


def _vvar_site_sublocs(ssa: SSAFunction,
                       profile: AliasProfile) -> Dict[Symbol, Set[tuple]]:
    """Block-granular LOCs ever touched (during profiling) by each
    virtual variable's own references — the dynamic footprint used to flag
    vvar operands."""
    result: Dict[Symbol, Set[tuple]] = defaultdict(set)
    for load in iter_loads(ssa):
        result[load.site.vvar] |= profile.load_subloc_set(load.orig)
    for block in ssa.blocks:
        for stmt in block.stmts:
            if isinstance(stmt, SStore):
                result[stmt.site.vvar] |= profile.store_subloc_set(
                    stmt.orig
                )
    return result


def _visible_memory_symbols(ssa: SSAFunction) -> Set[Symbol]:
    from .construct import is_memory_resident

    fn = ssa.fn
    module_globals = []
    # Globals are discoverable through the symbols already in µ/χ lists and
    # the function's own scope; collect conservatively from both.
    syms = set(fn.params) | set(fn.locals)
    for block in ssa.blocks:
        for stmt in block.stmts:
            for chi in stmt.chis:
                syms.add(chi.symbol)
            for mu in stmt.mus:
                syms.add(mu.symbol)
    return {s for s in syms if is_memory_resident(s)}
