"""Data types of the (speculative) HSSA form.

This is the paper's §3 representation: classical SSA over scalars, extended
with

* **virtual variables** for indirect references (Chow et al. [5]),
* **µ operands** (may-reference) on loads and calls,
* **χ operands** (may-modify) on stores, calls and aliased direct
  assignments, and
* a **likeliness flag** on every µ/χ — the paper's speculation flag.
  ``likely=True`` is the paper's χs/µs ("highly likely, cannot be
  ignored"); ``likely=False`` marks a *speculative weak update/use* that
  data-speculative phases may skip.

Expression occurrences are per-use mutable trees (:class:`SExpr`), so SSAPRE
can annotate and rewrite individual occurrences in place.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..analysis.aliasclass import SiteAliases
from ..ir import BasicBlock, Expr, Function, Symbol, Type

# --------------------------------------------------------------------------
# SSA variables
# --------------------------------------------------------------------------


class SSAVar:
    """One SSA version of a symbol.

    ``def_site`` is the defining construct: an :class:`SPhi`,
    :class:`SAssign`, :class:`SCall` (its dst), a :class:`Chi`, or the
    string ``"entry"`` for live-on-entry / parameter versions.
    """

    __slots__ = ("symbol", "version", "def_site", "def_block", "temp_class")

    def __init__(self, symbol: Symbol, version: int) -> None:
        self.symbol = symbol
        self.version = version
        self.def_site: object = None
        self.def_block: Optional["SSABlock"] = None
        #: for SSAPRE temporaries: the rename-class whose value this
        #: version holds (versions of one class are interchangeable)
        self.temp_class: object = None

    @property
    def name(self) -> str:
        return f"{self.symbol.name}{self.version}"

    def __repr__(self) -> str:
        return f"<{self.name}>"


class Mu:
    """A may-use operand µ(var); ``likely`` marks the paper's µs."""

    __slots__ = ("symbol", "var", "likely", "is_own")

    def __init__(self, symbol: Symbol, likely: bool = True,
                 is_own: bool = False) -> None:
        self.symbol = symbol
        self.var: Optional[SSAVar] = None
        self.likely = likely
        self.is_own = is_own

    def __repr__(self) -> str:
        flag = "s" if self.likely else ""
        name = self.var.name if self.var is not None else self.symbol.name
        return f"mu{flag}({name})"


class Chi:
    """A may-def operand ``lhs ← χ(rhs)``; ``likely`` marks the paper's χs.

    An *unlikely* χ is a **speculative weak update**: the paper's Rename and
    Φ-insertion steps may walk through it as if the update did not happen,
    at the price of a later check instruction.
    """

    __slots__ = ("symbol", "lhs", "rhs", "likely", "is_own", "stmt")

    def __init__(self, symbol: Symbol, likely: bool = True,
                 is_own: bool = False) -> None:
        self.symbol = symbol
        self.lhs: Optional[SSAVar] = None
        self.rhs: Optional[SSAVar] = None
        self.likely = likely
        self.is_own = is_own
        self.stmt: Optional["SStmt"] = None

    def __repr__(self) -> str:
        flag = "s" if self.likely else ""
        lhs = self.lhs.name if self.lhs is not None else self.symbol.name
        rhs = self.rhs.name if self.rhs is not None else "?"
        return f"{lhs} <- chi{flag}({rhs})"


# --------------------------------------------------------------------------
# SSA expressions (per-occurrence trees)
# --------------------------------------------------------------------------


class SExpr:
    """Base class of SSA expression occurrences."""

    __slots__ = ()

    def children(self) -> Tuple["SExpr", ...]:
        return ()

    def walk(self) -> Iterator["SExpr"]:
        for child in self.children():
            yield from child.walk()
        yield self


class SConst(SExpr):
    __slots__ = ("value", "ty")

    def __init__(self, value, ty: Type) -> None:
        self.value = value
        self.ty = ty

    def __repr__(self) -> str:
        return str(self.value)


class SVarUse(SExpr):
    """Use of a scalar SSA variable (real, virtual, or PRE temp)."""

    __slots__ = ("symbol", "var")

    def __init__(self, symbol: Symbol, var: Optional[SSAVar] = None) -> None:
        self.symbol = symbol
        self.var = var

    def __repr__(self) -> str:
        return self.var.name if self.var is not None else self.symbol.name


class SAddrOf(SExpr):
    __slots__ = ("symbol",)

    def __init__(self, symbol: Symbol) -> None:
        self.symbol = symbol

    def __repr__(self) -> str:
        return f"&{self.symbol.name}"


class SLoad(SExpr):
    """An indirect load occurrence with its µ list.

    ``own_mu`` is the µ of the load's own virtual variable — its version is
    the HSSA "indirect variable in SSA form" that SSAPRE keys occurrences
    on.  ``site`` carries the alias-class facts.
    """

    __slots__ = ("addr", "value_ty", "mus", "own_mu", "site", "orig")

    def __init__(self, addr: SExpr, value_ty: Type, mus: List[Mu],
                 own_mu: Mu, site: SiteAliases, orig: Expr) -> None:
        self.addr = addr
        self.value_ty = value_ty
        self.mus = mus
        self.own_mu = own_mu
        self.site = site
        self.orig = orig

    def children(self) -> Tuple[SExpr, ...]:
        return (self.addr,)

    def __repr__(self) -> str:
        return f"*({self.addr!r})"


class SBin(SExpr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: SExpr, right: SExpr) -> None:
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Tuple[SExpr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class SUn(SExpr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: SExpr) -> None:
        self.op = op
        self.operand = operand

    def children(self) -> Tuple[SExpr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


# --------------------------------------------------------------------------
# SSA statements
# --------------------------------------------------------------------------


class SStmt:
    """Base class of SSA statements."""

    __slots__ = ("block",)

    def __init__(self) -> None:
        self.block: Optional["SSABlock"] = None

    def exprs(self) -> Tuple[SExpr, ...]:
        return ()

    @property
    def chis(self) -> List[Chi]:
        return []

    @property
    def mus(self) -> List[Mu]:
        return []


class SPhi(SStmt):
    """φ for a real/virtual variable (φ in the paper, distinct from
    SSAPRE's Φ for expression temporaries)."""

    __slots__ = ("symbol", "lhs", "args")

    def __init__(self, symbol: Symbol, num_preds: int) -> None:
        super().__init__()
        self.symbol = symbol
        self.lhs: Optional[SSAVar] = None
        self.args: List[Optional[SSAVar]] = [None] * num_preds

    def __repr__(self) -> str:
        lhs = self.lhs.name if self.lhs is not None else self.symbol.name
        args = ", ".join(a.name if a is not None else "?" for a in self.args)
        return f"{lhs} <- phi({args})"


class SAssign(SStmt):
    """Direct scalar assignment; carries χs when the target is aliased.

    ``spec_kind`` is set by SSAPRE's CodeMotion: ``"advance"`` marks a save
    that must become a speculative/advanced load (``ld.a``), ``"check"``
    marks a speculative check (``ld.c``).
    """

    __slots__ = ("lhs", "rhs", "_chis", "spec_kind", "check_source")

    def __init__(self, symbol_or_var, rhs: SExpr,
                 chis: Optional[List[Chi]] = None) -> None:
        super().__init__()
        self.lhs = symbol_or_var  # Symbol before renaming, SSAVar after
        self.rhs = rhs
        self._chis = chis if chis is not None else []
        self.spec_kind: Optional[str] = None
        #: for check statements: the temp version this check re-validates
        #: (Appendix B's chk.a chaining for indirect references)
        self.check_source: Optional[SSAVar] = None
        for chi in self._chis:
            chi.stmt = self

    def exprs(self) -> Tuple[SExpr, ...]:
        return (self.rhs,)

    @property
    def chis(self) -> List[Chi]:
        return self._chis

    def __repr__(self) -> str:
        lhs = self.lhs.name if isinstance(self.lhs, SSAVar) else self.lhs.name
        flag = f" [{self.spec_kind}]" if self.spec_kind else ""
        return f"{lhs} = {self.rhs!r}{flag}"


class SStore(SStmt):
    """Indirect store with its χ list (own χ first by convention)."""

    __slots__ = ("addr", "value", "value_ty", "_chis", "site", "orig")

    def __init__(self, addr: SExpr, value: SExpr, value_ty: Type,
                 chis: List[Chi], site: SiteAliases, orig) -> None:
        super().__init__()
        self.addr = addr
        self.value = value
        self.value_ty = value_ty
        self._chis = chis
        self.site = site
        self.orig = orig
        for chi in chis:
            chi.stmt = self

    def exprs(self) -> Tuple[SExpr, ...]:
        return (self.addr, self.value)

    @property
    def chis(self) -> List[Chi]:
        return self._chis

    def __repr__(self) -> str:
        return f"*({self.addr!r}) = {self.value!r}"


class SCall(SStmt):
    """Call with mod/ref µ and χ lists."""

    __slots__ = ("dst", "callee", "args", "_mus", "_chis", "site_id", "orig")

    def __init__(self, dst, callee: str, args: List[SExpr], mus: List[Mu],
                 chis: List[Chi], site_id: Optional[int], orig) -> None:
        super().__init__()
        self.dst = dst  # Symbol before renaming, SSAVar after (or None)
        self.callee = callee
        self.args = args
        self._mus = mus
        self._chis = chis
        self.site_id = site_id
        self.orig = orig
        for chi in chis:
            chi.stmt = self

    def exprs(self) -> Tuple[SExpr, ...]:
        return tuple(self.args)

    @property
    def chis(self) -> List[Chi]:
        return self._chis

    @property
    def mus(self) -> List[Mu]:
        return self._mus

    def __repr__(self) -> str:
        call = f"{self.callee}({', '.join(map(repr, self.args))})"
        if self.dst is None:
            return call
        dst = self.dst.name
        return f"{dst} = {call}"


class SPrint(SStmt):
    __slots__ = ("args",)

    def __init__(self, args: List[SExpr]) -> None:
        super().__init__()
        self.args = args

    def exprs(self) -> Tuple[SExpr, ...]:
        return tuple(self.args)

    def __repr__(self) -> str:
        return f"print({', '.join(map(repr, self.args))})"


# ---- terminators ----------------------------------------------------------


class STerm:
    __slots__ = ("block",)

    def __init__(self) -> None:
        self.block: Optional["SSABlock"] = None

    def exprs(self) -> Tuple[SExpr, ...]:
        return ()


class SJump(STerm):
    __slots__ = ("target",)

    def __init__(self, target: "SSABlock") -> None:
        super().__init__()
        self.target = target

    def __repr__(self) -> str:
        return f"goto {self.target.name}"


class SCondBr(STerm):
    __slots__ = ("cond", "then_block", "else_block")

    def __init__(self, cond: SExpr, then_block: "SSABlock",
                 else_block: "SSABlock") -> None:
        super().__init__()
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block

    def exprs(self) -> Tuple[SExpr, ...]:
        return (self.cond,)

    def __repr__(self) -> str:
        return (f"if {self.cond!r} goto {self.then_block.name} "
                f"else {self.else_block.name}")


class SReturn(STerm):
    __slots__ = ("value",)

    def __init__(self, value: Optional[SExpr]) -> None:
        super().__init__()
        self.value = value

    def exprs(self) -> Tuple[SExpr, ...]:
        return (self.value,) if self.value is not None else ()

    def __repr__(self) -> str:
        return f"return {self.value!r}" if self.value is not None else "return"


# --------------------------------------------------------------------------
# Blocks and functions
# --------------------------------------------------------------------------


class SSABlock:
    """SSA mirror of one base :class:`~repro.ir.BasicBlock`."""

    __slots__ = ("base", "phis", "stmts", "term", "preds", "succs")

    def __init__(self, base: BasicBlock) -> None:
        self.base = base
        self.phis: List[SPhi] = []
        self.stmts: List[SStmt] = []
        self.term: Optional[STerm] = None
        self.preds: List["SSABlock"] = []
        self.succs: List["SSABlock"] = []

    @property
    def name(self) -> str:
        return self.base.name

    def pred_index(self, pred: "SSABlock") -> int:
        return self.preds.index(pred)

    def insert_before_term(self, stmt: SStmt) -> None:
        """Append a statement at the end of the block (before its
        terminator) — where SSAPRE inserts Φ-operand computations."""
        stmt.block = self
        self.stmts.append(stmt)

    def add_stmt(self, stmt: SStmt) -> None:
        stmt.block = self
        self.stmts.append(stmt)

    def __repr__(self) -> str:
        return f"<SSABlock {self.name}>"


class SSAFunction:
    """A function in (speculative) HSSA form.

    ``dom`` may carry a precomputed :class:`~repro.analysis.DominatorTree`
    of ``fn`` (the pass manager's analysis cache reuses one tree across
    fallback-ladder retries); without it the tree is computed here.
    """

    def __init__(self, fn: Function, dom=None) -> None:
        from ..analysis.dominance import DominatorTree

        self.fn = fn
        self.dom = dom if dom is not None else DominatorTree(fn)
        self.blocks: List[SSABlock] = []
        self._by_base: Dict[BasicBlock, SSABlock] = {}
        for base in self.dom.order:
            block = SSABlock(base)
            self.blocks.append(block)
            self._by_base[base] = block
        for block in self.blocks:
            block.preds = [self._by_base[p] for p in block.base.preds]
            block.succs = [self._by_base[s] for s in block.base.succs]
        self.entry = self._by_base[fn.entry]
        self._version_counter: Dict[Symbol, itertools.count] = {}
        #: all symbols that were given SSA versions (incl. virtual vars)
        self.versioned_symbols: List[Symbol] = []
        #: live-on-entry version per symbol (filled during renaming)
        self.entry_versions: Dict[Symbol, SSAVar] = {}

    def block_of(self, base: BasicBlock) -> SSABlock:
        return self._by_base[base]

    def new_version(self, symbol: Symbol) -> SSAVar:
        counter = self._version_counter.get(symbol)
        if counter is None:
            counter = itertools.count(1)
            self._version_counter[symbol] = counter
            self.versioned_symbols.append(symbol)
        return SSAVar(symbol, next(counter))

    def preorder(self) -> List[SSABlock]:
        """Dominator-tree preorder over SSA blocks."""
        return [self._by_base[b] for b in self.dom.preorder()]

    def statements(self) -> Iterator[Tuple[SSABlock, SStmt]]:
        for block in self.blocks:
            for stmt in block.stmts:
                yield block, stmt

    def dominates(self, a: SSABlock, b: SSABlock) -> bool:
        return self.dom.dominates(a.base, b.base)


def ssa_counts(ssa: "SSAFunction") -> Tuple[int, int, int]:
    """``(statements, loads, stores)`` of an SSA function — the IR-size
    triple the pass manager records before/after every pass so
    ``--time-passes`` can report per-pass IR deltas.  Statements include
    Φs and terminators; loads are :class:`SLoad` occurrences anywhere in
    an expression tree; stores are :class:`SStore` statements."""
    stmts = loads = stores = 0
    for block in ssa.blocks:
        stmts += len(block.phis) + len(block.stmts)
        if block.term is not None:
            stmts += 1
            for expr in block.term.exprs():
                for node in expr.walk():
                    if isinstance(node, SLoad):
                        loads += 1
        for stmt in block.stmts:
            if isinstance(stmt, SStore):
                stores += 1
            for expr in stmt.exprs():
                for node in expr.walk():
                    if isinstance(node, SLoad):
                        loads += 1
    return stmts, loads, stores
