"""Critical-edge splitting.

SSAPRE inserts computations "at the incoming paths of a merge point" —
i.e. at the end of a Φ operand's predecessor block.  That placement is only
correct when the predecessor has a single successor; otherwise the inserted
computation would also execute on the other outgoing path.  Splitting every
critical edge (predecessor with >1 successors → block with >1 predecessors)
up front makes all Φ-operand insertions safe, exactly as Kennedy et
al. [21] assume.
"""

from __future__ import annotations

from .cfg import BasicBlock
from .function import Function, Module
from .stmt import CondBr, Jump


def split_critical_edges(fn: Function) -> int:
    """Split all critical edges of ``fn``; returns how many were split."""
    fn.compute_cfg()
    split = 0
    for block in list(fn.blocks):
        term = block.terminator
        if not isinstance(term, CondBr):
            continue
        for attr in ("then_block", "else_block"):
            succ: BasicBlock = getattr(term, attr)
            if len(succ.preds) > 1:
                middle = fn.new_block(f"split_{block.name}_{succ.name}")
                middle.terminator = Jump(succ)
                setattr(term, attr, middle)
                split += 1
    if split:
        fn.compute_cfg()
    return split


def split_module_critical_edges(module: Module) -> int:
    """Split critical edges in every function of ``module``."""
    return sum(split_critical_edges(fn) for fn in module.functions.values())
