"""Textual dump of the mid-level IR (for docs, examples and debugging)."""

from __future__ import annotations

from typing import List

from .function import Function, Module


def format_function(fn: Function) -> str:
    """Render a function as readable text, blocks in reverse postorder."""
    lines: List[str] = []
    params = ", ".join(f"{p.ty} {p.name}" for p in fn.params)
    ret = str(fn.ret_ty) if fn.ret_ty is not None else "void"
    lines.append(f"{ret} {fn.name}({params}) {{")
    for sym in fn.locals:
        suffix = f"[{sym.array_size}]" if sym.is_array else ""
        lines.append(f"  {sym.ty} {sym.name}{suffix};")
    for block in fn.rpo():
        lines.append(f" {block.name}:")
        for stmt in block.stmts:
            lines.append(f"    {stmt}")
        if block.terminator is not None:
            lines.append(f"    {block.terminator}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    lines: List[str] = []
    for sym in module.globals:
        suffix = f"[{sym.array_size}]" if sym.is_array else ""
        lines.append(f"{sym.ty} {sym.name}{suffix};")
    for fn in module.functions.values():
        lines.append("")
        lines.append(format_function(fn))
    return "\n".join(lines)
