"""Symbols: named storage locations of the mid-level IR.

A :class:`Symbol` names one storage location — a scalar variable, a fixed-size
array, a function parameter, a compiler temporary, or (in HSSA form) a
*virtual variable* standing for a class of indirect memory references
(Chow et al. [5]).  Symbols compare by identity: two distinct symbols with
the same name are different storage.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from .types import Type


class StorageKind(enum.Enum):
    """Where a symbol lives, which determines its abstract memory location
    (LOC) during alias profiling and its addressability."""

    GLOBAL = "global"
    LOCAL = "local"
    PARAM = "param"
    TEMP = "temp"          # compiler-generated scalar, never address-taken
    VIRTUAL = "virtual"    # HSSA virtual variable, no storage at all


_symbol_ids = itertools.count()


class Symbol:
    """A named storage location.

    Attributes:
        name: source-level or compiler-generated name.
        ty: the type of the value held in each cell (for arrays, the element
            type).
        kind: the :class:`StorageKind`.
        array_size: number of cells if this symbol is an array; ``0`` for
            scalars.
        address_taken: set by the frontend / alias analysis when ``&sym``
            occurs or the symbol is an array (arrays decay to addresses, so
            their cells are always reached through pointers).
    """

    __slots__ = ("name", "ty", "kind", "array_size", "address_taken", "uid")

    def __init__(
        self,
        name: str,
        ty: Type,
        kind: StorageKind = StorageKind.LOCAL,
        array_size: int = 0,
        address_taken: bool = False,
    ) -> None:
        self.name = name
        self.ty = ty
        self.kind = kind
        self.array_size = array_size
        self.address_taken = address_taken or array_size > 0
        self.uid = next(_symbol_ids)

    @property
    def is_array(self) -> bool:
        return self.array_size > 0

    @property
    def is_virtual(self) -> bool:
        return self.kind is StorageKind.VIRTUAL

    @property
    def is_register_candidate(self) -> bool:
        """Whether the value can legally live in a register for its whole
        lifetime (never reachable through memory)."""
        return not self.address_taken and not self.is_virtual

    def __repr__(self) -> str:
        return f"Symbol({self.name}:{self.ty}, {self.kind.value})"

    def __str__(self) -> str:
        return self.name


def make_temp(ty: Type, prefix: str = "t") -> Symbol:
    """Create a fresh compiler temporary of type ``ty``."""
    sym = Symbol(f"{prefix}{next(_symbol_ids)}", ty, StorageKind.TEMP)
    return sym


def make_virtual(name: str, ty: Type) -> Symbol:
    """Create an HSSA virtual variable (no storage; versioned like a scalar)."""
    return Symbol(name, ty, StorageKind.VIRTUAL)
