"""Type system for the mid-level IR.

The IR uses a deliberately small type lattice: 64-bit integers (``INT``),
double-precision floats (``FLOAT``) and typed pointers.  Memory is
*cell-addressed*: every scalar value, regardless of type, occupies exactly one
memory cell, and pointer arithmetic counts cells.  This keeps the interpreter,
the ALAT model and the alias profiler simple without changing any of the
paper's algorithms (which never depend on byte-level layout).

Types are immutable and interned-by-value (frozen dataclasses), so they can be
used as dictionary keys — e.g. by the type-based alias analysis, which refines
alias classes by declared access type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Type:
    """An IR type: ``int``, ``double``, or a pointer to another type.

    Attributes:
        kind: one of ``"int"``, ``"float"``, ``"ptr"``.
        pointee: for pointer types, the type pointed to; ``None`` otherwise.
    """

    kind: str
    pointee: Optional["Type"] = None

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float", "ptr"):
            raise ValueError(f"unknown type kind: {self.kind!r}")
        if self.kind == "ptr" and self.pointee is None:
            raise ValueError("pointer type requires a pointee")
        if self.kind != "ptr" and self.pointee is not None:
            raise ValueError(f"{self.kind} type cannot have a pointee")

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_pointer(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_scalar(self) -> bool:
        """True for every IR type (all values fit in one memory cell)."""
        return True

    def deref(self) -> "Type":
        """The type obtained by loading through this pointer."""
        if not self.is_pointer:
            raise TypeError(f"cannot dereference non-pointer type {self}")
        assert self.pointee is not None
        return self.pointee

    def __str__(self) -> str:
        if self.kind == "int":
            return "int"
        if self.kind == "float":
            return "double"
        return f"{self.pointee}*"


INT = Type("int")
FLOAT = Type("float")


def ptr(pointee: Type) -> Type:
    """Build a pointer type to ``pointee``."""
    return Type("ptr", pointee)


def common_arith_type(a: Type, b: Type) -> Type:
    """The result type of an arithmetic operation over operand types.

    Pointer arithmetic (``ptr + int``) yields the pointer type; mixed
    int/float arithmetic promotes to float, mirroring C's usual conversions.
    """
    if a.is_pointer and b.is_int:
        return a
    if b.is_pointer and a.is_int:
        return b
    if a.is_pointer and b.is_pointer:
        # pointer difference
        return INT
    if a.is_float or b.is_float:
        return FLOAT
    return INT
