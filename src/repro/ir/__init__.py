"""Mid-level IR: the substrate every analysis and optimization runs on.

The IR mirrors what the paper's algorithms need from ORC's WHIRL: a CFG of
basic blocks whose statements contain explicit direct scalar accesses,
indirect loads/stores, calls, and observable ``print`` output; expression
trees with structural ("syntax tree") identity; and a cell-addressed memory
model.
"""

from .builder import FunctionBuilder, ModuleBuilder, as_expr
from .cfg import BasicBlock, reverse_postorder
from .edges import split_critical_edges, split_module_critical_edges
from .expr import (BIN_OPS, COMPARISON_OPS, UN_OPS, AddrOf, Bin, Const, Expr,
                   Load, Un, VarRead, syntax_key)
from .function import Function, Module
from .printer import format_function, format_module
from .stmt import (Assign, CallStmt, CondBr, Jump, PrintStmt, Return, Stmt,
                   Store, Terminator)
from .symbols import StorageKind, Symbol, make_temp, make_virtual
from .types import FLOAT, INT, Type, common_arith_type, ptr
from .verify import VerificationError, verify_module

__all__ = [
    "AddrOf", "Assign", "BIN_OPS", "BasicBlock", "Bin", "CallStmt",
    "COMPARISON_OPS", "CondBr", "Const", "Expr", "FLOAT", "Function",
    "FunctionBuilder", "INT", "Jump", "Load", "Module", "ModuleBuilder",
    "PrintStmt", "Return", "Stmt", "StorageKind", "Store", "Symbol",
    "Terminator", "Type", "UN_OPS", "Un", "VarRead", "VerificationError",
    "as_expr", "common_arith_type", "format_function", "format_module",
    "make_temp", "make_virtual", "ptr", "reverse_postorder",
    "split_critical_edges", "split_module_critical_edges", "syntax_key",
    "verify_module",
]
