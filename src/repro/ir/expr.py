"""Expression trees of the mid-level IR.

Expressions are immutable trees whose leaves are constants, direct variable
reads, or address-of nodes.  Indirect memory reads appear as :class:`Load`
nodes.  Two helpers matter to the speculative framework:

* :func:`syntax_key` computes a structural key for an expression — the
  "identical syntax tree" notion used by the paper's heuristic rules
  (§3.2.2): two indirect references with an identical address expression are
  assumed highly likely to access the same location.
* :meth:`Expr.walk` iterates sub-expressions, used by occurrence collection
  in SSAPRE and by the lowering verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

from .symbols import Symbol
from .types import INT, Type, common_arith_type

#: Binary operators understood by the IR.  Comparisons yield ``int`` 0/1.
BIN_OPS = frozenset(
    {"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&", "|", "^",
     "<<", ">>"}
)
COMPARISON_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})

UN_OPS = frozenset({"-", "!", "~", "int", "float"})


class Expr:
    """Base class of all IR expressions.  Immutable and side-effect free."""

    __slots__ = ()

    @property
    def ty(self) -> Type:  # pragma: no cover - overridden
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every sub-expression, post-order."""
        for child in self.children():
            yield from child.walk()
        yield self


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (int or float)."""

    value: float
    _ty: Type = INT

    @property
    def ty(self) -> Type:
        return self._ty

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRead(Expr):
    """Direct read of a scalar variable.

    Reading an *array* symbol yields its base address (C array decay).
    """

    sym: Symbol

    @property
    def ty(self) -> Type:
        if self.sym.is_array:
            from .types import ptr

            return ptr(self.sym.ty)
        return self.sym.ty

    def __str__(self) -> str:
        return self.sym.name


@dataclass(frozen=True)
class AddrOf(Expr):
    """The address of a (necessarily addressable) variable: ``&sym``."""

    sym: Symbol

    @property
    def ty(self) -> Type:
        from .types import ptr

        return ptr(self.sym.ty)

    def __str__(self) -> str:
        return f"&{self.sym.name}"


@dataclass(frozen=True)
class Load(Expr):
    """An indirect memory read ``*(addr)`` of one cell.

    ``value_ty`` is the declared type of the loaded value — the handle used
    by type-based alias analysis.
    """

    addr: Expr
    value_ty: Type

    @property
    def ty(self) -> Type:
        return self.value_ty

    def children(self) -> Tuple[Expr, ...]:
        return (self.addr,)

    def __str__(self) -> str:
        return f"*({self.addr})"


@dataclass(frozen=True)
class Bin(Expr):
    """A binary operation.  Comparison operators produce int 0/1."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BIN_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    @property
    def ty(self) -> Type:
        if self.op in COMPARISON_OPS:
            return INT
        return common_arith_type(self.left.ty, self.right.ty)

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Un(Expr):
    """A unary operation; ``int`` / ``float`` are conversions."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UN_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    @property
    def ty(self) -> Type:
        if self.op == "!":
            return INT
        if self.op == "int":
            return INT
        if self.op == "float":
            from .types import FLOAT

            return FLOAT
        return self.operand.ty

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


def syntax_key(expr: Expr) -> tuple:
    """A hashable structural key identifying the *syntax tree* of ``expr``.

    Used by the heuristic rules of §3.2.2: references whose address
    expressions have identical syntax trees are assumed highly likely to
    access the same location.  Symbols key by identity (uid), so distinct
    variables with equal names do not collide.
    """
    if isinstance(expr, Const):
        return ("const", expr.value)
    if isinstance(expr, VarRead):
        return ("var", expr.sym.uid)
    if isinstance(expr, AddrOf):
        return ("addr", expr.sym.uid)
    if isinstance(expr, Load):
        return ("load", syntax_key(expr.addr))
    if isinstance(expr, Bin):
        return ("bin", expr.op, syntax_key(expr.left), syntax_key(expr.right))
    if isinstance(expr, Un):
        return ("un", expr.op, syntax_key(expr.operand))
    raise TypeError(f"unknown expression node {type(expr).__name__}")
