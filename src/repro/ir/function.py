"""Functions and modules of the mid-level IR."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from .cfg import BasicBlock, reverse_postorder
from .stmt import CallStmt, Stmt, Terminator
from .symbols import StorageKind, Symbol
from .types import Type


class Function:
    """A procedure: parameters, locals, and a CFG of basic blocks."""

    def __init__(
        self, name: str, params: List[Symbol], ret_ty: Optional[Type] = None
    ) -> None:
        self.name = name
        self.params = list(params)
        self.ret_ty = ret_ty
        self.locals: List[Symbol] = []
        self.blocks: List[BasicBlock] = []
        self.entry: BasicBlock = self.new_block("entry")
        self._label_counter = itertools.count()

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create and register a fresh basic block."""
        name = f"{hint}{len(self.blocks)}"
        block = BasicBlock(name)
        self.blocks.append(block)
        return block

    def add_local(self, sym: Symbol) -> Symbol:
        self.locals.append(sym)
        return sym

    def compute_cfg(self) -> None:
        """(Re)compute predecessor/successor lists and drop unreachable
        blocks."""
        reachable = reverse_postorder(self.entry)
        reachable_set = set(reachable)
        self.blocks = [b for b in self.blocks if b in reachable_set]
        for block in self.blocks:
            block.preds = []
            block.succs = []
        for block in self.blocks:
            for succ in block.successors():
                block.succs.append(succ)
                succ.preds.append(block)

    def rpo(self) -> List[BasicBlock]:
        return reverse_postorder(self.entry)

    def all_symbols(self) -> List[Symbol]:
        return list(self.params) + list(self.locals)

    def statements(self) -> Iterator[Tuple[BasicBlock, Stmt]]:
        """Iterate ``(block, stmt)`` pairs over all non-terminator
        statements."""
        for block in self.blocks:
            for stmt in block.stmts:
                yield block, stmt

    def terminators(self) -> Iterator[Tuple[BasicBlock, Terminator]]:
        for block in self.blocks:
            if block.terminator is not None:
                yield block, block.terminator

    def counts(self) -> Tuple[int, int, int]:
        """``(statements, loads, stores)`` — the IR-size triple the pass
        manager records around module passes for ``--time-passes``
        deltas.  Statements include terminators; loads are
        :class:`~repro.ir.Load` occurrences in any expression tree."""
        from .expr import Load
        from .stmt import Store

        stmts = loads = stores = 0
        for _, stmt in self.statements():
            stmts += 1
            if isinstance(stmt, Store):
                stores += 1
            for expr in stmt.exprs():
                for node in expr.walk():
                    if isinstance(node, Load):
                        loads += 1
        for _, term in self.terminators():
            stmts += 1
            for expr in term.exprs():
                for node in expr.walk():
                    if isinstance(node, Load):
                        loads += 1
        return stmts, loads, stores

    def __repr__(self) -> str:
        return f"<Function {self.name}({', '.join(p.name for p in self.params)})>"


class Module:
    """A whole program: global symbols and functions.

    ``main`` (no parameters) is the entry point used by the interpreter and
    the machine simulator.  :meth:`finalize` must be called once the IR is
    complete; it numbers call sites (heap LOC names and the per-call-site
    mod/ref profile) and recomputes all CFGs.
    """

    def __init__(self) -> None:
        self.globals: List[Symbol] = []
        self.functions: Dict[str, Function] = {}

    def add_global(self, sym: Symbol) -> Symbol:
        if sym.kind is not StorageKind.GLOBAL:
            raise ValueError(f"{sym!r} is not a global symbol")
        self.globals.append(sym)
        return sym

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function {fn.name}")
        self.functions[fn.name] = fn
        return fn

    @property
    def main(self) -> Function:
        return self.functions["main"]

    def counts(self) -> Tuple[int, int, int]:
        """Module-wide ``(statements, loads, stores)``."""
        stmts = loads = stores = 0
        for fn in self.functions.values():
            s, l, st = fn.counts()
            stmts += s
            loads += l
            stores += st
        return stmts, loads, stores

    def finalize(self) -> "Module":
        """Number call sites and recompute CFGs.  Returns ``self``."""
        site_ids = itertools.count()
        for fn in self.functions.values():
            fn.compute_cfg()
            for _, stmt in fn.statements():
                if isinstance(stmt, CallStmt):
                    stmt.site_id = next(site_ids)
        return self

    def __repr__(self) -> str:
        return f"<Module {sorted(self.functions)}>"
