"""A small fluent builder for constructing IR by hand.

Used by unit tests (including the paper-example fidelity tests) and by a few
synthetic workloads; the usual entry point for programs is the
:mod:`repro.lang` frontend.

Example::

    b = FunctionBuilder("f", [("p", ptr(INT))], ret_ty=INT)
    x = b.local("x", INT)
    b.assign(x, b.load(b.read(b.params["p"]), INT))
    b.ret(b.read(x))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from .cfg import BasicBlock
from .expr import AddrOf, Bin, Const, Expr, Load, Un, VarRead
from .function import Function, Module
from .stmt import (Assign, CallStmt, CondBr, Jump, PrintStmt, Return, Stmt,
                   Store)
from .symbols import StorageKind, Symbol
from .types import INT, Type

Operand = Union[Expr, Symbol, int, float]


def as_expr(value: Operand) -> Expr:
    """Coerce a symbol / Python number to an IR expression."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, Symbol):
        return VarRead(value)
    if isinstance(value, bool):
        return Const(int(value), INT)
    if isinstance(value, int):
        return Const(value, INT)
    if isinstance(value, float):
        from .types import FLOAT

        return Const(value, FLOAT)
    raise TypeError(f"cannot use {value!r} as an expression")


class FunctionBuilder:
    """Builds one :class:`~repro.ir.function.Function` imperatively.

    Statements are emitted into ``self.block`` (initially the entry block);
    use :meth:`new_block` / :meth:`set_block` for control flow.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]] = (),
        ret_ty: Optional[Type] = None,
    ) -> None:
        param_syms = [Symbol(n, t, StorageKind.PARAM) for n, t in params]
        self.fn = Function(name, param_syms, ret_ty)
        self.params: Dict[str, Symbol] = {s.name: s for s in param_syms}
        self.block: BasicBlock = self.fn.entry

    # ---- symbols -------------------------------------------------------
    def local(self, name: str, ty: Type, array_size: int = 0) -> Symbol:
        sym = Symbol(name, ty, StorageKind.LOCAL, array_size=array_size)
        return self.fn.add_local(sym)

    # ---- expressions ---------------------------------------------------
    def read(self, sym: Symbol) -> VarRead:
        return VarRead(sym)

    def addr(self, sym: Symbol) -> AddrOf:
        sym.address_taken = True
        return AddrOf(sym)

    def load(self, addr: Operand, ty: Type) -> Load:
        return Load(as_expr(addr), ty)

    def bin(self, op: str, left: Operand, right: Operand) -> Bin:
        return Bin(op, as_expr(left), as_expr(right))

    def add(self, left: Operand, right: Operand) -> Bin:
        return self.bin("+", left, right)

    def mul(self, left: Operand, right: Operand) -> Bin:
        return self.bin("*", left, right)

    def lt(self, left: Operand, right: Operand) -> Bin:
        return self.bin("<", left, right)

    def neg(self, value: Operand) -> Un:
        return Un("-", as_expr(value))

    # ---- statements ----------------------------------------------------
    def emit(self, stmt: Stmt) -> Stmt:
        self.block.append(stmt)
        return stmt

    def assign(self, sym: Symbol, value: Operand) -> Assign:
        stmt = Assign(sym, as_expr(value))
        self.emit(stmt)
        return stmt

    def store(self, addr: Operand, value: Operand, ty: Type) -> Store:
        stmt = Store(as_expr(addr), as_expr(value), ty)
        self.emit(stmt)
        return stmt

    def call(
        self, dst: Optional[Symbol], callee: str, args: Sequence[Operand] = ()
    ) -> CallStmt:
        stmt = CallStmt(dst, callee, [as_expr(a) for a in args])
        self.emit(stmt)
        return stmt

    def emit_print(self, *args: Operand) -> PrintStmt:
        stmt = PrintStmt([as_expr(a) for a in args])
        self.emit(stmt)
        return stmt

    # ---- control flow --------------------------------------------------
    def new_block(self, hint: str = "bb") -> BasicBlock:
        return self.fn.new_block(hint)

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def jump(self, target: BasicBlock) -> None:
        self.block.terminator = Jump(target)

    def branch(
        self, cond: Operand, then_block: BasicBlock, else_block: BasicBlock
    ) -> None:
        self.block.terminator = CondBr(as_expr(cond), then_block, else_block)

    def ret(self, value: Optional[Operand] = None) -> None:
        self.block.terminator = Return(
            as_expr(value) if value is not None else None
        )

    def done(self) -> Function:
        """Finish the function (terminate a dangling block with ``return``)."""
        for block in self.fn.blocks:
            if block.terminator is None and block is self.block:
                block.terminator = Return(None)
        self.fn.compute_cfg()
        return self.fn


class ModuleBuilder:
    """Builds a :class:`~repro.ir.function.Module`."""

    def __init__(self) -> None:
        self.module = Module()

    def global_var(self, name: str, ty: Type, array_size: int = 0) -> Symbol:
        sym = Symbol(name, ty, StorageKind.GLOBAL, array_size=array_size)
        return self.module.add_global(sym)

    def function(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]] = (),
        ret_ty: Optional[Type] = None,
    ) -> FunctionBuilder:
        fb = FunctionBuilder(name, params, ret_ty)
        self.module.add_function(fb.fn)
        return fb

    def done(self) -> Module:
        return self.module.finalize()
