"""Structural verifier for the mid-level IR.

Catches malformed IR early (the frontend, the builder, and — most
importantly — the out-of-SSA lowering all run through it in tests):

* every reachable block is terminated and registered with its function;
* every symbol used is a param, local, global of the module, or a temp;
* address-of is only applied to addressable symbols;
* branch targets belong to the same function.
"""

from __future__ import annotations

from typing import Set

from .expr import AddrOf, Expr, VarRead
from .function import Function, Module
from .stmt import Assign, CallStmt, CondBr, Jump, Return
from .symbols import StorageKind, Symbol


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def verify_module(module: Module) -> None:
    """Verify every function of ``module``; raises
    :class:`VerificationError` on the first violation."""
    global_syms = set(module.globals)
    for fn in module.functions.values():
        _verify_function(fn, global_syms, set(module.functions))


def _verify_function(
    fn: Function, global_syms: Set[Symbol], fn_names: Set[str]
) -> None:
    known = global_syms | set(fn.params) | set(fn.locals)
    blocks = set(fn.blocks)

    def check_sym(sym: Symbol, where: str) -> None:
        if sym.kind is StorageKind.TEMP or sym.kind is StorageKind.VIRTUAL:
            return
        if sym not in known:
            raise VerificationError(
                f"{fn.name}: {where} uses undeclared symbol {sym!r}"
            )

    def check_expr(expr: Expr, where: str) -> None:
        for node in expr.walk():
            if isinstance(node, VarRead):
                check_sym(node.sym, where)
            elif isinstance(node, AddrOf):
                check_sym(node.sym, where)
                if node.sym.kind is StorageKind.TEMP:
                    raise VerificationError(
                        f"{fn.name}: address taken of temp {node.sym!r}"
                    )

    for block in fn.rpo():
        if block not in blocks:
            raise VerificationError(
                f"{fn.name}: reachable block {block.name} not registered"
            )
        if block.terminator is None:
            raise VerificationError(
                f"{fn.name}: block {block.name} has no terminator"
            )
        for stmt in block.stmts:
            where = f"{block.name}: {stmt}"
            for expr in stmt.exprs():
                check_expr(expr, where)
            if isinstance(stmt, Assign):
                check_sym(stmt.sym, where)
            elif isinstance(stmt, CallStmt):
                if stmt.dst is not None:
                    check_sym(stmt.dst, where)
                if (
                    stmt.callee not in fn_names
                    and stmt.callee not in ("alloc", "input", "inputf")
                ):
                    raise VerificationError(
                        f"{fn.name}: call to unknown function "
                        f"{stmt.callee!r}"
                    )
        term = block.terminator
        for expr in term.exprs():
            check_expr(expr, f"{block.name}: {term}")
        if isinstance(term, (Jump, CondBr)):
            for succ in term.successors():
                if succ not in blocks:
                    raise VerificationError(
                        f"{fn.name}: branch from {block.name} to "
                        f"unregistered block {succ.name}"
                    )
        elif isinstance(term, Return):
            if term.value is not None and fn.ret_ty is None:
                raise VerificationError(
                    f"{fn.name}: returns a value but is void"
                )
