"""Statements and terminators of the mid-level IR.

A basic block holds a list of :class:`Stmt` followed by exactly one
:class:`Terminator`.  Side effects only happen in statements: direct scalar
assignment (:class:`Assign`), indirect store (:class:`Store`), calls
(:class:`CallStmt`) and the ``print`` intrinsic (:class:`PrintStmt`, the
program's observable output used by the correctness oracle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from .expr import Expr
from .symbols import Symbol
from .types import Type

if TYPE_CHECKING:  # pragma: no cover
    from .cfg import BasicBlock


class Stmt:
    """Base class of non-terminator statements."""

    __slots__ = ()

    def exprs(self) -> Tuple[Expr, ...]:
        """The top-level expressions this statement evaluates."""
        return ()

    def walk_exprs(self) -> Iterator[Expr]:
        for expr in self.exprs():
            yield from expr.walk()


class Assign(Stmt):
    """Direct scalar assignment ``sym = value``.

    ``spec_kind`` is attached by SSAPRE's CodeMotion when the assignment
    realizes a data-speculative load: ``"advance"`` lowers to ``ld.a``
    (advanced load, allocates an ALAT entry) and ``"check"`` lowers to
    ``ld.c`` (check load, reuses the register value on an ALAT hit).
    """

    __slots__ = ("sym", "value", "spec_kind")

    def __init__(self, sym: Symbol, value: Expr,
                 spec_kind: Optional[str] = None) -> None:
        self.sym = sym
        self.value = value
        self.spec_kind = spec_kind

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.value,)

    def __str__(self) -> str:
        flag = f" [{self.spec_kind}]" if self.spec_kind else ""
        return f"{self.sym} = {self.value}{flag}"


class Store(Stmt):
    """Indirect store ``*(addr) = value`` of one cell.

    ``value_ty`` is the declared type of the stored value (used by
    type-based alias analysis, like :class:`~repro.ir.expr.Load`).
    """

    __slots__ = ("addr", "value", "value_ty")

    def __init__(self, addr: Expr, value: Expr, value_ty: Type) -> None:
        self.addr = addr
        self.value = value
        self.value_ty = value_ty

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.addr, self.value)

    def __str__(self) -> str:
        return f"*({self.addr}) = {self.value}"


class CallStmt(Stmt):
    """A call ``dst = callee(args)`` (``dst`` may be ``None``).

    ``alloc`` is the heap-allocation intrinsic: ``p = alloc(n)`` returns the
    base address of a fresh ``n``-cell object whose abstract memory location
    (LOC) is named by this call site, per the paper's §3.2.1 naming scheme.
    """

    __slots__ = ("dst", "callee", "args", "site_id")

    def __init__(
        self, dst: Optional[Symbol], callee: str, args: List[Expr]
    ) -> None:
        self.dst = dst
        self.callee = callee
        self.args = list(args)
        self.site_id: Optional[int] = None  # assigned by Module.finalize

    @property
    def is_alloc(self) -> bool:
        return self.callee == "alloc"

    def exprs(self) -> Tuple[Expr, ...]:
        return tuple(self.args)

    def __str__(self) -> str:
        call = f"{self.callee}({', '.join(map(str, self.args))})"
        return f"{self.dst} = {call}" if self.dst is not None else call


class PrintStmt(Stmt):
    """The observable-output intrinsic ``print(args...)``."""

    __slots__ = ("args",)

    def __init__(self, args: List[Expr]) -> None:
        self.args = list(args)

    def exprs(self) -> Tuple[Expr, ...]:
        return tuple(self.args)

    def __str__(self) -> str:
        return f"print({', '.join(map(str, self.args))})"


class Terminator:
    """Base class of block terminators."""

    __slots__ = ()

    def exprs(self) -> Tuple[Expr, ...]:
        return ()

    def successors(self) -> Tuple["BasicBlock", ...]:
        return ()


class Jump(Terminator):
    """Unconditional branch."""

    __slots__ = ("target",)

    def __init__(self, target: "BasicBlock") -> None:
        self.target = target

    def successors(self) -> Tuple["BasicBlock", ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"goto {self.target.name}"


class CondBr(Terminator):
    """Two-way conditional branch on ``cond != 0``."""

    __slots__ = ("cond", "then_block", "else_block")

    def __init__(
        self, cond: Expr, then_block: "BasicBlock", else_block: "BasicBlock"
    ) -> None:
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.cond,)

    def successors(self) -> Tuple["BasicBlock", ...]:
        return (self.then_block, self.else_block)

    def __str__(self) -> str:
        return (
            f"if {self.cond} goto {self.then_block.name} "
            f"else {self.else_block.name}"
        )


class Return(Terminator):
    """Function return, with optional value."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr] = None) -> None:
        self.value = value

    def exprs(self) -> Tuple[Expr, ...]:
        return (self.value,) if self.value is not None else ()

    def __str__(self) -> str:
        return f"return {self.value}" if self.value is not None else "return"
