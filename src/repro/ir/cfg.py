"""Basic blocks and control-flow-graph utilities."""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Tuple

from .stmt import Stmt, Terminator

_block_ids = itertools.count()


class BasicBlock:
    """A straight-line sequence of statements ended by one terminator.

    Blocks are created through :meth:`repro.ir.function.Function.new_block`
    and linked purely via their terminators; predecessor/successor views are
    recomputed by :meth:`repro.ir.function.Function.compute_cfg`.
    """

    __slots__ = ("name", "uid", "stmts", "terminator", "preds", "succs")

    def __init__(self, name: str) -> None:
        self.name = name
        self.uid = next(_block_ids)
        self.stmts: List[Stmt] = []
        self.terminator: Optional[Terminator] = None
        self.preds: List["BasicBlock"] = []
        self.succs: List["BasicBlock"] = []

    def append(self, stmt: Stmt) -> None:
        self.stmts.append(stmt)

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> Tuple["BasicBlock", ...]:
        if self.terminator is None:
            return ()
        return self.terminator.successors()

    def pred_index(self, pred: "BasicBlock") -> int:
        """Position of ``pred`` in this block's predecessor list (φ operand
        order)."""
        return self.preds.index(pred)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name}>"


def reverse_postorder(entry: BasicBlock) -> List[BasicBlock]:
    """Blocks reachable from ``entry`` in reverse postorder (defs before
    uses for reducible flow, the order every dataflow pass here iterates)."""
    visited = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        # Iterative DFS to avoid recursion limits on long CFGs.
        stack: List[Tuple[BasicBlock, Iterator[BasicBlock]]] = []
        visited.add(block)
        stack.append((block, iter(block.successors())))
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(entry)
    order.reverse()
    return order
