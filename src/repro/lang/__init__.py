"""Frontend for the C-like mini language: lexer, parser, and AST→IR lowering.

The usual entry point is :func:`compile_source`, which returns a finalized
:class:`repro.ir.Module`.
"""

from .ast_nodes import AProgram
from .lexer import LexError, Token, tokenize
from .lower import LowerError, compile_source, lower_program
from .parser import ParseError, parse

__all__ = [
    "AProgram", "LexError", "LowerError", "ParseError", "Token",
    "compile_source", "lower_program", "parse", "tokenize",
]
