"""Lowering from the mini-language AST to the mid-level IR.

Responsibilities:

* name resolution (globals, params, locals) and duplicate-declaration checks;
* type checking with C-style implicit conversions (int↔double, pointer
  arithmetic in cells);
* array decay (`a` of array type reads as its base address) and
  ``e[i] → *(e + i)`` desugaring;
* short-circuit ``&&`` / ``||`` via control flow into a temp;
* hoisting calls out of expression position into :class:`~repro.ir.CallStmt`;
* structured control flow (``if``/``while``/``for``/``break``/``continue``)
  into CFG blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import (FLOAT, INT, AddrOf, Assign, BasicBlock, Bin, CallStmt,
                  CondBr, Const, Expr, Function, Jump, Load, Module,
                  PrintStmt, Return, StorageKind, Store, Symbol, Type, Un,
                  VarRead, make_temp, ptr)
from .ast_nodes import (AAssign, ABinary, ABreak, ACall, AContinue, ADecl,
                        AExpr, AExprStmt, AFor, AFunction, AIf, AIndex, AName,
                        ANumber, APrint, AProgram, AReturn, AStmt, ATypeSpec,
                        AUnary, AWhile)
from .parser import parse


class LowerError(Exception):
    """Raised on a semantic error (unknown name, type mismatch, bad lvalue)."""


def type_from_spec(spec: ATypeSpec) -> Optional[Type]:
    """Convert a parsed type spec to an IR type (``None`` for ``void``)."""
    if spec.base == "void":
        if spec.pointer_depth:
            raise LowerError("void pointers are not supported")
        return None
    ty: Type = INT if spec.base == "int" else FLOAT
    for _ in range(spec.pointer_depth):
        ty = ptr(ty)
    return ty


def convert(expr: Expr, target: Type) -> Expr:
    """Insert an implicit conversion from ``expr.ty`` to ``target``."""
    src = expr.ty
    if src == target:
        return expr
    if src.is_int and target.is_float:
        return Un("float", expr)
    if src.is_float and target.is_int:
        return Un("int", expr)
    if src.is_pointer and target.is_pointer:
        # Cell addressing makes all pointers interchangeable values; keep
        # the declared type of the *access* as the TBAA handle instead.
        return expr
    if src.is_int and target.is_pointer:
        return expr  # e.g. alloc() result, null constants
    if src.is_pointer and target.is_int:
        return expr
    raise LowerError(f"cannot convert {src} to {target}")


class _FunctionLowerer:
    """Lowers one function body; tracks the current block."""

    def __init__(
        self,
        module: Module,
        fn: Function,
        globals_map: Dict[str, Symbol],
        signatures: Dict[str, Tuple[List[Type], Optional[Type]]],
    ) -> None:
        self.module = module
        self.fn = fn
        self.globals_map = globals_map
        self.signatures = signatures
        self.scope: Dict[str, Symbol] = dict(globals_map)
        for p in fn.params:
            self.scope[p.name] = p
        self.block: BasicBlock = fn.entry
        #: stack of (break_target, continue_target)
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []

    # ---- helpers --------------------------------------------------------
    def emit(self, stmt) -> None:
        self.block.append(stmt)

    def new_block(self, hint: str) -> BasicBlock:
        return self.fn.new_block(hint)

    def terminate_jump(self, target: BasicBlock) -> None:
        if self.block.terminator is None:
            self.block.terminator = Jump(target)

    def lookup(self, name: str, line: int) -> Symbol:
        try:
            return self.scope[name]
        except KeyError:
            raise LowerError(f"line {line}: unknown name {name!r}") from None

    # ---- statements -------------------------------------------------------
    def lower_body(self, body: List[AStmt]) -> None:
        for stmt in body:
            self.lower_stmt(stmt)
        if self.block.terminator is None:
            self.block.terminator = Return(None)

    def lower_stmts(self, stmts: List[AStmt]) -> None:
        for stmt in stmts:
            if self.block.terminator is not None:
                return  # unreachable code after return/break
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: AStmt) -> None:
        if isinstance(stmt, ADecl):
            self._lower_decl(stmt)
        elif isinstance(stmt, AAssign):
            self._lower_assign(stmt)
        elif isinstance(stmt, AExprStmt):
            self._lower_expr_stmt(stmt)
        elif isinstance(stmt, AIf):
            self._lower_if(stmt)
        elif isinstance(stmt, AWhile):
            self._lower_while(stmt)
        elif isinstance(stmt, AFor):
            self._lower_for(stmt)
        elif isinstance(stmt, AReturn):
            self._lower_return(stmt)
        elif isinstance(stmt, ABreak):
            self._lower_break(stmt)
        elif isinstance(stmt, AContinue):
            self._lower_continue(stmt)
        elif isinstance(stmt, APrint):
            self.emit(PrintStmt([self.lower_value(a) for a in stmt.args]))
        else:  # pragma: no cover
            raise LowerError(f"unknown statement {stmt!r}")

    def _lower_decl(self, stmt: ADecl) -> None:
        if stmt.name in self.scope and self.scope[stmt.name].kind in (
            StorageKind.LOCAL,
            StorageKind.PARAM,
        ):
            raise LowerError(f"line {stmt.line}: duplicate local {stmt.name!r}")
        ty = type_from_spec(stmt.ty)
        if ty is None:
            raise LowerError(f"line {stmt.line}: void variable {stmt.name!r}")
        sym = Symbol(stmt.name, ty, StorageKind.LOCAL,
                     array_size=stmt.array_size)
        self.fn.add_local(sym)
        self.scope[stmt.name] = sym

    def _lower_assign(self, stmt: AAssign) -> None:
        target = stmt.target
        if isinstance(target, AName):
            sym = self.lookup(target.name, stmt.line)
            if sym.is_array:
                raise LowerError(
                    f"line {stmt.line}: cannot assign to array {sym.name!r}"
                )
            value = convert(self.lower_value(stmt.value), sym.ty)
            self.emit(Assign(sym, value))
            return
        addr, value_ty = self.lower_lvalue_address(target, stmt.line)
        value = convert(self.lower_value(stmt.value), value_ty)
        self.emit(Store(addr, value, value_ty))

    def lower_lvalue_address(self, target: AExpr, line: int) -> Tuple[Expr, Type]:
        """Lower an indirect lvalue to (address expression, stored type)."""
        if isinstance(target, AUnary) and target.op == "*":
            addr = self.lower_value(target.operand)
            if not addr.ty.is_pointer:
                raise LowerError(f"line {line}: dereference of non-pointer")
            return addr, addr.ty.deref()
        if isinstance(target, AIndex):
            base = self.lower_value(target.base)
            if not base.ty.is_pointer:
                raise LowerError(f"line {line}: indexing a non-pointer")
            index = convert(self.lower_value(target.index), INT)
            return Bin("+", base, index), base.ty.deref()
        raise LowerError(f"line {line}: invalid assignment target")

    def _lower_expr_stmt(self, stmt: AExprStmt) -> None:
        if isinstance(stmt.expr, ACall):
            self._lower_call(stmt.expr, want_value=False)
        else:
            # Side-effect free expression; evaluate for errors, then drop.
            self.lower_value(stmt.expr)

    def _lower_if(self, stmt: AIf) -> None:
        then_b = self.new_block("then")
        join = self.new_block("join")
        else_b = self.new_block("else") if stmt.else_body else join
        cond = self.lower_value(stmt.cond)
        self.block.terminator = CondBr(cond, then_b, else_b)
        self.block = then_b
        self.lower_stmts(stmt.then_body)
        self.terminate_jump(join)
        if stmt.else_body:
            self.block = else_b
            self.lower_stmts(stmt.else_body)
            self.terminate_jump(join)
        self.block = join

    def _lower_while(self, stmt: AWhile) -> None:
        cond_b = self.new_block("while_cond")
        body_b = self.new_block("while_body")
        exit_b = self.new_block("while_exit")
        self.terminate_jump(cond_b)
        self.block = cond_b
        cond = self.lower_value(stmt.cond)
        self.block.terminator = CondBr(cond, body_b, exit_b)
        self.loop_stack.append((exit_b, cond_b))
        self.block = body_b
        self.lower_stmts(stmt.body)
        self.terminate_jump(cond_b)
        self.loop_stack.pop()
        self.block = exit_b

    def _lower_for(self, stmt: AFor) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond_b = self.new_block("for_cond")
        body_b = self.new_block("for_body")
        step_b = self.new_block("for_step")
        exit_b = self.new_block("for_exit")
        self.terminate_jump(cond_b)
        self.block = cond_b
        if stmt.cond is not None:
            cond = self.lower_value(stmt.cond)
            self.block.terminator = CondBr(cond, body_b, exit_b)
        else:
            self.block.terminator = Jump(body_b)
        self.loop_stack.append((exit_b, step_b))
        self.block = body_b
        self.lower_stmts(stmt.body)
        self.terminate_jump(step_b)
        self.block = step_b
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.terminate_jump(cond_b)
        self.loop_stack.pop()
        self.block = exit_b

    def _lower_return(self, stmt: AReturn) -> None:
        if stmt.value is None:
            self.block.terminator = Return(None)
            return
        if self.fn.ret_ty is None:
            raise LowerError(
                f"line {stmt.line}: void function returns a value"
            )
        value = convert(self.lower_value(stmt.value), self.fn.ret_ty)
        self.block.terminator = Return(value)

    def _lower_break(self, stmt: ABreak) -> None:
        if not self.loop_stack:
            raise LowerError(f"line {stmt.line}: break outside a loop")
        self.block.terminator = Jump(self.loop_stack[-1][0])

    def _lower_continue(self, stmt: AContinue) -> None:
        if not self.loop_stack:
            raise LowerError(f"line {stmt.line}: continue outside a loop")
        self.block.terminator = Jump(self.loop_stack[-1][1])

    # ---- expressions -------------------------------------------------------
    def lower_value(self, expr: AExpr) -> Expr:
        if isinstance(expr, ANumber):
            if expr.is_float:
                return Const(float(expr.value), FLOAT)
            return Const(int(expr.value), INT)
        if isinstance(expr, AName):
            sym = self.lookup(expr.name, expr.line)
            return VarRead(sym)
        if isinstance(expr, AUnary):
            return self._lower_unary(expr)
        if isinstance(expr, ABinary):
            return self._lower_binary(expr)
        if isinstance(expr, AIndex):
            base = self.lower_value(expr.base)
            if not base.ty.is_pointer:
                raise LowerError(f"line {expr.line}: indexing a non-pointer")
            index = convert(self.lower_value(expr.index), INT)
            return Load(Bin("+", base, index), base.ty.deref())
        if isinstance(expr, ACall):
            return self._lower_call(expr, want_value=True)
        raise LowerError(f"unknown expression {expr!r}")  # pragma: no cover

    def _lower_unary(self, expr: AUnary) -> Expr:
        if expr.op == "&":
            if not isinstance(expr.operand, AName):
                raise LowerError(
                    f"line {expr.line}: '&' requires a variable"
                )
            sym = self.lookup(expr.operand.name, expr.line)
            if sym.kind is StorageKind.TEMP:
                raise LowerError(f"line {expr.line}: '&' of a temporary")
            sym.address_taken = True
            return AddrOf(sym)
        operand = self.lower_value(expr.operand)
        if expr.op == "*":
            if not operand.ty.is_pointer:
                raise LowerError(
                    f"line {expr.line}: dereference of non-pointer"
                )
            return Load(operand, operand.ty.deref())
        if expr.op in ("!", "~"):
            return Un(expr.op, convert(operand, INT))
        return Un(expr.op, operand)  # numeric negation

    def _lower_binary(self, expr: ABinary) -> Expr:
        if expr.op in ("&&", "||"):
            return self._lower_short_circuit(expr)
        left = self.lower_value(expr.left)
        right = self.lower_value(expr.right)
        # Arithmetic/comparison promotion (pointer arithmetic stays as-is).
        if not left.ty.is_pointer and not right.ty.is_pointer:
            if left.ty.is_float or right.ty.is_float:
                left, right = convert(left, FLOAT), convert(right, FLOAT)
        return Bin(expr.op, left, right)

    def _lower_short_circuit(self, expr: ABinary) -> Expr:
        """``a && b`` / ``a || b`` with proper short-circuit control flow."""
        result = make_temp(INT, "sc")
        rhs_b = self.new_block("sc_rhs")
        join = self.new_block("sc_join")
        left = convert(self.lower_value(expr.left), INT)
        short_b = self.new_block("sc_short")
        if expr.op == "&&":
            self.block.terminator = CondBr(left, rhs_b, short_b)
            short_value = 0
        else:
            self.block.terminator = CondBr(left, short_b, rhs_b)
            short_value = 1
        self.block = short_b
        self.emit(Assign(result, Const(short_value, INT)))
        self.terminate_jump(join)
        self.block = rhs_b
        right = convert(self.lower_value(expr.right), INT)
        self.emit(Assign(result, Bin("!=", right, Const(0, INT))))
        self.terminate_jump(join)
        self.block = join
        return VarRead(result)

    def _lower_call(self, expr: ACall, want_value: bool) -> Expr:
        if expr.callee in ("input", "inputf"):
            if expr.args:
                raise LowerError(f"line {expr.line}: input takes no args")
            ty = INT if expr.callee == "input" else FLOAT
            dst = make_temp(ty, "in")
            self.emit(CallStmt(dst, expr.callee, []))
            return VarRead(dst)
        if expr.callee == "alloc":
            if len(expr.args) != 1:
                raise LowerError(f"line {expr.line}: alloc takes one argument")
            size = convert(self.lower_value(expr.args[0]), INT)
            dst = make_temp(ptr(INT), "heap")
            self.emit(CallStmt(dst, "alloc", [size]))
            return VarRead(dst)
        if expr.callee not in self.signatures:
            raise LowerError(
                f"line {expr.line}: call to unknown function {expr.callee!r}"
            )
        param_tys, ret_ty = self.signatures[expr.callee]
        if len(expr.args) != len(param_tys):
            raise LowerError(
                f"line {expr.line}: {expr.callee} expects "
                f"{len(param_tys)} arguments, got {len(expr.args)}"
            )
        args = [
            convert(self.lower_value(a), t)
            for a, t in zip(expr.args, param_tys)
        ]
        if want_value:
            if ret_ty is None:
                raise LowerError(
                    f"line {expr.line}: void call used as a value"
                )
            dst = make_temp(ret_ty, "ret")
            self.emit(CallStmt(dst, expr.callee, args))
            return VarRead(dst)
        self.emit(CallStmt(None, expr.callee, args))
        return Const(0, INT)


def lower_program(program: AProgram) -> Module:
    """Lower a parsed program to a finalized, CFG-complete module."""
    module = Module()
    globals_map: Dict[str, Symbol] = {}
    for decl in program.globals:
        ty = type_from_spec(decl.ty)
        if ty is None:
            raise LowerError(f"line {decl.line}: void global {decl.name!r}")
        if decl.name in globals_map:
            raise LowerError(
                f"line {decl.line}: duplicate global {decl.name!r}"
            )
        sym = Symbol(decl.name, ty, StorageKind.GLOBAL,
                     array_size=decl.array_size)
        module.add_global(sym)
        globals_map[decl.name] = sym

    signatures: Dict[str, Tuple[List[Type], Optional[Type]]] = {}
    functions: List[Tuple[AFunction, Function]] = []
    for afn in program.functions:
        param_tys: List[Type] = []
        params: List[Symbol] = []
        for p in afn.params:
            ty = type_from_spec(p.ty)
            if ty is None:
                raise LowerError(f"void parameter in {afn.name}")
            param_tys.append(ty)
            params.append(Symbol(p.name, ty, StorageKind.PARAM))
        ret_ty = type_from_spec(afn.ret_ty)
        fn = Function(afn.name, params, ret_ty)
        module.add_function(fn)
        signatures[afn.name] = (param_tys, ret_ty)
        functions.append((afn, fn))

    for afn, fn in functions:
        lowerer = _FunctionLowerer(module, fn, globals_map, signatures)
        lowerer.lower_body(afn.body)
    return module.finalize()


def compile_source(source: str) -> Module:
    """Parse + lower: the frontend entry point."""
    return lower_program(parse(source))
