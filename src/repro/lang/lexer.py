"""Lexer for the C-like mini language.

The language is the source substrate standing in for the paper's C
benchmarks: scalars (``int`` / ``double``), multi-level pointers, fixed-size
arrays, functions, ``if``/``while``/``for``, ``alloc`` (heap allocation) and
``print`` (observable output).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = frozenset(
    {"int", "double", "void", "if", "else", "while", "for", "return",
     "break", "continue", "print", "alloc"}
)

#: Multi-char operators first so the tokenizer is greedy.
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<float>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<id>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|[-+*/%<>=!&|^~(){}\[\];,])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``int``, ``float``, ``id``, a keyword, an operator spelling,
    or ``eof``.  ``value`` carries the literal/identifier text.
    """

    kind: str
    value: str
    line: int


class LexError(Exception):
    """Raised on an unrecognised character."""


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; raises :class:`LexError` on bad input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise LexError(f"line {line}: unexpected character {source[pos]!r}")
        text = m.group(0)
        if m.lastgroup == "ws":
            line += text.count("\n")
        elif m.lastgroup == "float":
            yield Token("float", text, line)
        elif m.lastgroup == "int":
            yield Token("int_lit", text, line)
        elif m.lastgroup == "id":
            kind = text if text in KEYWORDS else "id"
            yield Token(kind, text, line)
        else:
            yield Token(text, text, line)
        pos = m.end()
    yield Token("eof", "", line)
