"""AST of the C-like mini language (produced by :mod:`repro.lang.parser`)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# ---- expressions ---------------------------------------------------------
class AExpr:
    """Base class of AST expressions."""


@dataclass
class ANumber(AExpr):
    value: float
    is_float: bool
    line: int = 0


@dataclass
class AName(AExpr):
    name: str
    line: int = 0


@dataclass
class AUnary(AExpr):
    op: str          # '-', '!', '*', '&'
    operand: AExpr
    line: int = 0


@dataclass
class ABinary(AExpr):
    op: str
    left: AExpr
    right: AExpr
    line: int = 0


@dataclass
class AIndex(AExpr):
    """``base[index]`` — sugar for ``*(base + index)``."""

    base: AExpr
    index: AExpr
    line: int = 0


@dataclass
class ACall(AExpr):
    """A call in expression position (including the ``alloc`` intrinsic)."""

    callee: str
    args: List[AExpr]
    line: int = 0


# ---- types in declarations ----------------------------------------------
@dataclass
class ATypeSpec:
    """``base`` is ``int``/``double``/``void`` plus pointer depth."""

    base: str
    pointer_depth: int = 0


# ---- statements ----------------------------------------------------------
class AStmt:
    """Base class of AST statements."""


@dataclass
class ADecl(AStmt):
    """Local/global declaration: ``double *p;`` or ``int a[100];``."""

    ty: ATypeSpec
    name: str
    array_size: int = 0
    line: int = 0


@dataclass
class AAssign(AStmt):
    """``lhs = value`` (or compound ``op=`` pre-expanded by the parser)."""

    target: AExpr        # AName, AUnary('*'), or AIndex
    value: AExpr
    line: int = 0


@dataclass
class AExprStmt(AStmt):
    """Expression evaluated for effect (a bare call)."""

    expr: AExpr
    line: int = 0


@dataclass
class AIf(AStmt):
    cond: AExpr
    then_body: List[AStmt]
    else_body: List[AStmt] = field(default_factory=list)
    line: int = 0


@dataclass
class AWhile(AStmt):
    cond: AExpr
    body: List[AStmt]
    line: int = 0


@dataclass
class AFor(AStmt):
    init: Optional[AStmt]
    cond: Optional[AExpr]
    step: Optional[AStmt]
    body: List[AStmt]
    line: int = 0


@dataclass
class AReturn(AStmt):
    value: Optional[AExpr]
    line: int = 0


@dataclass
class ABreak(AStmt):
    line: int = 0


@dataclass
class AContinue(AStmt):
    line: int = 0


@dataclass
class APrint(AStmt):
    args: List[AExpr]
    line: int = 0


# ---- top level ------------------------------------------------------------
@dataclass
class AParam:
    ty: ATypeSpec
    name: str


@dataclass
class AFunction:
    ret_ty: ATypeSpec
    name: str
    params: List[AParam]
    body: List[AStmt]
    line: int = 0


@dataclass
class AProgram:
    globals: List[ADecl]
    functions: List[AFunction]
