"""Recursive-descent parser for the C-like mini language.

Grammar (informally)::

    program   := (global_decl | function)*
    function  := type ident '(' params ')' '{' stmt* '}'
    stmt      := decl | assign ';' | call ';' | 'print' '(' args ')' ';'
               | 'if' '(' expr ')' block ('else' (block | if_stmt))?
               | 'while' '(' expr ')' block
               | 'for' '(' simple? ';' expr? ';' simple? ')' block
               | 'return' expr? ';' | 'break' ';' | 'continue' ';'
    assign    := lvalue ('='|'+='|'-='|'*='|'/=') expr
    lvalue    := ident | '*' unary | postfix '[' expr ']'

Expressions use precedence climbing; ``&&``/``||`` are genuine operators
(lowered with short-circuit control flow), ``e[i]`` is sugar for
``*(e + i)``.
"""

from __future__ import annotations

import copy
from typing import List, Optional

from .ast_nodes import (AAssign, ABinary, ABreak, ACall, AContinue, ADecl,
                        AExpr, AExprStmt, AFor, AFunction, AIf, AIndex, AName,
                        ANumber, AParam, APrint, AProgram, AReturn, AStmt,
                        ATypeSpec, AUnary, AWhile)
from .lexer import Token, tokenize


class ParseError(Exception):
    """Raised on a syntax error, with the offending line number."""


_BIN_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/"}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # ---- token plumbing -----------------------------------------------
    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        tok = self.tok
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        if self.tok.kind != kind:
            raise ParseError(
                f"line {self.tok.line}: expected {kind!r}, "
                f"found {self.tok.value!r}"
            )
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        if self.tok.kind == kind:
            return self.advance()
        return None

    # ---- top level -----------------------------------------------------
    def parse_program(self) -> AProgram:
        globals_: List[ADecl] = []
        functions: List[AFunction] = []
        while self.tok.kind != "eof":
            ty = self.parse_type()
            name = self.expect("id")
            if self.tok.kind == "(":
                functions.append(self.parse_function_rest(ty, name))
            else:
                globals_.append(self.parse_decl_rest(ty, name))
        return AProgram(globals_, functions)

    def parse_type(self) -> ATypeSpec:
        if self.tok.kind not in ("int", "double", "void"):
            raise ParseError(
                f"line {self.tok.line}: expected a type, "
                f"found {self.tok.value!r}"
            )
        base = self.advance().kind
        depth = 0
        while self.accept("*"):
            depth += 1
        return ATypeSpec(base, depth)

    def parse_decl_rest(self, ty: ATypeSpec, name: Token) -> ADecl:
        array_size = 0
        if self.accept("["):
            array_size = int(self.expect("int_lit").value)
            self.expect("]")
        self.expect(";")
        return ADecl(ty, name.value, array_size, line=name.line)

    def parse_function_rest(self, ret_ty: ATypeSpec, name: Token) -> AFunction:
        self.expect("(")
        params: List[AParam] = []
        if self.tok.kind != ")":
            while True:
                pty = self.parse_type()
                pname = self.expect("id")
                params.append(AParam(pty, pname.value))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return AFunction(ret_ty, name.value, params, body, line=name.line)

    # ---- statements ------------------------------------------------------
    def parse_block(self) -> List[AStmt]:
        self.expect("{")
        stmts: List[AStmt] = []
        while self.tok.kind != "}":
            stmts.append(self.parse_stmt())
        self.expect("}")
        return stmts

    def parse_stmt(self) -> AStmt:
        kind = self.tok.kind
        if kind in ("int", "double"):
            ty = self.parse_type()
            name = self.expect("id")
            return self.parse_decl_rest(ty, name)
        if kind == "if":
            return self.parse_if()
        if kind == "while":
            line = self.advance().line
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            return AWhile(cond, self.parse_block(), line=line)
        if kind == "for":
            return self.parse_for()
        if kind == "return":
            line = self.advance().line
            value = None if self.tok.kind == ";" else self.parse_expr()
            self.expect(";")
            return AReturn(value, line=line)
        if kind == "break":
            line = self.advance().line
            self.expect(";")
            return ABreak(line=line)
        if kind == "continue":
            line = self.advance().line
            self.expect(";")
            return AContinue(line=line)
        if kind == "print":
            line = self.advance().line
            self.expect("(")
            args = self.parse_args()
            self.expect(")")
            self.expect(";")
            return APrint(args, line=line)
        stmt = self.parse_simple_stmt()
        self.expect(";")
        return stmt

    def parse_if(self) -> AIf:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.parse_block()
        else_body: List[AStmt] = []
        if self.accept("else"):
            if self.tok.kind == "if":
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return AIf(cond, then_body, else_body, line=line)

    def parse_for(self) -> AFor:
        line = self.expect("for").line
        self.expect("(")
        init = None if self.tok.kind == ";" else self.parse_simple_stmt()
        self.expect(";")
        cond = None if self.tok.kind == ";" else self.parse_expr()
        self.expect(";")
        step = None if self.tok.kind == ")" else self.parse_simple_stmt()
        self.expect(")")
        return AFor(init, cond, step, self.parse_block(), line=line)

    def parse_simple_stmt(self) -> AStmt:
        """Assignment or expression-statement (no trailing ';')."""
        line = self.tok.line
        expr = self.parse_expr()
        if self.tok.kind == "=":
            self.advance()
            value = self.parse_expr()
            return AAssign(expr, value, line=line)
        if self.tok.kind in _COMPOUND_OPS:
            op = self.advance().kind
            value = self.parse_expr()
            rhs = ABinary(_COMPOUND_OPS[op], copy.deepcopy(expr), value,
                          line=line)
            return AAssign(expr, rhs, line=line)
        return AExprStmt(expr, line=line)

    # ---- expressions -----------------------------------------------------
    def parse_args(self) -> List[AExpr]:
        args: List[AExpr] = []
        if self.tok.kind != ")":
            while True:
                args.append(self.parse_expr())
                if not self.accept(","):
                    break
        return args

    def parse_expr(self, min_prec: int = 1) -> AExpr:
        left = self.parse_unary()
        while True:
            op = self.tok.kind
            prec = _BIN_PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return left
            line = self.advance().line
            right = self.parse_expr(prec + 1)
            left = ABinary(op, left, right, line=line)

    def parse_unary(self) -> AExpr:
        tok = self.tok
        if tok.kind in ("-", "!", "*", "&", "~"):
            self.advance()
            return AUnary(tok.kind, self.parse_unary(), line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> AExpr:
        expr = self.parse_primary()
        while self.tok.kind == "[":
            line = self.advance().line
            index = self.parse_expr()
            self.expect("]")
            expr = AIndex(expr, index, line=line)
        return expr

    def parse_primary(self) -> AExpr:
        tok = self.tok
        if tok.kind == "int_lit":
            self.advance()
            return ANumber(int(tok.value), is_float=False, line=tok.line)
        if tok.kind == "float":
            self.advance()
            return ANumber(float(tok.value), is_float=True, line=tok.line)
        if tok.kind in ("id", "alloc"):
            self.advance()
            if self.tok.kind == "(":
                self.advance()
                args = self.parse_args()
                self.expect(")")
                return ACall(tok.value, args, line=tok.line)
            return AName(tok.value, line=tok.line)
        if tok.kind == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise ParseError(
            f"line {tok.line}: unexpected token {tok.value!r} in expression"
        )


def parse(source: str) -> AProgram:
    """Parse a whole program."""
    return Parser(source).parse_program()
