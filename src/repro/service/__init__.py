"""Compile-as-a-service: a long-lived daemon for the whole pipeline.

The :class:`~repro.pipeline.CompileCache` (docs/performance.md) made a
warm compile ~1000x cheaper than cold, but every caller still paid
process startup and held a private cache.  This package turns the
pipeline into a shared service (docs/service.md):

* :mod:`repro.service.daemon` — a stdlib-``asyncio`` daemon speaking
  newline-delimited JSON over TCP: batched ``compile``/``run``/
  ``campaign`` requests, a pool of worker processes sharding the
  content-addressed cache by key hash, in-flight deduplication (one
  compile, N waiters), per-request timeouts, typed worker-crash
  errors, graceful drain on SIGTERM;
* :mod:`repro.service.client` — sync and async client libraries with
  retry/backoff policies and a circuit breaker for dead daemons;
* :mod:`repro.service.backoff` — deterministic (seeded-jitter)
  exponential backoff, retry policy, circuit breaker, readiness probe;
* :mod:`repro.service.persist` — on-disk response store behind
  ``--cache-dir`` so a restarted daemon answers warm keys immediately;
* :mod:`repro.service.loadgen` — a load generator with configurable
  concurrency and key skew, feeding ``BENCH_service.json``;
* :mod:`repro.service.registry` — named server configurations
  resolved and composed from strings (``"profile+superblock"``);
* :mod:`repro.service.protocol` — the wire schema both sides and the
  docs round-trip test validate against.

CLI surface: ``python -m repro serve`` / ``repro submit`` /
``repro loadgen``.
"""

from .backoff import Backoff, CircuitBreaker, RetryPolicy, wait_ready
from .client import (AsyncServiceClient, ServiceClient, ServiceClosed,
                     ServiceError, ServiceTimeout, ServiceUnavailable)
from .daemon import Daemon, DaemonThread, run_daemon
from .loadgen import LoadReport, run_load
from .persist import CacheStore
from .protocol import ProtocolError, request_key, validate_request, \
    validate_response
from .registry import available_configs, register_config, \
    register_modifier, resolve_config

__all__ = [
    "AsyncServiceClient", "Backoff", "CacheStore", "CircuitBreaker",
    "Daemon", "DaemonThread", "LoadReport", "ProtocolError",
    "RetryPolicy", "ServiceClient", "ServiceClosed", "ServiceError",
    "ServiceTimeout", "ServiceUnavailable",
    "available_configs", "register_config", "register_modifier",
    "request_key", "resolve_config", "run_daemon", "run_load",
    "validate_request", "validate_response", "wait_ready",
]
