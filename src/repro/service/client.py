"""Client libraries for the compile service (docs/service.md).

:class:`ServiceClient` is the synchronous library (plain sockets, no
event loop — scripts and tests); :class:`AsyncServiceClient` is the
``asyncio`` twin with the same surface.  Both speak the NDJSON
protocol of :mod:`repro.service.protocol` and raise

* :class:`ServiceError` for typed daemon errors (``.type`` is one of
  :data:`~repro.service.protocol.ERROR_TYPES`);
* :class:`ServiceTimeout` — a :class:`ServiceError` subclass — when
  either the client-side socket deadline or the daemon-side
  ``timeout_ms`` elapses, so callers see one exception for "too slow"
  however it was detected, never a hang.

Batching: :meth:`ServiceClient.submit` pipelines many requests on one
connection and yields responses **as they complete** (tagged by
``id``), which is the protocol's batching model.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import Any, AsyncIterator, Dict, Iterator, List, Optional

from . import protocol


class ServiceError(Exception):
    """A typed error response from the daemon."""

    def __init__(self, err_type: str, message: str) -> None:
        super().__init__(f"{err_type}: {message}")
        self.type = err_type
        self.message = message


class ServiceTimeout(ServiceError):
    """The request did not produce a result in time (client socket
    deadline or daemon-side ``timeout_ms``)."""

    def __init__(self, message: str) -> None:
        super().__init__("timeout", message)


def raise_for_error(resp: Dict[str, Any]) -> Dict[str, Any]:
    """Raise the matching exception for an error response; return ok
    responses unchanged."""
    if resp.get("ok"):
        return resp
    error = resp.get("error") or {}
    err_type = error.get("type", "internal")
    message = error.get("message", "unknown error")
    if err_type == "timeout":
        raise ServiceTimeout(message)
    raise ServiceError(err_type, message)


def _build_request(rid: Any, op: str, *, source: Optional[str] = None,
                   config: Optional[str] = None,
                   train: Optional[List[float]] = None,
                   ref: Optional[List[float]] = None,
                   check: Optional[bool] = None,
                   fuel: Optional[int] = None,
                   failsafe: Optional[bool] = None,
                   workloads: Optional[List[str]] = None,
                   scenarios: Optional[List[str]] = None,
                   seeds: Optional[List[int]] = None,
                   timeout_ms: Optional[float] = None) -> Dict[str, Any]:
    req: Dict[str, Any] = {"id": rid, "op": op}
    for name, value in (("source", source), ("config", config),
                        ("train", train), ("ref", ref),
                        ("check", check), ("fuel", fuel),
                        ("failsafe", failsafe), ("workloads", workloads),
                        ("scenarios", scenarios), ("seeds", seeds),
                        ("timeout_ms", timeout_ms)):
        if value is not None:
            req[name] = value
    return req


class ServiceClient:
    """Synchronous client: one TCP connection, blocking calls.

    ``timeout`` is the client-side per-request socket deadline in
    seconds (None blocks forever).  After a :class:`ServiceTimeout`
    the connection's stream position is unknown, so the client
    reconnects transparently before the next request.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7457,
                 timeout: Optional[float] = None,
                 connect_retry: float = 0.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retry = connect_retry
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._ids = itertools.count(1)

    # ---- connection ------------------------------------------------------
    def connect(self) -> "ServiceClient":
        """Open the connection (retrying for up to ``connect_retry``
        seconds — lets callers race a daemon that is still booting)."""
        import time

        deadline = time.monotonic() + self.connect_retry
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._rfile = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def _ensure(self) -> None:
        if self._sock is None:
            self.connect()

    def __enter__(self) -> "ServiceClient":
        self._ensure()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ---- raw request/response --------------------------------------------
    def _send(self, payload: Any) -> None:
        self._ensure()
        assert self._sock is not None
        self._sock.sendall(protocol.encode(payload))

    def _recv(self) -> Dict[str, Any]:
        assert self._rfile is not None
        try:
            line = self._rfile.readline()
        except socket.timeout:
            self.close()  # stream position unknown: force a reconnect
            raise ServiceTimeout(
                f"no response within {self.timeout}s") from None
        if not line:
            self.close()
            raise ServiceError("internal",
                               "connection closed by the daemon")
        return protocol.validate_response(protocol.decode_line(line))

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, await its response, raise on typed
        errors; returns the full ok response (``result`` + metadata)."""
        if req.get("id") is None:
            req["id"] = next(self._ids)
        self._send(req)
        while True:
            resp = self._recv()
            if resp.get("id") == req["id"]:
                return raise_for_error(resp)
            # a straggler from an abandoned pipeline: drop it

    def submit(self, requests: List[Dict[str, Any]]
               ) -> Iterator[Dict[str, Any]]:
        """Pipeline a batch; yield raw responses in completion order
        (match them to requests by ``id``; no exception is raised for
        per-request errors — inspect ``resp["ok"]``)."""
        for req in requests:
            if req.get("id") is None:
                req["id"] = next(self._ids)
        self._send(requests)
        for _ in requests:
            yield self._recv()

    # ---- convenience wrappers --------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})["result"]

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["result"]

    def compile_source(self, source: str, **kwargs: Any) -> Dict[str, Any]:
        return self.request(_build_request(None, "compile", source=source,
                                           **kwargs))

    def run_source(self, source: str, **kwargs: Any) -> Dict[str, Any]:
        return self.request(_build_request(None, "run", source=source,
                                           **kwargs))

    def campaign(self, **kwargs: Any) -> Dict[str, Any]:
        return self.request(_build_request(None, "campaign", **kwargs))


class AsyncServiceClient:
    """The ``asyncio`` client: same surface as :class:`ServiceClient`,
    every call a coroutine; :meth:`submit` is an async iterator."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7457,
                 timeout: Optional[float] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        if self._writer is None:
            await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def _send(self, payload: Any) -> None:
        if self._writer is None:
            await self.connect()
        assert self._writer is not None
        self._writer.write(protocol.encode(payload))
        await self._writer.drain()

    async def _recv(self) -> Dict[str, Any]:
        assert self._reader is not None
        try:
            line = await asyncio.wait_for(self._reader.readline(),
                                          self.timeout)
        except asyncio.TimeoutError:
            await self.close()
            raise ServiceTimeout(
                f"no response within {self.timeout}s") from None
        if not line:
            await self.close()
            raise ServiceError("internal",
                               "connection closed by the daemon")
        return protocol.validate_response(protocol.decode_line(line))

    async def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        if req.get("id") is None:
            req["id"] = next(self._ids)
        await self._send(req)
        while True:
            resp = await self._recv()
            if resp.get("id") == req["id"]:
                return raise_for_error(resp)

    async def submit(self, requests: List[Dict[str, Any]]
                     ) -> AsyncIterator[Dict[str, Any]]:
        for req in requests:
            if req.get("id") is None:
                req["id"] = next(self._ids)
        await self._send(requests)
        for _ in requests:
            yield await self._recv()

    async def ping(self) -> Dict[str, Any]:
        return (await self.request({"op": "ping"}))["result"]

    async def stats(self) -> Dict[str, Any]:
        return (await self.request({"op": "stats"}))["result"]

    async def compile_source(self, source: str,
                             **kwargs: Any) -> Dict[str, Any]:
        return await self.request(_build_request(None, "compile",
                                                 source=source, **kwargs))

    async def run_source(self, source: str,
                         **kwargs: Any) -> Dict[str, Any]:
        return await self.request(_build_request(None, "run",
                                                 source=source, **kwargs))

    async def campaign(self, **kwargs: Any) -> Dict[str, Any]:
        return await self.request(_build_request(None, "campaign",
                                                 **kwargs))
