"""Client libraries for the compile service (docs/service.md).

:class:`ServiceClient` is the synchronous library (plain sockets, no
event loop — scripts and tests); :class:`AsyncServiceClient` is the
``asyncio`` twin with the same surface.  Both speak the NDJSON
protocol of :mod:`repro.service.protocol` and raise

* :class:`ServiceError` for typed daemon errors (``.type`` is one of
  :data:`~repro.service.protocol.ERROR_TYPES`);
* :class:`ServiceTimeout` — a :class:`ServiceError` subclass — when
  either the client-side socket deadline or the daemon-side
  ``timeout_ms`` elapses, so callers see one exception for "too slow"
  however it was detected, never a hang.

Batching: :meth:`ServiceClient.submit` pipelines many requests on one
connection and yields responses **as they complete** (tagged by
``id``), which is the protocol's batching model.

Resilience (docs/service.md, "Overload & recovery"): construct a client
with a :class:`~repro.service.backoff.RetryPolicy` and it retries shed
(``overload``) requests with exponential, deterministically-jittered
backoff, honouring the daemon's ``retry_after_ms`` hint, within a
bounded retry budget; add a
:class:`~repro.service.backoff.CircuitBreaker` and a dead daemon fails
fast with :class:`ServiceUnavailable` instead of paying a connect
timeout per call.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from typing import Any, AsyncIterator, Dict, Iterator, List, Optional

from . import protocol
from .backoff import CircuitBreaker, RetryPolicy


class ServiceError(Exception):
    """A typed error response from the daemon."""

    def __init__(self, err_type: str, message: str,
                 retry_after_ms: Optional[float] = None) -> None:
        super().__init__(f"{err_type}: {message}")
        self.type = err_type
        self.message = message
        #: the daemon's backoff hint (``overload`` sheds carry one)
        self.retry_after_ms = retry_after_ms


class ServiceTimeout(ServiceError):
    """The request did not produce a result in time (client socket
    deadline or daemon-side ``timeout_ms``)."""

    def __init__(self, message: str) -> None:
        super().__init__("timeout", message)


class ServiceClosed(ServiceError):
    """The daemon closed the connection before answering."""

    def __init__(self, message: str) -> None:
        super().__init__("internal", message)


class ServiceUnavailable(ServiceError):
    """The daemon cannot be reached at all: the circuit breaker is
    open, or the retry budget was spent on connection failures."""

    def __init__(self, message: str) -> None:
        super().__init__("unavailable", message)


def raise_for_error(resp: Dict[str, Any]) -> Dict[str, Any]:
    """Raise the matching exception for an error response; return ok
    responses unchanged."""
    if resp.get("ok"):
        return resp
    error = resp.get("error") or {}
    err_type = error.get("type", "internal")
    message = error.get("message", "unknown error")
    if err_type == "timeout":
        raise ServiceTimeout(message)
    raise ServiceError(err_type, message,
                       retry_after_ms=error.get("retry_after_ms"))


def _build_request(rid: Any, op: str, *, source: Optional[str] = None,
                   config: Optional[str] = None,
                   train: Optional[List[float]] = None,
                   ref: Optional[List[float]] = None,
                   check: Optional[bool] = None,
                   fuel: Optional[int] = None,
                   failsafe: Optional[bool] = None,
                   workloads: Optional[List[str]] = None,
                   scenarios: Optional[List[str]] = None,
                   seeds: Optional[List[int]] = None,
                   timeout_ms: Optional[float] = None) -> Dict[str, Any]:
    req: Dict[str, Any] = {"id": rid, "op": op}
    for name, value in (("source", source), ("config", config),
                        ("train", train), ("ref", ref),
                        ("check", check), ("fuel", fuel),
                        ("failsafe", failsafe), ("workloads", workloads),
                        ("scenarios", scenarios), ("seeds", seeds),
                        ("timeout_ms", timeout_ms)):
        if value is not None:
            req[name] = value
    return req


class ServiceClient:
    """Synchronous client: one TCP connection, blocking calls.

    ``timeout`` is the client-side per-request socket deadline in
    seconds (None blocks forever).  After a :class:`ServiceTimeout`
    the connection's stream position is unknown, so the client
    reconnects transparently before the next request.

    ``retry`` (a :class:`~repro.service.backoff.RetryPolicy`) makes
    :meth:`request` spend a bounded budget retrying shed/retryable
    typed errors and connection failures with seeded-jitter backoff;
    ``breaker`` (a :class:`~repro.service.backoff.CircuitBreaker`)
    makes a dead daemon fail fast with :class:`ServiceUnavailable`.
    Both default to off, preserving the one-shot behaviour.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7457,
                 timeout: Optional[float] = None,
                 connect_retry: float = 0.0,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retry = connect_retry
        self.retry = retry
        self.breaker = breaker
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._ids = itertools.count(1)

    # ---- connection ------------------------------------------------------
    def connect(self) -> "ServiceClient":
        """Open the connection (retrying for up to ``connect_retry``
        seconds — lets callers race a daemon that is still booting)."""
        import time

        deadline = time.monotonic() + self.connect_retry
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._rfile = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def _ensure(self) -> None:
        if self._sock is None:
            self.connect()

    def __enter__(self) -> "ServiceClient":
        self._ensure()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ---- raw request/response --------------------------------------------
    def _send(self, payload: Any) -> None:
        self._ensure()
        assert self._sock is not None
        self._sock.sendall(protocol.encode(payload))

    def _recv(self) -> Dict[str, Any]:
        assert self._rfile is not None
        try:
            line = self._rfile.readline()
        except socket.timeout:
            self.close()  # stream position unknown: force a reconnect
            raise ServiceTimeout(
                f"no response within {self.timeout}s") from None
        if not line:
            self.close()
            raise ServiceClosed("connection closed by the daemon")
        return protocol.validate_response(protocol.decode_line(line))

    # ---- resilient request loop ------------------------------------------
    def _check_breaker(self) -> None:
        if self.breaker is not None and not self.breaker.allow():
            raise ServiceUnavailable(
                f"circuit open: {self.breaker.failures} consecutive "
                f"connection failures to {self.host}:{self.port}")

    def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, await its response, raise on typed
        errors; returns the full ok response (``result`` + metadata).

        With a :class:`~repro.service.backoff.RetryPolicy`, retryable
        typed errors (``overload`` by default, honouring the daemon's
        ``retry_after_ms``) and connection failures are retried with
        backoff until the budget runs out."""
        if req.get("id") is None:
            req["id"] = next(self._ids)
        policy = self.retry
        backoff = policy.backoff() if policy is not None else None
        attempt = 0
        while True:
            self._check_breaker()
            try:
                self._send(req)
                while True:
                    resp = self._recv()
                    if resp.get("id") == req["id"]:
                        break
                    # a straggler from an abandoned pipeline: drop it
            except (OSError, ServiceClosed) as exc:
                if self.breaker is not None:
                    self.breaker.record_failure()
                self.close()
                if policy is not None and policy.retry_connect \
                        and attempt < policy.retries:
                    time.sleep(backoff.delay_s(attempt))
                    attempt += 1
                    continue
                if self.breaker is not None and not self.breaker.allow():
                    raise ServiceUnavailable(
                        f"daemon at {self.host}:{self.port} unreachable: "
                        f"{exc}") from exc
                raise
            except ServiceTimeout:
                if policy is not None \
                        and "timeout" in policy.retry_types \
                        and attempt < policy.retries:
                    time.sleep(backoff.delay_s(attempt))
                    attempt += 1
                    continue
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            try:
                return raise_for_error(resp)
            except ServiceError as exc:
                if policy is not None and exc.type in policy.retry_types \
                        and attempt < policy.retries:
                    time.sleep(backoff.delay_s(attempt,
                                               exc.retry_after_ms))
                    attempt += 1
                    continue
                raise

    def submit(self, requests: List[Dict[str, Any]],
               max_resends: int = 2) -> Iterator[Dict[str, Any]]:
        """Pipeline a batch; yield raw responses in completion order
        (match them to requests by ``id``; no exception is raised for
        per-request errors — inspect ``resp["ok"]``).

        If the connection times out or drops mid-batch, the client
        reconnects and **resends every request not yet answered** (up
        to ``max_resends`` times) — server-side dedup and the shard
        caches make resends cheap — so a batch never silently loses
        its tail.  The budget spent, the timeout propagates."""
        for req in requests:
            if req.get("id") is None:
                req["id"] = next(self._ids)
        pending = {req["id"]: req for req in requests}
        self._send(list(requests))
        resends = 0
        while pending:
            try:
                resp = self._recv()
            except (ServiceTimeout, ServiceClosed, OSError):
                if resends >= max_resends:
                    raise
                resends += 1
                self.close()
                self._send(list(pending.values()))  # reconnects
                continue
            rid = resp.get("id")
            if rid in pending:
                del pending[rid]
                yield resp
            # a response for an already-answered (resent) id: drop it

    # ---- convenience wrappers --------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})["result"]

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["result"]

    def compile_source(self, source: str, **kwargs: Any) -> Dict[str, Any]:
        return self.request(_build_request(None, "compile", source=source,
                                           **kwargs))

    def run_source(self, source: str, **kwargs: Any) -> Dict[str, Any]:
        return self.request(_build_request(None, "run", source=source,
                                           **kwargs))

    def campaign(self, **kwargs: Any) -> Dict[str, Any]:
        return self.request(_build_request(None, "campaign", **kwargs))


class AsyncServiceClient:
    """The ``asyncio`` client: same surface as :class:`ServiceClient`,
    every call a coroutine; :meth:`submit` is an async iterator."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7457,
                 timeout: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        if self._writer is None:
            await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def _send(self, payload: Any) -> None:
        if self._writer is None:
            await self.connect()
        assert self._writer is not None
        self._writer.write(protocol.encode(payload))
        await self._writer.drain()

    async def _recv(self) -> Dict[str, Any]:
        assert self._reader is not None
        try:
            line = await asyncio.wait_for(self._reader.readline(),
                                          self.timeout)
        except asyncio.TimeoutError:
            await self.close()
            raise ServiceTimeout(
                f"no response within {self.timeout}s") from None
        if not line:
            await self.close()
            raise ServiceClosed("connection closed by the daemon")
        return protocol.validate_response(protocol.decode_line(line))

    def _check_breaker(self) -> None:
        if self.breaker is not None and not self.breaker.allow():
            raise ServiceUnavailable(
                f"circuit open: {self.breaker.failures} consecutive "
                f"connection failures to {self.host}:{self.port}")

    async def request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Async twin of :meth:`ServiceClient.request`, including the
        retry/backoff/circuit-breaker discipline."""
        if req.get("id") is None:
            req["id"] = next(self._ids)
        policy = self.retry
        backoff = policy.backoff() if policy is not None else None
        attempt = 0
        while True:
            self._check_breaker()
            try:
                await self._send(req)
                while True:
                    resp = await self._recv()
                    if resp.get("id") == req["id"]:
                        break
            except (OSError, ServiceClosed) as exc:
                if self.breaker is not None:
                    self.breaker.record_failure()
                await self.close()
                if policy is not None and policy.retry_connect \
                        and attempt < policy.retries:
                    await asyncio.sleep(backoff.delay_s(attempt))
                    attempt += 1
                    continue
                if self.breaker is not None and not self.breaker.allow():
                    raise ServiceUnavailable(
                        f"daemon at {self.host}:{self.port} unreachable: "
                        f"{exc}") from exc
                raise
            except ServiceTimeout:
                if policy is not None \
                        and "timeout" in policy.retry_types \
                        and attempt < policy.retries:
                    await asyncio.sleep(backoff.delay_s(attempt))
                    attempt += 1
                    continue
                raise
            if self.breaker is not None:
                self.breaker.record_success()
            try:
                return raise_for_error(resp)
            except ServiceError as exc:
                if policy is not None and exc.type in policy.retry_types \
                        and attempt < policy.retries:
                    await asyncio.sleep(backoff.delay_s(
                        attempt, exc.retry_after_ms))
                    attempt += 1
                    continue
                raise

    async def submit(self, requests: List[Dict[str, Any]],
                     max_resends: int = 2
                     ) -> AsyncIterator[Dict[str, Any]]:
        """Async twin of :meth:`ServiceClient.submit`: pipelines the
        batch and resends the unanswered tail after a mid-batch
        timeout or connection drop."""
        for req in requests:
            if req.get("id") is None:
                req["id"] = next(self._ids)
        pending = {req["id"]: req for req in requests}
        await self._send(list(requests))
        resends = 0
        while pending:
            try:
                resp = await self._recv()
            except (ServiceTimeout, ServiceClosed, OSError):
                if resends >= max_resends:
                    raise
                resends += 1
                await self.close()
                await self._send(list(pending.values()))
                continue
            rid = resp.get("id")
            if rid in pending:
                del pending[rid]
                yield resp

    async def ping(self) -> Dict[str, Any]:
        return (await self.request({"op": "ping"}))["result"]

    async def stats(self) -> Dict[str, Any]:
        return (await self.request({"op": "stats"}))["result"]

    async def compile_source(self, source: str,
                             **kwargs: Any) -> Dict[str, Any]:
        return await self.request(_build_request(None, "compile",
                                                 source=source, **kwargs))

    async def run_source(self, source: str,
                         **kwargs: Any) -> Dict[str, Any]:
        return await self.request(_build_request(None, "run",
                                                 source=source, **kwargs))

    async def campaign(self, **kwargs: Any) -> Dict[str, Any]:
        return await self.request(_build_request(None, "campaign",
                                                 **kwargs))
