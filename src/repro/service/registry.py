"""Named server configurations, resolved and composed from strings.

The service's wire protocol cannot ship a :class:`~repro.core.SpecConfig`
object, so requests name their configuration with a **spec string**
resolved here — the registry shape ``vusec/instrumentation-infra`` uses
for targets and instances: a flat namespace of named factories, plus
named modifiers composed onto them with ``+``::

    resolve_config("profile")              # SpecConfig.profile()
    resolve_config("profile+superblock")   # ... .but(scheduler="superblock")
    resolve_config("heuristic+noedge+nochecks")

Embedders extend both namespaces (:func:`register_config` /
:func:`register_modifier`); a daemon restart is not needed — resolution
happens per request.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core import SpecConfig
from ..ssa import SpecMode

#: base configurations: name -> zero-arg factory
CONFIG_FACTORIES: Dict[str, Callable[[], SpecConfig]] = {
    "unoptimized": SpecConfig.unoptimized,
    "base": SpecConfig.base,
    "profile": SpecConfig.profile,
    "heuristic": SpecConfig.heuristic,
    "static": SpecConfig.static,
    "aggressive": SpecConfig.aggressive,
}

#: modifiers: name -> SpecConfig -> SpecConfig, applied left to right
MODIFIERS: Dict[str, Callable[[SpecConfig], SpecConfig]] = {
    "superblock": lambda c: c.but(scheduler="superblock"),
    "block": lambda c: c.but(scheduler="block"),
    "edge": lambda c: c.but(use_edge_profile=True),
    "noedge": lambda c: c.but(use_edge_profile=False),
    "nochecks": lambda c: c.but(emit_checks=False),
    "notbaa": lambda c: c.but(use_tbaa=False),
    # flag provenance swaps (cold-start clients: `profile+static` serves
    # a request with no train input at all)
    "static": lambda c: c.but(mode=SpecMode.STATIC,
                              use_edge_profile=False),
    # simulator engine selection (docs/performance.md): a machine-side
    # knob — `profile+trace` compiles identically to `profile` but the
    # service simulates `run` requests on the hot-trace JIT
    "trace": lambda c: c.but(engine="trace"),
    "predecode": lambda c: c.but(engine="predecode"),
    "classic": lambda c: c.but(engine="classic"),
}


def resolve_config(spec: str) -> SpecConfig:
    """``"name(+modifier)*"`` -> a composed :class:`SpecConfig`.

    Raises ``ValueError`` (which the daemon reports as a typed
    ``bad-request``) when the base name or any modifier is unknown.
    """
    parts = [p.strip() for p in spec.split("+") if p.strip()]
    if not parts:
        raise ValueError(f"empty config spec {spec!r}")
    base, mods = parts[0], parts[1:]
    try:
        config = CONFIG_FACTORIES[base]()
    except KeyError:
        raise ValueError(
            f"unknown config {base!r} (known: "
            f"{', '.join(sorted(CONFIG_FACTORIES))})") from None
    for mod in mods:
        try:
            config = MODIFIERS[mod](config)
        except KeyError:
            raise ValueError(
                f"unknown config modifier {mod!r} (known: "
                f"{', '.join(sorted(MODIFIERS))})") from None
    return config


def register_config(name: str,
                    factory: Callable[[], SpecConfig]) -> None:
    """Add (or replace) a named base configuration."""
    CONFIG_FACTORIES[name] = factory


def register_modifier(name: str,
                      fn: Callable[[SpecConfig], SpecConfig]) -> None:
    """Add (or replace) a named modifier."""
    MODIFIERS[name] = fn


def available_configs() -> List[str]:
    """Every resolvable base name (modifiers listed in the module doc)."""
    return sorted(CONFIG_FACTORIES)
