"""The worker-process side of the service pool.

Each worker is a subprocess running :func:`main`: it reads one JSON
request per line on stdin, executes it through the pipeline, and
writes one JSON response per line on stdout.  The daemon
(:mod:`repro.service.daemon`) owns the sockets, sharding and
deduplication; a worker only ever sees requests whose content key
hashes into its shard, so its process-wide
:class:`~repro.pipeline.CompileCache` *is* that shard — warm keys stay
warm for the worker's whole lifetime without any cross-process cache
coherence.

:func:`handle_request` is a pure request→response function so the
daemon's in-process mode (``workers=0``) and the tests can call it
directly; it never raises — every failure becomes a typed error
response (:data:`~repro.service.protocol.ERROR_TYPES`), because a
request must never be able to kill its worker.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Dict, Optional

from . import protocol
from .registry import resolve_config

#: sentinel ops the daemon (not clients) sends to its workers
STATS_OP = "__stats__"
EXIT_OP = "__exit__"

#: environment variable the daemon sets so worker subprocesses find
#: the persistent cache directory (see configure_persistence)
CACHE_DIR_ENV = "REPRO_SERVICE_CACHE_DIR"

#: the process-wide persistent store (None = persistence disabled)
_STORE = None


def configure_persistence(cache_dir: Optional[str]):
    """Enable (or disable, with None) the on-disk response store this
    process consults before compiling and writes after every success.
    Returns the active :class:`~repro.service.persist.CacheStore`."""
    global _STORE
    if not cache_dir:
        _STORE = None
        return None
    from .persist import CacheStore

    _STORE = CacheStore(cache_dir)
    return _STORE


def persistent_store():
    """The active store, or None."""
    return _STORE


def _cache():
    from ..pipeline import default_cache

    return default_cache()


def _compile(req: Dict[str, Any]):
    """The shared compile step of ``compile`` and ``run``: returns
    ``(CompileResult, hit)`` where ``hit`` says the shard cache already
    held the key."""
    from ..pipeline import compile_program

    cache = _cache()
    hits_before = cache.hits
    compiled = compile_program(
        req["source"],
        resolve_config(req.get("config", "base")),
        train_inputs=req.get("train", []),
        fuel=req.get("fuel", 50_000_000),
        failsafe=req.get("failsafe", True),
        cache=cache,
    )
    return compiled, cache.hits > hits_before


def _handle_compile(req: Dict[str, Any]) -> Dict[str, Any]:
    compiled, hit = _compile(req)
    program = compiled.program
    result = {
        "functions": len(program.functions),
        "instructions": sum(len(block.instrs)
                            for fn in program.functions.values()
                            for block in fn.blocks),
        "degraded": list(compiled.degraded),
        "diagnostics": [str(d) for d in compiled.diagnostics],
    }
    return protocol.ok_response(req["id"], "compile", result, cached=hit)


def _handle_run(req: Dict[str, Any]) -> Dict[str, Any]:
    from ..pipeline import OutputMismatch
    from ..profiling import run_module
    from ..target import run_program

    compiled, hit = _compile(req)
    fuel = req.get("fuel", 50_000_000)
    ref_inputs = req.get("ref", [])
    # the config spec string selects the simulator too ("profile+trace")
    stats, output = run_program(compiled.program, inputs=ref_inputs,
                                fuel=4 * fuel,
                                engine=compiled.config.engine)
    if req.get("check", True):
        expected = run_module(compiled.original, fuel=fuel,
                              inputs=ref_inputs)
        if output != expected:
            raise OutputMismatch(expected, output)
    result = {
        "output": list(output),
        "stats": stats.to_dict(),
        "degraded": list(compiled.degraded),
    }
    return protocol.ok_response(req["id"], "run", result, cached=hit)


def _handle_campaign(req: Dict[str, Any]) -> Dict[str, Any]:
    from ..hazards import run_campaign

    config = req.get("config")
    report = run_campaign(
        workload_names=req.get("workloads"),
        config=resolve_config(config) if config else None,
        scenarios=tuple(req.get("scenarios", ["poison"])),
        seeds=[int(s) for s in req.get("seeds", [0])],
        jobs=1,  # the pool itself is the parallelism
    )
    result = {
        "runs": len(report.runs),
        "mismatches": len(report.failures),
        "ok": report.ok,
        "deferred_faults": sum(r.deferred_faults for r in report.runs),
        "recoveries": report.total_recoveries,
        "check_misses": sum(r.check_misses for r in report.runs),
        "degraded": list(report.degraded),
        "summary": report.summary(),
    }
    return protocol.ok_response(req["id"], "campaign", result)


def _persist_key(req: Dict[str, Any]) -> Optional[str]:
    """The content key to persist ``req`` under, or None (persistence
    off, non-work op, or an unkeyable request)."""
    if _STORE is None or req.get("op") not in protocol.WORK_OPS:
        return None
    try:
        return protocol.request_key(req)
    except Exception:  # noqa: BLE001 — a keying bug must not kill work
        return None


def handle_request(req: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one already-validated work request; never raises.

    With persistence configured, a work request first consults the
    on-disk store: a valid entry (revalidated by content key — see
    :mod:`repro.service.persist`) is returned as ``cached: true,
    persisted: true`` without touching the pipeline; every fresh
    success is persisted for the next daemon generation."""
    from ..errors import FuelExhausted
    from ..pipeline import OutputMismatch

    rid = req.get("id")
    key = _persist_key(req)
    if key is not None:
        stored = _STORE.get(key)
        if stored is not None:
            return dict(stored, id=rid, cached=True, persisted=True)
    try:
        op = req.get("op")
        if op == "compile":
            resp = _handle_compile(req)
        elif op == "run":
            resp = _handle_run(req)
        elif op == "campaign":
            resp = _handle_campaign(req)
        else:
            if op == STATS_OP:
                result = dict(_cache().stats())
                if _STORE is not None:
                    result["persist"] = _STORE.stats()
                return protocol.ok_response(rid, STATS_OP, result)
            return protocol.error_response(
                rid, "bad-request", f"worker cannot handle op {op!r}")
        if key is not None and resp.get("ok"):
            _STORE.put(key, req["op"], resp)
        return resp
    except OutputMismatch as exc:
        return protocol.error_response(rid, "output-mismatch",
                                       exc.diff())
    except FuelExhausted as exc:
        return protocol.error_response(
            rid, "fuel-exhausted",
            f"fuel exhausted in {exc.context()}")
    except ValueError as exc:  # bad config spec, bad workload name, ...
        return protocol.error_response(rid, "bad-request", str(exc))
    except Exception as exc:  # noqa: BLE001 — the worker must survive
        return protocol.error_response(
            rid, "compile-error", f"{type(exc).__name__}: {exc}")


def main() -> int:
    """NDJSON request loop over stdin/stdout (one request at a time —
    the pool, not the worker, is the unit of parallelism)."""
    configure_persistence(os.environ.get(CACHE_DIR_ENV))
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    for line in stdin:
        if not line.strip():
            continue
        try:
            req = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            stdout.write(protocol.encode(protocol.error_response(
                None, "bad-request", str(exc))))
            stdout.flush()
            continue
        if isinstance(req, dict) and req.get("op") == EXIT_OP:
            stdout.write(protocol.encode(protocol.ok_response(
                req.get("id"), EXIT_OP, {"draining": True})))
            stdout.flush()
            break
        resp = handle_request(req if isinstance(req, dict) else {})
        stdout.write(protocol.encode(resp))
        stdout.flush()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
