"""Retry discipline for service clients (docs/service.md).

Past saturation the daemon answers with a typed ``overload`` error and
a ``retry_after_ms`` hint instead of queueing unboundedly; the pieces
here are the client half of that contract:

* :class:`Backoff` — exponential delays with **deterministic** (seeded)
  jitter.  Two clients given different seeds decorrelate; the same seed
  replays the same delay sequence, which is what lets the chaos
  campaign and the unit tests assert retry schedules bit-for-bit.
* :class:`RetryPolicy` — the budget: how many retries, which typed
  errors are retryable, whether connection failures retry.  The daemon's
  ``retry_after_ms`` hint is always honoured as a *floor* on the delay.
* :class:`CircuitBreaker` — after ``threshold`` consecutive connection
  failures the circuit opens and calls fail fast with
  :class:`~repro.service.client.ServiceUnavailable` for ``cooldown_s``,
  so a dead daemon costs microseconds, not a connect timeout per call.
* :func:`wait_ready` — the readiness probe: ping with backoff until
  the daemon answers (or the budget runs out), returning time-to-ready.

Nothing here sleeps on its own: the delay schedule is data
(:meth:`Backoff.delay_s`), and the sync/async clients supply their own
``time.sleep`` / ``asyncio.sleep``, so every piece is testable without
wall-clock waits.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Backoff:
    """Exponential backoff with deterministic, seeded jitter.

    Delay for attempt ``n`` (0-based) is ``base_ms * factor**n``,
    capped at ``max_ms``, then jittered multiplicatively into
    ``[1 - jitter, 1 + jitter]`` with a private ``random.Random(seed)``
    stream — the same seed always produces the same schedule."""

    def __init__(self, base_ms: float = 25.0, factor: float = 2.0,
                 max_ms: float = 2000.0, jitter: float = 0.5,
                 seed: int = 0) -> None:
        if base_ms < 0 or factor < 1.0 or not 0.0 <= jitter < 1.0:
            raise ValueError("base_ms >= 0, factor >= 1, 0 <= jitter < 1")
        self.base_ms = base_ms
        self.factor = factor
        self.max_ms = max_ms
        self.jitter = jitter
        self.seed = seed
        self._rng = random.Random(seed)

    def delay_ms(self, attempt: int,
                 retry_after_ms: Optional[float] = None) -> float:
        """The jittered delay before retry ``attempt`` (0-based),
        floored at the server's ``retry_after_ms`` hint when given."""
        raw = min(self.max_ms, self.base_ms * self.factor ** attempt)
        scale = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        delay = raw * scale
        if retry_after_ms is not None:
            delay = max(delay, float(retry_after_ms))
        return delay

    def delay_s(self, attempt: int,
                retry_after_ms: Optional[float] = None) -> float:
        return self.delay_ms(attempt, retry_after_ms) / 1000.0

    def reset(self) -> None:
        """Rewind the jitter stream to the seed (replay the schedule)."""
        self._rng = random.Random(self.seed)


@dataclass
class RetryPolicy:
    """How a client spends its retry budget.

    ``retries`` is the number of *re*-attempts after the first try;
    ``retry_types`` the typed errors worth retrying (``overload`` sheds
    are transient by contract; ``worker-crash`` respawns the shard);
    ``retry_connect`` covers socket-level connect/reset failures."""

    retries: int = 4
    retry_types: Tuple[str, ...] = ("overload",)
    retry_connect: bool = True
    base_ms: float = 25.0
    factor: float = 2.0
    max_ms: float = 2000.0
    jitter: float = 0.5
    seed: int = 0

    def backoff(self) -> Backoff:
        """A fresh schedule for one logical request."""
        return Backoff(self.base_ms, self.factor, self.max_ms,
                       self.jitter, self.seed)


@dataclass
class CircuitBreaker:
    """A small consecutive-failure circuit breaker.

    Closed: calls pass through.  ``threshold`` consecutive recorded
    failures open the circuit; while open (for ``cooldown_s``),
    :meth:`allow` returns False and the client fails fast.  After the
    cooldown one probe call is allowed (half-open); its outcome closes
    or re-opens the circuit."""

    threshold: int = 3
    cooldown_s: float = 1.0
    clock: callable = time.monotonic
    failures: int = field(default=0, init=False)
    opened_at: Optional[float] = field(default=None, init=False)

    @property
    def open(self) -> bool:
        return (self.opened_at is not None
                and self.clock() - self.opened_at < self.cooldown_s)

    def allow(self) -> bool:
        """May the caller attempt a connection right now?"""
        return not self.open

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.threshold:
            self.opened_at = self.clock()


def wait_ready(host: str, port: int, budget_s: float = 10.0,
               policy: Optional[RetryPolicy] = None) -> float:
    """Ping the daemon with backoff until it answers; returns the
    time-to-ready in seconds.  Raises the last connection error when
    the budget elapses without a successful ping."""
    from .client import ServiceClient

    policy = policy or RetryPolicy(retries=1_000_000, base_ms=20.0,
                                   max_ms=500.0)
    backoff = policy.backoff()
    t0 = time.monotonic()
    deadline = t0 + budget_s
    attempt = 0
    while True:
        try:
            with ServiceClient(host, port, timeout=5.0) as client:
                client.ping()
            return time.monotonic() - t0
        except Exception:
            if time.monotonic() >= deadline:
                raise
        time.sleep(min(backoff.delay_s(attempt),
                       max(0.0, deadline - time.monotonic())))
        attempt += 1
