"""Load generator for the compile service (docs/service.md).

Drives a running daemon with N concurrent client connections issuing
``run`` (or ``compile``) requests drawn from a key space of K distinct
generated programs, with configurable **skew**: ``skew=0`` spreads
requests uniformly over the keys; larger values concentrate them
Zipf-style on the low-numbered keys (``weight(k) ∝ (k+1)^-skew``) —
the shape real compile traffic has, where a handful of hot sources
dominate.

Runs as two phases by default — **cold** (first contact with every
key) then **warm** (same key space again, now cache-resident) — and
reports per-phase p50/p99 latency and request throughput plus the
daemon's dedup/compile counters; ``benchmarks/test_service_perf.py``
writes this report to ``BENCH_service.json``.

Everything is seeded and deterministic: the same arguments produce the
same request schedule.

CLI::

    python -m repro loadgen --port 7457 --clients 8 --requests 32 \
        --keys 4 --skew 1.0 --json BENCH_service_load.json
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .client import AsyncServiceClient

#: one key = one distinct tiny program; {k} keeps sources (and
#: therefore content keys) distinct, the arithmetic keeps outputs
#: input-dependent so `run` exercises the whole pipeline + oracle
_KEY_TEMPLATE = """
void main() {{
  int a[8]; int i; int s;
  s = {k};
  i = input();
  a[0] = s + 3;
  s = a[0] * 2 + i;
  print(s);
}}
"""


def key_source(k: int) -> str:
    """The generated program for key index ``k``."""
    return _KEY_TEMPLATE.format(k=k)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q / 100.0 * len(sorted_values))))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class PhaseReport:
    """Latency/throughput of one load phase."""

    name: str
    requests: int = 0
    errors: int = 0
    deduped: int = 0
    cached: int = 0
    persisted: int = 0
    elapsed_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        lat = sorted(self.latencies_ms)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "deduped": self.deduped,
            "cached": self.cached,
            "persisted": self.persisted,
            "elapsed_s": self.elapsed_s,
            "req_per_s": (self.requests / self.elapsed_s
                          if self.elapsed_s > 0 else 0.0),
            "p50_ms": _percentile(lat, 50),
            "p99_ms": _percentile(lat, 99),
            "max_ms": lat[-1] if lat else 0.0,
        }


@dataclass
class LoadReport:
    """The full load-generator report (see docs/service.md for how to
    read it when tuning latency)."""

    clients: int
    requests_per_client: int
    keys: int
    skew: float
    op: str
    phases: Dict[str, PhaseReport] = field(default_factory=dict)
    #: daemon counter deltas over the whole load (stats op before/after)
    compiles: int = 0
    cache_hits: int = 0
    deduped: int = 0
    #: responses answered from the persistent (on-disk) cache
    persisted: int = 0
    #: readiness-probe latency: seconds until the daemon answered ping
    time_to_ready_s: float = 0.0
    daemon_stats: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "keys": self.keys,
            "skew": self.skew,
            "op": self.op,
            "phases": {name: phase.to_dict()
                       for name, phase in self.phases.items()},
            "compiles": self.compiles,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "persisted": self.persisted,
            "time_to_ready_s": self.time_to_ready_s,
        }

    def summary(self) -> str:
        lines = [f"loadgen: {self.clients} clients x "
                 f"{self.requests_per_client} requests, {self.keys} keys, "
                 f"skew {self.skew}, op {self.op} "
                 f"(ready in {self.time_to_ready_s * 1000.0:.1f}ms)"]
        for name, phase in self.phases.items():
            d = phase.to_dict()
            lines.append(
                f"  {name:5s}: {d['requests']} requests "
                f"({d['errors']} errors) in {d['elapsed_s']:.3f}s — "
                f"{d['req_per_s']:.0f} req/s, "
                f"p50 {d['p50_ms']:.2f}ms, p99 {d['p99_ms']:.2f}ms")
        lines.append(f"  cache: {self.compiles} compiles, "
                     f"{self.cache_hits} hits, "
                     f"{self.deduped} requests deduplicated in flight")
        return "\n".join(lines)


def _schedule(clients: int, requests: int, keys: int, skew: float,
              seed: int) -> List[List[int]]:
    """Per-client key sequences (deterministic for a given seed).

    Each client's first ``min(requests, keys)`` draws sweep the key
    space in the same order, so every wave has all clients racing on
    the *same* key — the shape in-flight deduplication exists for: one
    compile, N waiters.  The tail follows the skewed random draw.  The
    sweep also guarantees a cold phase touches every key, making the
    expected cache-layer compile count exactly ``keys``."""
    rng = random.Random(seed)
    weights = [(k + 1) ** -skew for k in range(keys)]
    schedule = []
    for _ in range(clients):
        sweep = [j % keys for j in range(min(requests, keys))]
        tail = rng.choices(range(keys), weights=weights,
                           k=max(0, requests - keys))
        schedule.append(sweep + tail)
    return schedule


async def _client_phase(host: str, port: int, key_seq: List[int],
                        op: str, config: str, phase: PhaseReport,
                        timeout: float) -> None:
    async with AsyncServiceClient(host, port, timeout=timeout) as client:
        for k in key_seq:
            t0 = time.perf_counter()
            req = {"op": op, "source": key_source(k), "config": config,
                   "train": [1], }
            if op == "run":
                req["ref"] = [2]
            resp = await client.request(req)
            phase.latencies_ms.append(
                (time.perf_counter() - t0) * 1000.0)
            phase.requests += 1
            if resp.get("dedup"):
                phase.deduped += 1
            if resp.get("cached"):
                phase.cached += 1
            if resp.get("persisted"):
                phase.persisted += 1


async def generate_load(host: str = "127.0.0.1", port: int = 7457,
                        clients: int = 8, requests: int = 8,
                        keys: int = 4, skew: float = 0.0,
                        op: str = "run", config: str = "profile",
                        seed: int = 0,
                        phases: tuple = ("cold", "warm"),
                        timeout: float = 120.0) -> LoadReport:
    """Drive the daemon and measure (see module docstring)."""
    report = LoadReport(clients=clients, requests_per_client=requests,
                        keys=keys, skew=skew, op=op)
    async with AsyncServiceClient(host, port, timeout=timeout) as probe:
        before = await probe.stats()
        for phase_name in phases:
            phase = PhaseReport(phase_name)
            report.phases[phase_name] = phase
            schedule = _schedule(clients, requests, keys, skew, seed)
            t0 = time.perf_counter()
            results = await asyncio.gather(
                *[_client_phase(host, port, schedule[c], op, config,
                                phase, timeout)
                  for c in range(clients)],
                return_exceptions=True)
            phase.elapsed_s = time.perf_counter() - t0
            phase.errors += sum(1 for r in results
                                if isinstance(r, Exception))
        after = await probe.stats()
    report.compiles = after["compiles"] - before["compiles"]
    report.cache_hits = after["cache_hits"] - before["cache_hits"]
    report.deduped = after["deduped"] - before["deduped"]
    report.persisted = sum(p.persisted for p in report.phases.values())
    report.daemon_stats = after
    return report


def run_load(wait: float = 10.0, **kwargs: Any) -> LoadReport:
    """Synchronous wrapper around :func:`generate_load`.

    First waits (with backoff, up to ``wait`` seconds) for the daemon
    to answer a ping — the readiness probe — and records the observed
    time-to-ready in the report."""
    from .backoff import wait_ready

    time_to_ready = 0.0
    if wait > 0:
        time_to_ready = wait_ready(kwargs.get("host", "127.0.0.1"),
                                   kwargs.get("port", 7457),
                                   budget_s=wait)
    report = asyncio.run(generate_load(**kwargs))
    report.time_to_ready_s = time_to_ready
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry (``python -m repro loadgen`` / ``repro loadgen``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="drive a running compile-service daemon and report "
                    "p50/p99 latency + throughput (docs/service.md)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7457)
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client connections")
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per client per phase")
    parser.add_argument("--keys", type=int, default=4,
                        help="distinct program keys")
    parser.add_argument("--skew", type=float, default=0.0,
                        help="key skew: 0 uniform, >0 Zipf-style hot keys")
    parser.add_argument("--op", choices=("run", "compile"), default="run")
    parser.add_argument("--config", default="profile",
                        help="registry config spec (e.g. "
                             "profile+superblock)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--phases", default="cold,warm",
                        help="comma-separated phase names (each replays "
                             "the same schedule)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-request client timeout (seconds)")
    parser.add_argument("--wait", type=float, default=10.0,
                        help="seconds to retry the first connection "
                             "(daemon may still be booting)")
    parser.add_argument("--json", metavar="FILE",
                        help="also write the report as JSON to FILE")
    args = parser.parse_args(argv)

    # readiness probe (backoff-paced ping, see repro.service.backoff)
    # happens inside run_load; the measured time-to-ready lands in the
    # report summary and JSON.
    report = run_load(wait=args.wait,
                      host=args.host, port=args.port,
                      clients=args.clients, requests=args.requests,
                      keys=args.keys, skew=args.skew, op=args.op,
                      config=args.config, seed=args.seed,
                      phases=tuple(p for p in args.phases.split(",") if p),
                      timeout=args.timeout)
    print(report.summary())
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"report written to {args.json}")
    errors = sum(p.errors for p in report.phases.values())
    return 0 if errors == 0 else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
